//! # LifeStream (reproduction) — facade crate
//!
//! Re-exports the whole workspace under one roof:
//!
//! * [`core`] — the LifeStream engine (FWindows, temporal operators,
//!   locality tracing, static memory allocation, targeted query
//!   processing, shape-based `Where`).
//! * [`signal`] — synthetic physiological waveforms, gap models,
//!   artifacts, CSV I/O.
//! * [`trill`] — the Trill-architecture baseline engine.
//! * [`numlib`] — the NumPy/SciPy-style baseline (array kernels + the
//!   `pyvm` interpreter for pure-Python stages).
//! * [`distrib`] — Spark/Storm/Flink-like micro-batch engine profiles.
//! * [`cache_sim`] — the set-associative LLC model behind Table 5.
//! * [`cluster`] — scale-up/scale-out harness behind Fig. 10(c,d).
//!
//! See `examples/` for runnable walkthroughs and `crates/bench/src/bin/`
//! for one binary per paper table/figure.

pub use distrib_baseline as distrib;
pub use lifestream_core as core;
pub use lifestream_signal as signal;
pub use llc_sim as cache_sim;
pub use numlib_baseline as numlib;
pub use trill_baseline as trill;

/// Scale-up (threads) and scale-out (modeled machines) harness.
pub mod cluster {
    pub use cluster_harness::*;
}
