//! # LifeStream (reproduction) — facade crate
//!
//! Re-exports the whole workspace under one roof:
//!
//! * [`core`] — the LifeStream engine (FWindows, temporal operators,
//!   locality tracing, static memory allocation, targeted query
//!   processing, shape-based `Where`).
//! * [`signal`] — synthetic physiological waveforms, gap models,
//!   artifacts, CSV I/O.
//! * [`trill`] — the Trill-architecture baseline engine.
//! * [`numlib`] — the NumPy/SciPy-style baseline (array kernels + the
//!   `pyvm` interpreter for pure-Python stages).
//! * [`distrib`] — Spark/Storm/Flink-like micro-batch engine profiles.
//! * [`cache_sim`] — the set-associative LLC model behind Table 5.
//! * [`cluster`] — scale-up/scale-out harness behind Fig. 10(c,d).
//! * [`engine`] — the cross-engine layer: a [`Workload`](engine::Workload)
//!   described once runs on every engine through the
//!   [`Engine`](engine::Engine) trait.
//!
//! ## The two-layer query API
//!
//! LifeStream queries are written against two cooperating layers:
//!
//! 1. **The fluent surface** ([`core::stream`]) — a
//!    [`Query`](core::stream::Query) scope hands out chainable, `Copy`
//!    [`Stream`](core::stream::Stream) values; every Table-2 operator is
//!    a consistently-fallible method, so the paper's Listing 1 reads as
//!    one chain:
//!    `src.aggregate(Mean, 100, 100)?.join_map(src, Inner, 1, f)?.sink()`.
//! 2. **The logical-plan layer** ([`core::query`]) — the
//!    [`QueryBuilder`](core::query::QueryBuilder) the fluent layer
//!    drives one-to-one. It remains the documented low-level API: compiler
//!    passes (locality tracing, future profile-guided rewrites) operate on
//!    the plan graph it produces, and both surfaces compile to identical
//!    plans.
//!
//! Baseline engines plug in *underneath* both layers via the
//! [`engine::Engine`] trait, so comparisons (tests, benches, paper
//! figures) define each workload exactly once.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench/src/bin/`
//! for one binary per paper table/figure.

pub mod engine;

pub use distrib_baseline as distrib;
pub use lifestream_core as core;
pub use lifestream_signal as signal;
pub use lifestream_store as store;
pub use llc_sim as cache_sim;
pub use numlib_baseline as numlib;
pub use trill_baseline as trill;

/// Scale-up (threads) and scale-out (modeled machines) harness.
pub mod cluster {
    pub use cluster_harness::*;
}
