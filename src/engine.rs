//! The cross-engine layer: one workload definition, every engine.
//!
//! The workspace ships three executable engines — the LifeStream engine
//! itself ([`lifestream_core`]), the Trill-architecture baseline
//! ([`trill_baseline`]), and the NumPy/SciPy-style baseline
//! ([`numlib_baseline`]). Before this layer existed, every comparison
//! (tests, benchmarks, paper figures) hand-wrote the same pipeline once
//! per engine. Now a shared workload is described *once* as data — a
//! [`Workload`] value, deliberately closure-free so even the interpreted
//! baseline can consume it — and each engine implements [`Engine`] to
//! translate that description onto its own query surface:
//!
//! * [`LifeStreamEngine`] builds a fluent
//!   [`Query`](lifestream_core::stream::Query) chain (the same two-layer
//!   fluent-surface / logical-plan split documented in
//!   [`lifestream_core::stream`]), compiles it, and executes with the
//!   static memory plan.
//! * [`TrillEngine`] builds the eager push-dataflow pipeline.
//! * [`NumLibEngine`] interprets the workload over materialized arrays;
//!   workloads without an array-library analogue (interval chopping,
//!   as-of joins) report themselves unsupported rather than faking
//!   semantics — mirroring the paper's observation that temporal
//!   operators are missing from array libraries.
//!
//! [`Engine::prepare`] returns a boxed [`EnginePipeline`], so harnesses
//! can separate (untimed) query construction from (timed) execution and
//! iterate over `Vec<Box<dyn Engine>>` — see [`all_engines`] and
//! `tests/cross_engine.rs`.

use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::join::JoinKind;
use lifestream_core::pipeline as lspipe;
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use trill_baseline::pipelines as tpipe;
use trill_baseline::TrillPipeline;

/// A Table-3 operation, parameterized so each engine can instantiate it.
#[derive(Debug, Clone, PartialEq)]
pub enum TableOp {
    /// Standard-score normalization over tumbling windows.
    Normalize,
    /// FIR frequency filter with the given taps.
    PassFilter {
        /// Filter coefficients (see [`lspipe::fir_lowpass`]).
        taps: Vec<f32>,
    },
    /// Fill gaps with a constant.
    FillConst {
        /// The fill value.
        value: f32,
    },
    /// Fill gaps with the window mean.
    FillMean,
    /// Linear-interpolation resample onto a new grid.
    Resample {
        /// Target period in ticks.
        new_period: Tick,
    },
}

/// A closure-free description of a shared workload.
///
/// Single-input workloads read source 0; join-shaped workloads read
/// sources 0 (left) and 1 (right).
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// `Select`: affine payload projection `mul * x + add`.
    Select {
        /// Multiplicative coefficient.
        mul: f32,
        /// Additive coefficient.
        add: f32,
    },
    /// `Where`: keep events with value strictly above `threshold`.
    WhereGt {
        /// The filter threshold.
        threshold: f32,
    },
    /// `Aggregate(w, p)`: windowed aggregation.
    Aggregate {
        /// Aggregate kind.
        kind: AggKind,
        /// Window length in ticks.
        window: Tick,
        /// Window stride in ticks.
        stride: Tick,
    },
    /// Stretch event lifetimes to `duration`, then chop on `boundary`.
    ///
    /// Trill's batch layout keeps lifetimes implicit, so it only
    /// supports `duration == boundary` (see
    /// [`Engine::supports`]); other combinations report
    /// [`EngineError::Unsupported`] there.
    Chop {
        /// New event duration in ticks.
        duration: Tick,
        /// Chop boundary in ticks.
        boundary: Tick,
    },
    /// Temporal inner equijoin of sources 0 and 1.
    Join,
    /// As-of join: each event of source 0 with the latest event of
    /// source 1 at or before it.
    ClipJoin,
    /// One Table-3 operation over tumbling `window`-tick windows.
    Operation {
        /// Which operation.
        op: TableOp,
        /// Processing window in ticks.
        window: Tick,
    },
    /// The Fig. 3 end-to-end pipeline (impute, rate-match, normalize,
    /// join) over sources 0 (ECG) and 1 (ABP).
    Fig3 {
        /// Processing window in ticks.
        window: Tick,
    },
}

impl Workload {
    /// Short display name (used in errors and harness tables).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Select { .. } => "Select",
            Workload::WhereGt { .. } => "Where",
            Workload::Aggregate { .. } => "Aggregate",
            Workload::Chop { .. } => "Chop",
            Workload::Join => "Join",
            Workload::ClipJoin => "ClipJoin",
            Workload::Operation { op, .. } => match op {
                TableOp::Normalize => "Normalize",
                TableOp::PassFilter { .. } => "PassFilter",
                TableOp::FillConst { .. } => "FillConst",
                TableOp::FillMean => "FillMean",
                TableOp::Resample { .. } => "Resample",
            },
            Workload::Fig3 { .. } => "Fig3",
        }
    }

    /// How many input streams the workload consumes.
    pub fn arity(&self) -> usize {
        match self {
            Workload::Join | Workload::ClipJoin | Workload::Fig3 { .. } => 2,
            _ => 1,
        }
    }
}

/// Execution knobs shared by every engine (each engine applies the ones
/// that exist in its architecture).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions {
    /// Processing-round length for the LifeStream executor (targeted
    /// query processing granularity). `None` uses the engine default.
    pub round_ticks: Option<Tick>,
    /// Collect sink events `(time, first-field value)` into
    /// [`RunOutcome::collected`]. Engines that cannot collect values for
    /// a workload leave it `None`.
    pub collect: bool,
    /// Join-state memory cap in bytes (Trill only; models the paper's
    /// observed OOM behaviour).
    pub memory_cap: Option<usize>,
}

impl EngineOptions {
    /// Sets the LifeStream processing-round length.
    pub fn with_round_ticks(mut self, t: Tick) -> Self {
        self.round_ticks = Some(t);
        self
    }

    /// Requests sink-event collection.
    pub fn collecting(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Caps Trill join-state memory.
    pub fn with_memory_cap(mut self, bytes: usize) -> Self {
        self.memory_cap = Some(bytes);
        self
    }
}

/// What a workload run produced.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Present events ingested from all sources.
    pub input_events: u64,
    /// Events emitted at the sink.
    ///
    /// The NumLib engine reports `Operation` workloads with the paper
    /// baseline's whole-array accounting — every output slot counts, NaN
    /// (absent) slots included — so there it can exceed
    /// `collected.len()`, which only holds present events.
    pub output_events: u64,
    /// Sink events as `(time, first-field value)`, when collection was
    /// requested and the engine supports it for this workload.
    pub collected: Option<Vec<(Tick, f32)>>,
}

/// Errors from preparing or running a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine has no implementation for this workload (e.g. temporal
    /// operators on the array baseline).
    Unsupported {
        /// The refusing engine.
        engine: &'static str,
        /// The workload's display name.
        workload: &'static str,
    },
    /// Construction or execution failed; the message preserves the
    /// underlying engine error (including Trill's out-of-memory report).
    Failed(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Unsupported { engine, workload } => {
                write!(f, "engine {engine} does not support workload {workload}")
            }
            EngineError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EngineError {}

fn fail(e: impl std::fmt::Display) -> EngineError {
    EngineError::Failed(e.to_string())
}

fn require_arity(engine: &'static str, w: &Workload, supplied: usize) -> Result<(), EngineError> {
    if supplied == w.arity() {
        Ok(())
    } else {
        Err(EngineError::Failed(format!(
            "engine {engine}: workload {} needs {} source(s), got {supplied}",
            w.name(),
            w.arity(),
        )))
    }
}

/// Checks the datasets handed to [`EnginePipeline::run`] against the
/// shapes the pipeline was prepared for (engines bake shape parameters
/// into their operators at prepare time).
fn require_shapes(
    engine: &'static str,
    expected: &[StreamShape],
    inputs: &[SignalData],
) -> Result<(), EngineError> {
    let got: Vec<StreamShape> = inputs.iter().map(SignalData::shape).collect();
    if got == expected {
        Ok(())
    } else {
        Err(EngineError::Failed(format!(
            "engine {engine}: inputs shaped {got:?} do not match prepared shapes {expected:?}"
        )))
    }
}

/// A query engine that can translate a [`Workload`] into an executable
/// pipeline on its own architecture.
pub trait Engine {
    /// Engine display name.
    fn name(&self) -> &'static str;

    /// Whether [`Engine::prepare`] can translate this workload.
    fn supports(&self, workload: &Workload) -> bool;

    /// Builds (but does not run) a pipeline for `workload` over sources
    /// with the given shapes.
    ///
    /// # Errors
    /// Returns [`EngineError::Unsupported`] for workloads outside the
    /// engine's vocabulary, or [`EngineError::Failed`] for invalid
    /// parameters.
    fn prepare(
        &self,
        workload: &Workload,
        shapes: &[StreamShape],
        opts: &EngineOptions,
    ) -> Result<Box<dyn EnginePipeline>, EngineError>;

    /// Convenience: prepare for the inputs' shapes, then run. Takes the
    /// inputs by value so single-shot callers (benchmark loops in
    /// particular) pay no extra dataset copy.
    ///
    /// # Errors
    /// Propagates [`Engine::prepare`] and [`EnginePipeline::run`] errors.
    fn run(
        &self,
        workload: &Workload,
        inputs: Vec<SignalData>,
        opts: &EngineOptions,
    ) -> Result<RunOutcome, EngineError> {
        let shapes: Vec<StreamShape> = inputs.iter().map(SignalData::shape).collect();
        self.prepare(workload, &shapes, opts)?.run(inputs)
    }
}

/// A prepared, single-shot pipeline returned by [`Engine::prepare`].
pub trait EnginePipeline {
    /// Feeds the inputs through the pipeline.
    ///
    /// # Errors
    /// Returns [`EngineError::Failed`] on execution errors (including a
    /// second `run` call on an already-consumed pipeline).
    fn run(&mut self, inputs: Vec<SignalData>) -> Result<RunOutcome, EngineError>;
}

/// All engines that implement the shared [`Engine`] surface: the paper's
/// three in comparison order, then the sharded runtime serving the
/// LifeStream engine (added by this repo's scale-up work — semantically
/// identical to LifeStream, so it rides every cross-engine check), then
/// the LifeStream engine with operator fusion disabled — the staged
/// execution model — so every agreement check also locks "fusion changes
/// nothing about the answer" (fused vs. staged must be *byte-identical*,
/// not merely close).
pub fn all_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(LifeStreamEngine),
        Box::new(TrillEngine),
        Box::new(NumLibEngine),
        Box::new(ShardedEngine::default()),
        Box::new(StagedLifeStreamEngine),
    ]
}

// ---------------------------------------------------------------------
// LifeStream
// ---------------------------------------------------------------------

/// Translates a [`Workload`] onto the LifeStream fluent query surface.
/// Shared by [`LifeStreamEngine`] (direct execution) and
/// [`ShardedEngine`] (whose shard workers each compile their own copy
/// once, then recycle the pooled executor across inputs).
fn lifestream_query(
    workload: &Workload,
    shapes: &[StreamShape],
) -> lifestream_core::error::Result<Query> {
    match workload {
        Workload::Fig3 { window } => lspipe::fig3_pipeline(shapes[0], shapes[1], *window),
        _ => {
            let q = Query::new();
            let src = q.source("src0", shapes[0]);
            let out = match workload.clone() {
                Workload::Select { mul, add } => src.select(1, move |i, o| o[0] = i[0] * mul + add),
                Workload::WhereGt { threshold } => src.where_(move |v| v[0] > threshold),
                Workload::Aggregate {
                    kind,
                    window,
                    stride,
                } => src.aggregate(kind, window, stride),
                Workload::Chop { duration, boundary } => {
                    src.alter_duration(duration).and_then(|s| s.chop(boundary))
                }
                Workload::Join => src.join(q.source("src1", shapes[1]), JoinKind::Inner),
                Workload::ClipJoin => src.clip_join(q.source("src1", shapes[1])),
                Workload::Operation { op, window } => match op {
                    TableOp::Normalize => lspipe::normalize(src, window),
                    TableOp::PassFilter { taps } => lspipe::pass_filter(src, window, taps),
                    TableOp::FillConst { value } => lspipe::fill_const(src, window, value),
                    TableOp::FillMean => lspipe::fill_mean(src, window),
                    TableOp::Resample { new_period } => lspipe::resample(src, new_period, window),
                },
                Workload::Fig3 { .. } => unreachable!("handled above"),
            }?;
            out.sink();
            Ok(q)
        }
    }
}

/// The LifeStream engine behind the shared [`Engine`] surface.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifeStreamEngine;

/// The LifeStream engine with operator fusion disabled
/// ([`ExecOptions::without_fusion`]): every node keeps its own FWindow and
/// staged kernel. Exists as the differential battery's fused-vs-staged
/// arm — its output must be byte-identical to [`LifeStreamEngine`]'s.
#[derive(Debug, Clone, Copy, Default)]
pub struct StagedLifeStreamEngine;

struct LifeStreamPrepared {
    compiled: Option<CompiledQuery>,
    shapes: Vec<StreamShape>,
    exec_opts: ExecOptions,
    collect: bool,
}

fn prepare_lifestream(
    engine_name: &'static str,
    workload: &Workload,
    shapes: &[StreamShape],
    opts: &EngineOptions,
    exec_opts: ExecOptions,
) -> Result<Box<dyn EnginePipeline>, EngineError> {
    require_arity(engine_name, workload, shapes.len())?;
    let q = lifestream_query(workload, shapes).map_err(fail)?;
    let mut exec_opts = exec_opts;
    if let Some(t) = opts.round_ticks {
        exec_opts = exec_opts.with_round_ticks(t);
    }
    Ok(Box::new(LifeStreamPrepared {
        compiled: Some(q.compile().map_err(fail)?),
        shapes: shapes.to_vec(),
        exec_opts,
        collect: opts.collect,
    }))
}

impl Engine for LifeStreamEngine {
    fn name(&self) -> &'static str {
        "LifeStream"
    }

    fn supports(&self, _workload: &Workload) -> bool {
        true
    }

    fn prepare(
        &self,
        workload: &Workload,
        shapes: &[StreamShape],
        opts: &EngineOptions,
    ) -> Result<Box<dyn EnginePipeline>, EngineError> {
        prepare_lifestream(self.name(), workload, shapes, opts, ExecOptions::default())
    }
}

impl Engine for StagedLifeStreamEngine {
    fn name(&self) -> &'static str {
        "LifeStream(staged)"
    }

    fn supports(&self, _workload: &Workload) -> bool {
        true
    }

    fn prepare(
        &self,
        workload: &Workload,
        shapes: &[StreamShape],
        opts: &EngineOptions,
    ) -> Result<Box<dyn EnginePipeline>, EngineError> {
        prepare_lifestream(
            self.name(),
            workload,
            shapes,
            opts,
            ExecOptions::default().without_fusion(),
        )
    }
}

impl EnginePipeline for LifeStreamPrepared {
    fn run(&mut self, inputs: Vec<SignalData>) -> Result<RunOutcome, EngineError> {
        // Validate before consuming: a rejected call must not poison the
        // single-shot pipeline.
        require_shapes("LifeStream", &self.shapes, &inputs)?;
        let compiled = self
            .compiled
            .take()
            .ok_or_else(|| EngineError::Failed("pipeline already consumed".into()))?;
        let mut exec = compiled
            .executor_with(inputs, self.exec_opts)
            .map_err(fail)?;
        if self.collect {
            let mut coll = OutputCollector::new(exec.sink_arity().map_err(fail)?);
            let stats = exec.run_with(|w| coll.absorb(w)).map_err(fail)?;
            let collected = coll
                .times()
                .iter()
                .copied()
                .zip(coll.values(0).iter().copied())
                .collect();
            Ok(RunOutcome {
                input_events: stats.input_events,
                output_events: stats.output_events,
                collected: Some(collected),
            })
        } else {
            let stats = exec.run().map_err(fail)?;
            Ok(RunOutcome {
                input_events: stats.input_events,
                output_events: stats.output_events,
                collected: None,
            })
        }
    }
}

// ---------------------------------------------------------------------
// Trill baseline
// ---------------------------------------------------------------------

/// The Trill-architecture baseline behind the shared [`Engine`] surface.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrillEngine;

struct TrillPrepared {
    // `None` once run: TrillPipeline operator state (join buffers,
    // filter history, collected events) is not reset between runs, so a
    // second run would silently produce wrong results.
    pipeline: Option<TrillPipeline>,
    shapes: Vec<StreamShape>,
    collect: bool,
}

impl Engine for TrillEngine {
    fn name(&self) -> &'static str {
        "Trill"
    }

    fn supports(&self, workload: &Workload) -> bool {
        match workload {
            // Event lifetimes are implicit in Trill's batch layout, so a
            // chop cannot honor a stretched duration; claiming to would
            // silently compute something other than the shared workload.
            Workload::Chop { duration, boundary } => duration == boundary,
            _ => true,
        }
    }

    fn prepare(
        &self,
        workload: &Workload,
        shapes: &[StreamShape],
        opts: &EngineOptions,
    ) -> Result<Box<dyn EnginePipeline>, EngineError> {
        if !self.supports(workload) {
            return Err(EngineError::Unsupported {
                engine: self.name(),
                workload: workload.name(),
            });
        }
        require_arity(self.name(), workload, shapes.len())?;
        let mut tp = match workload {
            Workload::Fig3 { window } => tpipe::fig3_pipeline(shapes[0], shapes[1], *window),
            _ => {
                let mut tp = TrillPipeline::new();
                let src = tp.source(shapes[0]);
                let out = match workload.clone() {
                    Workload::Select { mul, add } => {
                        tp.select(src, 1, move |i, o| o[0] = i[0] * mul + add)
                    }
                    Workload::WhereGt { threshold } => tp.where_(src, move |v| v[0] > threshold),
                    Workload::Aggregate {
                        kind,
                        window,
                        stride,
                    } => tp.aggregate(src, kind, window, stride),
                    Workload::Chop { boundary, .. } => {
                        // Trill chops payload-passthrough batches; event
                        // lifetimes are implicit in its batch layout.
                        let pass = tp.select(src, 1, |i, o| o[0] = i[0]);
                        tp.chop(pass, boundary)
                    }
                    Workload::Join => {
                        let other = tp.source(shapes[1]);
                        tp.join(src, other)
                    }
                    Workload::ClipJoin => {
                        let other = tp.source(shapes[1]);
                        tp.clip_join(src, other)
                    }
                    Workload::Operation { op, window } => {
                        let p = shapes[0].period();
                        match op {
                            TableOp::Normalize => tpipe::normalize(&mut tp, src, window),
                            TableOp::PassFilter { taps } => {
                                tpipe::pass_filter(&mut tp, src, window, taps)
                            }
                            TableOp::FillConst { value } => {
                                tpipe::fill_const(&mut tp, src, window, p, value)
                            }
                            TableOp::FillMean => tpipe::fill_mean(&mut tp, src, window, p),
                            TableOp::Resample { new_period } => {
                                tpipe::resample(&mut tp, src, window, new_period)
                            }
                        }
                    }
                    Workload::Fig3 { .. } => unreachable!("handled above"),
                };
                tp.sink(out);
                tp
            }
        };
        if let Some(cap) = opts.memory_cap {
            tp = tp.with_memory_cap(cap);
        }
        if opts.collect {
            tp = tp.with_collection();
        }
        Ok(Box::new(TrillPrepared {
            pipeline: Some(tp),
            shapes: shapes.to_vec(),
            collect: opts.collect,
        }))
    }
}

impl EnginePipeline for TrillPrepared {
    fn run(&mut self, inputs: Vec<SignalData>) -> Result<RunOutcome, EngineError> {
        require_shapes("Trill", &self.shapes, &inputs)?;
        let mut pipeline = self
            .pipeline
            .take()
            .ok_or_else(|| EngineError::Failed("pipeline already consumed".into()))?;
        let stats = pipeline.run(inputs).map_err(fail)?;
        Ok(RunOutcome {
            input_events: stats.input_events,
            output_events: stats.output_events,
            collected: self.collect.then(|| pipeline.collected().to_vec()),
        })
    }
}

// ---------------------------------------------------------------------
// NumLib baseline
// ---------------------------------------------------------------------

/// The NumPy/SciPy-style baseline behind the shared [`Engine`] surface.
///
/// Workloads are interpreted over materialized NaN-encoded arrays; the
/// temporal-operator workloads an array library has no analogue for
/// (`Chop`, `ClipJoin`) are reported as unsupported.
#[derive(Debug, Clone, Copy, Default)]
pub struct NumLibEngine;

struct NumLibPrepared {
    // `None` once run, matching the single-shot EnginePipeline contract.
    workload: Option<Workload>,
    shapes: Vec<StreamShape>,
    collect: bool,
}

impl Engine for NumLibEngine {
    fn name(&self) -> &'static str {
        "NumLib"
    }

    fn supports(&self, workload: &Workload) -> bool {
        !matches!(workload, Workload::Chop { .. } | Workload::ClipJoin)
    }

    fn prepare(
        &self,
        workload: &Workload,
        shapes: &[StreamShape],
        opts: &EngineOptions,
    ) -> Result<Box<dyn EnginePipeline>, EngineError> {
        if !self.supports(workload) {
            return Err(EngineError::Unsupported {
                engine: self.name(),
                workload: workload.name(),
            });
        }
        require_arity(self.name(), workload, shapes.len())?;
        Ok(Box::new(NumLibPrepared {
            workload: Some(workload.clone()),
            shapes: shapes.to_vec(),
            collect: opts.collect,
        }))
    }
}

impl EnginePipeline for NumLibPrepared {
    fn run(&mut self, inputs: Vec<SignalData>) -> Result<RunOutcome, EngineError> {
        use numlib_baseline::ops as nops;
        use numlib_baseline::pipeline::dense_to_events;

        // Validate before consuming: a rejected call must not poison the
        // single-shot pipeline.
        require_shapes("NumLib", &self.shapes, &inputs)?;
        let workload = self
            .workload
            .take()
            .ok_or_else(|| EngineError::Failed("pipeline already consumed".into()))?;

        let input_events: u64 = inputs.iter().map(|d| d.present_events() as u64).sum();
        let outcome = |events: Vec<(Tick, f32)>, collect: bool| RunOutcome {
            input_events,
            output_events: events.len() as u64,
            collected: collect.then_some(events),
        };

        match &workload {
            Workload::Select { mul, add } => {
                let d = &inputs[0];
                let mut arr = nops::to_nan_array(d);
                for v in &mut arr {
                    *v = *v * mul + add;
                }
                let (ts, vs) = dense_to_events(&arr, d.shape().offset(), d.shape().period());
                Ok(outcome(ts.into_iter().zip(vs).collect(), self.collect))
            }
            Workload::WhereGt { threshold } => {
                let d = &inputs[0];
                let mut arr = nops::to_nan_array(d);
                for v in &mut arr {
                    // NaN (absent) slots stay NaN; kept slots must be
                    // strictly above the threshold.
                    if v.is_nan() || *v <= *threshold {
                        *v = f32::NAN;
                    }
                }
                let (ts, vs) = dense_to_events(&arr, d.shape().offset(), d.shape().period());
                Ok(outcome(ts.into_iter().zip(vs).collect(), self.collect))
            }
            Workload::Aggregate {
                kind,
                window,
                stride,
            } => {
                let d = &inputs[0];
                let p = d.shape().period();
                let w = ((*window / p).max(1)) as usize;
                let s = ((*stride / p).max(1)) as usize;
                let arr = nops::to_nan_array(d);
                let mut events = Vec::new();
                let mut start = 0usize;
                while start + w <= arr.len() {
                    let slice = &arr[start..start + w];
                    let present: Vec<f32> = slice.iter().copied().filter(|v| !v.is_nan()).collect();
                    if !present.is_empty() {
                        let t = d.shape().offset() + (start + w) as Tick * p;
                        events.push((t, aggregate_of(*kind, &present)));
                    }
                    start += s;
                }
                Ok(outcome(events, self.collect))
            }
            Workload::Join => {
                let (l, r) = (&inputs[0], &inputs[1]);
                let la = nops::to_nan_array(l);
                let ra = nops::to_nan_array(r);
                let (lt, lv) = dense_to_events(&la, l.shape().offset(), l.shape().period());
                let (rt, rv) = dense_to_events(&ra, r.shape().offset(), r.shape().period());
                let (ts, ls, _rs) =
                    numlib_baseline::pyvm::py_temporal_join(&lt, &lv, &rt, &rv, r.shape().period())
                        .map_err(fail)?;
                Ok(outcome(ts.into_iter().zip(ls).collect(), self.collect))
            }
            Workload::Operation { op, window } => {
                let d = &inputs[0];
                let p = d.shape().period();
                let w = ((*window / p).max(1)) as usize;
                let arr = nops::to_nan_array(d);
                let (offset, period, out) = match op {
                    TableOp::Normalize => (d.shape().offset(), p, nops::normalize_windows(&arr, w)),
                    TableOp::PassFilter { taps } => {
                        (d.shape().offset(), p, nops::fir_filter(&arr, taps))
                    }
                    TableOp::FillConst { value } => {
                        (d.shape().offset(), p, nops::fill_const(&arr, *value))
                    }
                    TableOp::FillMean => (d.shape().offset(), p, nops::fill_mean(&arr, w)),
                    TableOp::Resample { new_period } => {
                        let (_, vs) = nops::resample_linear(&arr, p, *new_period);
                        (d.shape().offset(), *new_period, vs)
                    }
                };
                // Match the whole-array accounting the paper's baseline
                // reports: every output slot counts, NaN or not.
                let n = out.len() as u64;
                let events: Vec<(Tick, f32)> = if self.collect {
                    let (ts, vs) = dense_to_events(&out, offset, period);
                    ts.into_iter().zip(vs).collect()
                } else {
                    Vec::new()
                };
                Ok(RunOutcome {
                    input_events,
                    output_events: n,
                    collected: self.collect.then_some(events),
                })
            }
            Workload::Fig3 { window } => {
                let stats =
                    numlib_baseline::fig3_numlib(&inputs[0], &inputs[1], *window).map_err(fail)?;
                Ok(RunOutcome {
                    input_events: stats.input_events,
                    output_events: stats.output_events,
                    collected: None,
                })
            }
            Workload::Chop { .. } | Workload::ClipJoin => {
                unreachable!("rejected by NumLibEngine::prepare")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded runtime
// ---------------------------------------------------------------------

/// The [`ShardedRuntime`](cluster_harness::sharded::ShardedRuntime)
/// behind the shared [`Engine`] surface: the same LifeStream engine, but
/// served by the long-lived multi-patient runtime — hash-routed shard
/// workers with pooled, recycled executors. A shared-workload run
/// submits its inputs as one patient job; the point of carrying it in
/// [`all_engines`] is that every cross-engine agreement check now also
/// locks "sharding changes nothing about the answer".
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngine {
    /// Shard (worker thread) count for prepared runtimes.
    pub workers: usize,
}

impl Default for ShardedEngine {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4)),
        }
    }
}

impl ShardedEngine {
    /// Engine with an explicit shard count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }
}

struct ShardedPrepared {
    // `None` once run, matching the single-shot EnginePipeline contract;
    // the runtime is shut down after its one job.
    runtime: Option<cluster_harness::sharded::ShardedRuntime>,
    shapes: Vec<StreamShape>,
}

impl Engine for ShardedEngine {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn supports(&self, _workload: &Workload) -> bool {
        true // serves the LifeStream engine, which supports everything
    }

    fn prepare(
        &self,
        workload: &Workload,
        shapes: &[StreamShape],
        opts: &EngineOptions,
    ) -> Result<Box<dyn EnginePipeline>, EngineError> {
        use cluster_harness::sharded::{ShardedConfig, ShardedRuntime};
        require_arity(self.name(), workload, shapes.len())?;
        // Validate the translation once up front so bad parameters fail
        // in prepare (like every other engine), not inside a worker.
        lifestream_query(workload, shapes).map_err(fail)?;
        let (workload, shapes_owned) = (workload.clone(), shapes.to_vec());
        let factory =
            std::sync::Arc::new(move || lifestream_query(&workload, &shapes_owned)?.compile());
        let mut cfg = ShardedConfig::with_workers(self.workers);
        if let Some(t) = opts.round_ticks {
            cfg = cfg.round_ticks(t);
        }
        if let Some(cap) = opts.memory_cap {
            cfg = cfg.mem_cap_per_worker(cap);
        }
        if opts.collect {
            cfg = cfg.collecting();
        }
        Ok(Box::new(ShardedPrepared {
            runtime: Some(ShardedRuntime::new(factory, cfg)),
            shapes: shapes.to_vec(),
        }))
    }
}

impl EnginePipeline for ShardedPrepared {
    fn run(&mut self, inputs: Vec<SignalData>) -> Result<RunOutcome, EngineError> {
        use cluster_harness::sharded::JobOutcome;
        // Validate before consuming: a rejected call must not poison the
        // single-shot pipeline.
        require_shapes("Sharded", &self.shapes, &inputs)?;
        let runtime = self
            .runtime
            .take()
            .ok_or_else(|| EngineError::Failed("pipeline already consumed".into()))?;
        runtime.submit(0, inputs);
        let report = runtime
            .recv()
            .ok_or_else(|| EngineError::Failed("sharded runtime returned no report".into()))?;
        runtime.shutdown();
        match report.outcome {
            JobOutcome::Ok => Ok(RunOutcome {
                input_events: report.input_events,
                output_events: report.output_events,
                collected: report.collected,
            }),
            JobOutcome::OutOfMemory {
                planned_bytes,
                cap_bytes,
            } => Err(EngineError::Failed(format!(
                "sharded worker out of memory: static plan {planned_bytes} B exceeds cap {cap_bytes} B"
            ))),
            JobOutcome::Failed(m) => Err(EngineError::Failed(m)),
        }
    }
}

fn aggregate_of(kind: AggKind, present: &[f32]) -> f32 {
    let n = present.len() as f64;
    let sum: f64 = present.iter().map(|&v| v as f64).sum();
    match kind {
        AggKind::Sum => sum as f32,
        AggKind::Mean => (sum / n) as f32,
        AggKind::Max => present.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        AggKind::Min => present.iter().copied().fold(f32::INFINITY, f32::min),
        AggKind::Count => present.len() as f32,
        AggKind::Std => {
            let mean = sum / n;
            let var: f64 = present
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            var.sqrt() as f32
        }
    }
}
