//! Property tests for the CSV substrate: round-trip fidelity under
//! arbitrary gap layouts and shapes.

use lifestream_core::source::SignalData;
use lifestream_core::time::StreamShape;
use lifestream_signal::csv::{read_csv, write_csv};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_round_trip_preserves_events(
        period in prop::sample::select(vec![1i64, 2, 4, 5, 8]),
        offset in 0i64..16,
        n in 1usize..400,
        gaps in prop::collection::vec((0i64..3000, 1i64..500), 0..5),
    ) {
        let shape = StreamShape::new(offset, period);
        let mut data = SignalData::dense(
            shape,
            (0..n).map(|i| (i as f32 * 0.37).sin() * 50.0).collect(),
        );
        for &(s, l) in &gaps {
            data.punch_gap(s, s + l);
        }
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let back = read_csv(shape, &buf[..]).unwrap();
        prop_assert_eq!(back.present_events(), data.present_events());
        // Every present event's value survives exactly.
        for &(s, e) in data.presence().ranges() {
            let mut t = shape.align_up(s.max(shape.offset()));
            while t < e.min(data.end_time()) {
                prop_assert_eq!(back.value_at(t), data.value_at(t));
                t += period;
            }
        }
    }

    #[test]
    fn gap_model_coverage_is_within_bounds(
        seed in 0u64..500,
        days in 1i64..20,
    ) {
        use lifestream_signal::gaps::GapModel;
        let span = days * 86_400_000;
        let map = GapModel::icu_default().generate(span, seed);
        let f = map.coverage_fraction(0, span);
        prop_assert!((0.0..=1.0).contains(&f));
        if let (Some(s), Some(e)) = (map.start(), map.end()) {
            prop_assert!(s >= 0);
            prop_assert!(e <= span);
        }
    }

    #[test]
    fn overlap_construction_is_tight(
        target in 0.0f64..=1.0,
        seed in 0u64..100,
    ) {
        use lifestream_core::presence::PresenceMap;
        use lifestream_signal::gaps::with_overlap;
        let span = 2_000_000i64;
        // Base covering 40% in two runs, leaving ample complement.
        let base: PresenceMap =
            [(0, 500_000), (1_200_000, 1_500_000)].into_iter().collect();
        let derived = with_overlap(&base, span, target, seed);
        let frac = base.intersect(&derived).covered_ticks() as f64
            / base.covered_ticks() as f64;
        prop_assert!((frac - target).abs() < 0.02, "target {target} got {frac}");
    }
}
