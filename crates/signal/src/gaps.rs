//! Discontinuity models reproducing Fig. 2's gap structure.
//!
//! Raw physiological data is riddled with disconnection episodes — sensor
//! recalibration, patient transport, lead changes. Fig. 2 shows they are
//! *bursty and calendar-clustered*, not uniformly scattered: long
//! contiguous data runs separated by multi-hour outages, with some whole
//! days missing. §6.2 relies on this (FWindow fragmentation stays ≈ 0.3%).

use lifestream_core::presence::PresenceMap;
use lifestream_core::time::Tick;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generative model of disconnection episodes over `[0, span)`.
///
/// Alternates data runs and outages with log-uniform-ish durations:
/// run lengths in `[run_min, run_max]`, outage lengths in
/// `[gap_min, gap_max]`, both in ticks. `uptime_target` tunes the expected
/// fraction of time covered by data.
#[derive(Debug, Clone)]
pub struct GapModel {
    /// Minimum data-run length in ticks.
    pub run_min: Tick,
    /// Maximum data-run length in ticks.
    pub run_max: Tick,
    /// Minimum outage length in ticks.
    pub gap_min: Tick,
    /// Maximum outage length in ticks.
    pub gap_max: Tick,
    /// Probability that an outage occurs at each run boundary (vs. a brief
    /// blip); controls burstiness.
    pub outage_prob: f64,
}

impl GapModel {
    /// A model shaped like the paper's ICU traces: hours-long runs,
    /// minutes-to-hours outages (assuming millisecond ticks).
    pub fn icu_default() -> Self {
        Self {
            run_min: 30 * 60_000,   // 30 min
            run_max: 8 * 3_600_000, // 8 h
            gap_min: 60_000,        // 1 min
            gap_max: 4 * 3_600_000, // 4 h
            outage_prob: 0.7,
        }
    }

    /// Generates a presence map over `[0, span)`.
    pub fn generate(&self, span: Tick, seed: u64) -> PresenceMap {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a9);
        let mut map = PresenceMap::new();
        let mut t: Tick = 0;
        // Possibly start inside an outage.
        if rng.gen_bool(0.3) {
            t += rng.gen_range(self.gap_min..=self.gap_max).min(span / 4 + 1);
        }
        while t < span {
            let run = rng.gen_range(self.run_min..=self.run_max);
            let end = (t + run).min(span);
            map.add(t, end);
            t = end;
            if t >= span {
                break;
            }
            let gap = if rng.gen_bool(self.outage_prob) {
                rng.gen_range(self.gap_min..=self.gap_max)
            } else {
                rng.gen_range(1_000..=10_000) // brief blip
            };
            t += gap;
        }
        map
    }
}

/// Builds a presence map over `[0, span)` whose overlap with `other` is
/// approximately `overlap_fraction` of `other`'s covered time — the direct
/// knob behind Fig. 10a's sweep.
///
/// The result covers roughly the same total time as `other`, placing
/// `overlap_fraction` of its mass inside `other`'s ranges and the rest in
/// `other`'s gaps (or past them).
pub fn with_overlap(
    other: &PresenceMap,
    span: Tick,
    overlap_fraction: f64,
    seed: u64,
) -> PresenceMap {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0f1);
    let overlap_fraction = overlap_fraction.clamp(0.0, 1.0);
    let mut out = PresenceMap::new();
    let target = other.covered_ticks();
    let want_in = (target as f64 * overlap_fraction) as Tick;
    let want_out = target - want_in;

    // Cover a prefix of each of other's ranges until want_in is placed.
    let mut placed_in = 0;
    for &(s, e) in other.ranges() {
        if placed_in >= want_in {
            break;
        }
        let take = (e - s).min(want_in - placed_in);
        out.add(s, s + take);
        placed_in += take;
    }
    // Place the remainder in the complement of other's coverage.
    let mut placed_out = 0;
    let mut cursor = 0;
    let mut complement: Vec<(Tick, Tick)> = Vec::new();
    for &(s, e) in other.ranges() {
        if s > cursor {
            complement.push((cursor, s));
        }
        cursor = e;
    }
    if cursor < span {
        complement.push((cursor, span));
    }
    // Shuffle-ish: rotate the complement so placement varies by seed.
    if !complement.is_empty() {
        let rot = rng.gen_range(0..complement.len());
        complement.rotate_left(rot);
    }
    for (s, e) in complement {
        if placed_out >= want_out {
            break;
        }
        let take = (e - s).min(want_out - placed_out);
        out.add(s, s + take);
        placed_out += take;
    }
    out
}

/// Day-by-day coverage fractions (for rendering Fig. 2-style maps);
/// `day_ticks` is the day length in ticks (86 400 000 for ms ticks).
pub fn daily_coverage(map: &PresenceMap, span: Tick, day_ticks: Tick) -> Vec<f64> {
    let days = (span + day_ticks - 1) / day_ticks;
    (0..days)
        .map(|d| map.coverage_fraction(d * day_ticks, ((d + 1) * day_ticks).min(span)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: Tick = 86_400_000;

    #[test]
    fn icu_model_is_bursty_not_scattered() {
        let span = 30 * DAY;
        let map = GapModel::icu_default().generate(span, 11);
        // Bursty: far fewer ranges than a per-second scatter would give.
        assert!(map.ranges().len() < 1000, "ranges {}", map.ranges().len());
        assert!(!map.is_empty());
        // Runs are long: median range over 10 minutes.
        let mut lens: Vec<Tick> = map.ranges().iter().map(|&(s, e)| e - s).collect();
        lens.sort_unstable();
        assert!(lens[lens.len() / 2] >= 10 * 60_000);
    }

    #[test]
    fn generate_is_deterministic() {
        let m = GapModel::icu_default();
        assert_eq!(m.generate(DAY, 5), m.generate(DAY, 5));
    }

    #[test]
    fn coverage_is_partial() {
        let span = 60 * DAY;
        let map = GapModel::icu_default().generate(span, 3);
        let f = map.coverage_fraction(0, span);
        assert!(f > 0.2 && f < 0.99, "coverage {f}");
    }

    #[test]
    fn with_overlap_hits_target_fraction() {
        let span = 10 * DAY;
        let base = GapModel::icu_default().generate(span, 7);
        for target in [0.1, 0.5, 0.9] {
            let derived = with_overlap(&base, span, target, 21);
            let inter = base.intersect(&derived).covered_ticks();
            let frac = inter as f64 / base.covered_ticks() as f64;
            assert!((frac - target).abs() < 0.05, "target {target} got {frac}");
        }
    }

    #[test]
    fn with_overlap_extremes() {
        let span = DAY;
        let base = PresenceMap::full(0, span / 2);
        let zero = with_overlap(&base, span, 0.0, 1);
        assert_eq!(base.intersect(&zero).covered_ticks(), 0);
        let one = with_overlap(&base, span, 1.0, 1);
        assert_eq!(base.intersect(&one).covered_ticks(), base.covered_ticks());
    }

    #[test]
    fn daily_coverage_resolves_days() {
        let mut map = PresenceMap::new();
        map.add(0, DAY / 2); // day 0: 50%
        map.add(DAY, 2 * DAY); // day 1: 100%
        let cov = daily_coverage(&map, 3 * DAY, DAY);
        assert_eq!(cov.len(), 3);
        assert!((cov[0] - 0.5).abs() < 1e-9);
        assert!((cov[1] - 1.0).abs() < 1e-9);
        assert_eq!(cov[2], 0.0);
    }
}
