//! Artifact injection: the line-zero calibration artifact of Fig. 7.
//!
//! When an arterial-line pressure sensor is recalibrated against
//! atmospheric pressure, the ABP reading collapses to ~0 mmHg for a few
//! seconds, producing the characteristic flat-bottom shape in Fig. 7.
//! The Fig. 7 accuracy experiment injects a known number of these into a
//! synthetic ABP trace and measures the shape-`Where` detector's false
//! positives/negatives against the injected ground truth.

use lifestream_core::time::Tick;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an injected line-zero artifact.
#[derive(Debug, Clone, Copy)]
pub struct LineZeroSpec {
    /// Number of artifacts to inject.
    pub count: usize,
    /// Artifact duration in samples (flat-at-zero portion).
    pub flat_samples: usize,
    /// Transition ramp length in samples on each side.
    pub ramp_samples: usize,
    /// Residual noise amplitude on the flat portion (mmHg).
    pub noise: f32,
}

impl Default for LineZeroSpec {
    fn default() -> Self {
        Self {
            count: 49,         // the paper's month of data contained 49
            flat_samples: 250, // 2 s at 125 Hz
            ramp_samples: 12,
            noise: 1.0,
        }
    }
}

/// Injects line-zero artifacts into `values` at non-overlapping random
/// positions; returns the ground-truth sample ranges `[start, end)` of the
/// injected artifacts, sorted.
///
/// # Panics
/// Panics if the signal is too short to place the requested artifacts.
pub fn inject_line_zero(values: &mut [f32], spec: &LineZeroSpec, seed: u64) -> Vec<(usize, usize)> {
    let total = spec.flat_samples + 2 * spec.ramp_samples;
    assert!(
        values.len() > total * (spec.count + 1) * 2,
        "signal too short: {} samples for {} artifacts of {}",
        values.len(),
        spec.count,
        total
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11e0);
    let mut starts: Vec<usize> = Vec::with_capacity(spec.count);
    let min_sep = total * 2;
    let mut attempts = 0;
    while starts.len() < spec.count {
        attempts += 1;
        assert!(attempts < 100_000, "failed to place artifacts");
        let s = rng.gen_range(total..values.len() - total);
        if starts.iter().any(|&e| s.abs_diff(e) < min_sep) {
            continue;
        }
        starts.push(s);
    }
    starts.sort_unstable();
    let mut truth = Vec::with_capacity(spec.count);
    for &s in &starts {
        let base_in = values[s];
        let base_out = values[s + total - 1];
        for i in 0..spec.ramp_samples {
            let f = 1.0 - (i + 1) as f32 / spec.ramp_samples as f32;
            values[s + i] = base_in * f;
        }
        for i in 0..spec.flat_samples {
            values[s + spec.ramp_samples + i] = rng.gen_range(-spec.noise..spec.noise);
        }
        for i in 0..spec.ramp_samples {
            let f = (i + 1) as f32 / spec.ramp_samples as f32;
            values[s + spec.ramp_samples + spec.flat_samples + i] = base_out * f;
        }
        truth.push((s, s + total));
    }
    truth
}

/// The canonical line-zero query pattern: a flat run of zeros, `len`
/// samples long — what a user would sketch from Fig. 7 for matching an
/// already-normalized flat region.
pub fn line_zero_pattern(len: usize) -> Vec<f32> {
    vec![0.0; len]
}

/// The line-zero *onset* pattern: normal pressure level, a downward ramp,
/// then the flat-at-zero run — the characteristic shape of Fig. 7's left
/// edge. Matching the onset (rather than a constant) keeps the pattern
/// non-degenerate under z-normalization, so amplitude-invariant matching
/// works on raw signals.
pub fn line_zero_onset_pattern(pre: usize, ramp: usize, post: usize) -> Vec<f32> {
    let mut v = Vec::with_capacity(pre + ramp + post);
    v.extend(std::iter::repeat_n(1.0, pre));
    for i in 0..ramp {
        v.push(1.0 - (i + 1) as f32 / (ramp + 1) as f32);
    }
    v.extend(std::iter::repeat_n(0.0, post));
    v
}

/// Scores detections against ground truth. A truth interval counts as
/// *detected* if any detection time (in samples) falls within it, expanded
/// by `slack` samples on both sides; a detection is a *false positive* if
/// it lands in no expanded truth interval.
///
/// Returns `(false_negatives, false_positives, detected)`.
pub fn score_detections(
    truth: &[(usize, usize)],
    detections: &[usize],
    slack: usize,
) -> (usize, usize, usize) {
    let hit = |d: usize| truth.iter().any(|&(s, e)| d + slack >= s && d < e + slack);
    let fp = detections.iter().filter(|&&d| !hit(d)).count();
    let detected = truth
        .iter()
        .filter(|&&(s, e)| detections.iter().any(|&d| d + slack >= s && d < e + slack))
        .count();
    (truth.len() - detected, fp, detected)
}

/// Converts detection *times* (ticks) into sample indices given the
/// signal's period.
pub fn times_to_samples(times: &[Tick], period: Tick) -> Vec<usize> {
    times.iter().map(|&t| (t / period) as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::abp_wave;

    #[test]
    fn injection_zeroes_flat_region() {
        let mut v = abp_wave(100_000, 125.0, 72.0, 1);
        let spec = LineZeroSpec {
            count: 5,
            ..Default::default()
        };
        let truth = inject_line_zero(&mut v, &spec, 3);
        assert_eq!(truth.len(), 5);
        for &(s, e) in &truth {
            let mid = (s + e) / 2;
            assert!(v[mid].abs() <= spec.noise, "flat value {}", v[mid]);
            assert!(e - s == spec.flat_samples + 2 * spec.ramp_samples);
        }
        // Outside artifacts the signal stays pulsatile.
        let clean = v[..truth[0].0 - 10].iter().fold(f32::MIN, |a, &x| a.max(x));
        assert!(clean > 100.0);
    }

    #[test]
    fn artifacts_do_not_overlap() {
        let mut v = abp_wave(200_000, 125.0, 72.0, 2);
        let truth = inject_line_zero(
            &mut v,
            &LineZeroSpec {
                count: 20,
                ..Default::default()
            },
            9,
        );
        for w in truth.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap {:?}", w);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let mut a = abp_wave(100_000, 125.0, 72.0, 1);
        let mut b = a.clone();
        let s = LineZeroSpec::default();
        assert_eq!(
            inject_line_zero(&mut a, &s, 7),
            inject_line_zero(&mut b, &s, 7)
        );
        assert_eq!(a, b);
    }

    #[test]
    fn scoring_counts_fn_fp() {
        let truth = [(100, 200), (500, 600)];
        // One detection inside first, one stray.
        let (fneg, fpos, det) = score_detections(&truth, &[150, 900], 10);
        assert_eq!(fneg, 1);
        assert_eq!(fpos, 1);
        assert_eq!(det, 1);
        // Slack rescues near misses.
        let (fneg2, fpos2, _) = score_detections(&truth, &[95, 605], 10);
        assert_eq!(fneg2, 0);
        assert_eq!(fpos2, 0);
    }

    #[test]
    fn times_to_samples_divides_by_period() {
        assert_eq!(times_to_samples(&[0, 8, 16], 8), vec![0, 1, 2]);
    }
}
