//! Waveform synthesis: ECG-like, ABP-like, sinusoidal, and random signals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` samples of a PQRST-like ECG waveform at `hz` with heart
/// rate `bpm`. Morphology is a sum of Gaussian bumps per beat (P, Q, R, S,
/// T) plus small baseline wander and measurement noise.
///
/// # Examples
/// ```
/// let ecg = lifestream_signal::ecg_wave(5000, 500.0, 72.0, 1);
/// assert_eq!(ecg.len(), 5000);
/// let max = ecg.iter().fold(f32::MIN, |a, &v| a.max(v));
/// assert!(max > 0.5, "R peaks should dominate, max {max}");
/// ```
pub fn ecg_wave(n: usize, hz: f64, bpm: f64, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xec6);
    // Seconds per beat.
    let beat_period = 60.0 / bpm;
    // (phase center, width, amplitude) of each deflection, phase in beats.
    let bumps: [(f64, f64, f64); 5] = [
        (0.15, 0.045, 0.12),  // P
        (0.28, 0.012, -0.18), // Q
        (0.31, 0.016, 1.00),  // R
        (0.34, 0.012, -0.25), // S
        (0.55, 0.070, 0.30),  // T
    ];
    let mut out = Vec::with_capacity(n);
    let mut wander_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    for i in 0..n {
        let t = i as f64 / hz;
        let phase = (t / beat_period).fract();
        let mut v = 0.0;
        for &(c, w, a) in &bumps {
            let d = phase - c;
            v += a * (-d * d / (2.0 * w * w)).exp();
        }
        // Baseline wander (~0.3 Hz respiration) + white noise.
        v += 0.05 * (std::f64::consts::TAU * 0.3 * t + wander_phase).sin();
        v += rng.gen_range(-0.01..0.01);
        wander_phase += 0.0;
        out.push(v as f32);
    }
    out
}

/// Generates `n` samples of a pulsatile ABP-like waveform (mmHg) at `hz`
/// with heart rate `bpm`: systolic upstroke, dicrotic notch, diastolic
/// decay, around a 80/120 mmHg envelope.
///
/// # Examples
/// ```
/// let abp = lifestream_signal::abp_wave(1250, 125.0, 72.0, 1);
/// assert_eq!(abp.len(), 1250);
/// let mean = abp.iter().sum::<f32>() / 1250.0;
/// assert!(mean > 70.0 && mean < 110.0, "mean pressure {mean}");
/// ```
pub fn abp_wave(n: usize, hz: f64, bpm: f64, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabb);
    let beat_period = 60.0 / bpm;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / hz;
        let phase = (t / beat_period).fract();
        // Systolic rise then exponential diastolic decay.
        let pulse = if phase < 0.15 {
            (phase / 0.15) * 1.0
        } else {
            let d = (phase - 0.15) / 0.85;
            // Dicrotic notch around 40% of the decay.
            let notch = 0.08 * (-((d - 0.35) * (d - 0.35)) / 0.002).exp();
            (1.0 - d).powf(1.3) + notch
        };
        let v = 80.0 + 40.0 * pulse + rng.gen_range(-0.5..0.5);
        out.push(v as f32);
    }
    out
}

/// Generates `n` uniform random samples in `[lo, hi)` — the paper's
/// synthetic dataset uses randomly selected signal values.
///
/// # Examples
/// ```
/// let v = lifestream_signal::random_wave(100, 0.0, 1.0, 7);
/// assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
/// ```
pub fn random_wave(n: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Generates `n` samples of `amp * sin(2π f t) + offset` sampled at `hz`.
pub fn sine_wave(n: usize, hz: f64, freq: f64, amp: f32, offset: f32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let t = i as f64 / hz;
            amp * (std::f64::consts::TAU * freq * t).sin() as f32 + offset
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecg_is_periodic_at_heart_rate() {
        let hz = 500.0;
        let bpm = 60.0; // one beat per second = 500 samples
        let ecg = ecg_wave(2000, hz, bpm, 3);
        // R peaks should repeat every ~500 samples; find argmax in each
        // 500-sample beat and check spacing.
        let peaks: Vec<usize> = (0..4)
            .map(|b| {
                let seg = &ecg[b * 500..(b + 1) * 500];
                b * 500
                    + seg
                        .iter()
                        .enumerate()
                        .max_by(|a, c| a.1.partial_cmp(c.1).unwrap())
                        .unwrap()
                        .0
            })
            .collect();
        for w in peaks.windows(2) {
            let d = w[1] - w[0];
            assert!((480..=520).contains(&d), "beat spacing {d}");
        }
    }

    #[test]
    fn ecg_deterministic_per_seed() {
        assert_eq!(ecg_wave(100, 500.0, 72.0, 9), ecg_wave(100, 500.0, 72.0, 9));
        assert_ne!(
            ecg_wave(100, 500.0, 72.0, 9),
            ecg_wave(100, 500.0, 72.0, 10)
        );
    }

    #[test]
    fn abp_stays_in_physiological_range() {
        let abp = abp_wave(5000, 125.0, 80.0, 2);
        for &v in &abp {
            assert!((60.0..140.0).contains(&v), "pressure {v}");
        }
        let max = abp.iter().fold(f32::MIN, |a, &v| a.max(v));
        let min = abp.iter().fold(f32::MAX, |a, &v| a.min(v));
        assert!(max > 110.0, "systolic {max}");
        assert!(min < 90.0, "diastolic {min}");
    }

    #[test]
    fn random_wave_bounds_and_determinism() {
        let a = random_wave(1000, -5.0, 5.0, 42);
        assert_eq!(a, random_wave(1000, -5.0, 5.0, 42));
        assert!(a.iter().all(|&v| (-5.0..5.0).contains(&v)));
    }

    #[test]
    fn sine_wave_hits_expected_values() {
        let s = sine_wave(4, 4.0, 1.0, 2.0, 10.0);
        assert!((s[0] - 10.0).abs() < 1e-5);
        assert!((s[1] - 12.0).abs() < 1e-4); // sin(π/2) = 1
    }
}
