//! CSV ingest/egress for retrospective signal data.
//!
//! The paper's end-to-end benchmark reads two weeks of ECG+ABP from CSV
//! files; each row is `timestamp,value`. Absent grid slots simply have no
//! row — gaps are reconstructed into the presence map on load.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use lifestream_core::presence::PresenceMap;
use lifestream_core::source::SignalData;
use lifestream_core::time::{StreamShape, Tick};

/// Writes a signal as `timestamp,value` CSV rows (present events only).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(data: &SignalData, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (_, t, v) in data.present_samples() {
        writeln!(w, "{t},{v}")?;
    }
    w.flush()
}

/// Reads `timestamp,value` CSV rows into a [`SignalData`] of the given
/// shape. Rows must be sorted by timestamp and lie on the stream grid;
/// missing grid points become gaps.
///
/// # Errors
/// Returns `InvalidData` for malformed rows, off-grid timestamps, or
/// unsorted input.
pub fn read_csv<R: Read>(shape: StreamShape, reader: R) -> io::Result<SignalData> {
    let r = BufReader::new(reader);
    let mut values: Vec<f32> = Vec::new();
    let mut presence = PresenceMap::new();
    let mut last_t: Option<Tick> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (ts, vs) = line.split_once(',').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected 'timestamp,value'", lineno + 1),
            )
        })?;
        let t: Tick = ts.trim().parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        let v: f32 = vs.trim().parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        if !shape.on_grid(t) || t < shape.offset() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: timestamp {t} off the {shape} grid", lineno + 1),
            ));
        }
        if let Some(prev) = last_t {
            if t <= prev {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "line {}: timestamps must be strictly increasing",
                        lineno + 1
                    ),
                ));
            }
        }
        let slot = ((t - shape.offset()) / shape.period()) as usize;
        if slot >= values.len() {
            values.resize(slot + 1, 0.0);
        }
        values[slot] = v;
        presence.add(t, t + shape.period());
        last_t = Some(t);
    }
    Ok(SignalData::with_presence(shape, values, presence))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense_signal() {
        let shape = StreamShape::new(0, 2);
        let data = SignalData::dense(shape, vec![1.5, 2.5, 3.5]);
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text, "0,1.5\n2,2.5\n4,3.5\n");
        let back = read_csv(shape, &buf[..]).unwrap();
        assert_eq!(back.values(), data.values());
        assert_eq!(back.present_events(), 3);
    }

    #[test]
    fn roundtrip_preserves_gaps() {
        let shape = StreamShape::new(0, 4);
        let mut data = SignalData::dense(shape, (0..10).map(|i| i as f32).collect());
        data.punch_gap(8, 20); // drops slots 2,3,4
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let back = read_csv(shape, &buf[..]).unwrap();
        assert_eq!(back.present_events(), 7);
        assert_eq!(back.value_at(4), Some(1.0));
        assert_eq!(back.value_at(12), None);
        assert_eq!(back.value_at(20), Some(5.0));
    }

    #[test]
    fn read_rejects_off_grid_rows() {
        let shape = StreamShape::new(0, 2);
        let err = read_csv(shape, "3,1.0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_rejects_unsorted_rows() {
        let shape = StreamShape::new(0, 2);
        let err = read_csv(shape, "4,1.0\n2,2.0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_rejects_malformed_rows() {
        let shape = StreamShape::new(0, 2);
        assert!(read_csv(shape, "nonsense\n".as_bytes()).is_err());
        assert!(read_csv(shape, "2;1.0\n".as_bytes()).is_err());
        assert!(read_csv(shape, "2,abc\n".as_bytes()).is_err());
    }

    #[test]
    fn read_skips_comments_and_blank_lines() {
        let shape = StreamShape::new(0, 2);
        let data = read_csv(shape, "# header\n\n0,1.0\n2,2.0\n".as_bytes()).unwrap();
        assert_eq!(data.present_events(), 2);
    }

    #[test]
    fn empty_input_gives_empty_signal() {
        let shape = StreamShape::new(0, 2);
        let data = read_csv(shape, "".as_bytes()).unwrap();
        assert!(data.is_empty());
    }
}
