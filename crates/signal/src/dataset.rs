//! Dataset builders combining waveforms, gap models, and artifacts into
//! ready-to-run [`SignalData`] — the stand-ins for the paper's two dataset
//! types (synthetic 1000 Hz and the SickKids ECG/ABP traces).

use lifestream_core::presence::PresenceMap;
use lifestream_core::source::SignalData;
use lifestream_core::time::{StreamShape, Tick};

use crate::gaps::GapModel;
use crate::waveform::{abp_wave, ecg_wave, random_wave};

/// Which waveform morphology to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// PQRST-like electrocardiogram (paper default: 500 Hz).
    Ecg,
    /// Pulsatile arterial blood pressure (paper default: 125 Hz).
    Abp,
    /// Uniform random values (the paper's synthetic dataset).
    Random,
}

/// Builder for synthetic datasets.
///
/// # Examples
/// ```
/// use lifestream_signal::{DatasetBuilder, SignalKind};
///
/// // The paper's synthetic dataset shape: 1000 Hz, no gaps (the real
/// // benchmarks use 1000 minutes; one minute keeps the example fast).
/// let data = DatasetBuilder::new(SignalKind::Random, 1)
///     .minutes(1)
///     .build(1000.0);
/// assert_eq!(data.shape().period(), 1);
/// assert_eq!(data.len(), 60_000);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    kind: SignalKind,
    seed: u64,
    span: Tick,
    offset: Tick,
    bpm: f64,
    gaps: Option<GapModel>,
}

impl DatasetBuilder {
    /// Creates a builder for the given morphology and RNG seed.
    pub fn new(kind: SignalKind, seed: u64) -> Self {
        Self {
            kind,
            seed,
            span: 60_000,
            offset: 0,
            bpm: 72.0,
            gaps: None,
        }
    }

    /// Sets the time span in minutes (ticks are milliseconds).
    pub fn minutes(mut self, m: i64) -> Self {
        self.span = m * 60_000;
        self
    }

    /// Sets the time span in ticks.
    pub fn span_ticks(mut self, t: Tick) -> Self {
        self.span = t;
        self
    }

    /// Sets the stream offset (first event time).
    pub fn offset(mut self, o: Tick) -> Self {
        self.offset = o;
        self
    }

    /// Sets the synthetic heart rate.
    pub fn bpm(mut self, bpm: f64) -> Self {
        self.bpm = bpm;
        self
    }

    /// Applies a discontinuity model.
    pub fn with_gaps(mut self, model: GapModel) -> Self {
        self.gaps = Some(model);
        self
    }

    /// Synthesizes the dataset at `hz` (must divide 1000 evenly into a
    /// tick period).
    ///
    /// # Panics
    /// Panics if `hz` does not correspond to an integral tick period.
    pub fn build(&self, hz: f64) -> SignalData {
        let period = (1000.0 / hz) as Tick;
        assert!(
            (1000.0 / hz).fract() == 0.0 && period >= 1,
            "rate {hz} Hz has no integral ms period"
        );
        let shape = StreamShape::new(self.offset, period);
        let n = (self.span / period) as usize;
        let values = match self.kind {
            SignalKind::Ecg => ecg_wave(n, hz, self.bpm, self.seed),
            SignalKind::Abp => abp_wave(n, hz, self.bpm, self.seed),
            SignalKind::Random => random_wave(n, 0.0, 100.0, self.seed),
        };
        match &self.gaps {
            None => SignalData::dense(shape, values),
            Some(model) => {
                let mut presence = model.generate(self.span, self.seed);
                // Shift presence into the stream's absolute range and clip.
                if self.offset != 0 {
                    let shifted: PresenceMap = presence
                        .ranges()
                        .iter()
                        .map(|&(s, e)| (s + self.offset, e + self.offset))
                        .collect();
                    presence = shifted;
                }
                SignalData::with_presence(shape, values, presence)
            }
        }
    }
}

/// Builds the paper's default "real-like" pair: ECG at 500 Hz and ABP at
/// 125 Hz over `minutes`, both with ICU-style discontinuities drawn from
/// distinct seeds (so their overlap is partial, like Fig. 2).
pub fn ecg_abp_pair(minutes: i64, seed: u64) -> (SignalData, SignalData) {
    let ecg = DatasetBuilder::new(SignalKind::Ecg, seed)
        .minutes(minutes)
        .with_gaps(GapModel::icu_default())
        .build(500.0);
    let abp = DatasetBuilder::new(SignalKind::Abp, seed.wrapping_add(1))
        .minutes(minutes)
        .with_gaps(GapModel::icu_default())
        .build(125.0);
    (ecg, abp)
}

/// Builds an ECG/ABP pair whose ABP presence overlaps the ECG presence by
/// exactly `overlap_fraction` — the Fig. 10a workload.
///
/// The ECG uses a ~45%-coverage gap model so the complement always has
/// room for the non-overlapping share of the ABP data, keeping the ABP
/// event count constant across the sweep.
pub fn ecg_abp_with_overlap(
    minutes: i64,
    overlap_fraction: f64,
    seed: u64,
) -> (SignalData, SignalData) {
    let span = minutes * 60_000;
    let sparse = GapModel {
        run_min: 20 * 60_000,
        run_max: 2 * 3_600_000,
        gap_min: 30 * 60_000,
        gap_max: 3 * 3_600_000,
        outage_prob: 0.95,
    };
    let ecg = DatasetBuilder::new(SignalKind::Ecg, seed)
        .minutes(minutes)
        .with_gaps(sparse)
        .build(500.0);
    let abp_dense = DatasetBuilder::new(SignalKind::Abp, seed.wrapping_add(1))
        .minutes(minutes)
        .build(125.0);
    let presence = crate::gaps::with_overlap(ecg.presence(), span, overlap_fraction, seed);
    (ecg, abp_dense.with_new_presence(presence))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_rates() {
        let d = DatasetBuilder::new(SignalKind::Ecg, 1)
            .minutes(1)
            .build(500.0);
        assert_eq!(d.shape().period(), 2);
        assert_eq!(d.len(), 30_000);
        let d125 = DatasetBuilder::new(SignalKind::Abp, 1)
            .minutes(1)
            .build(125.0);
        assert_eq!(d125.shape().period(), 8);
        assert_eq!(d125.len(), 7_500);
    }

    #[test]
    #[should_panic(expected = "integral ms period")]
    fn non_integral_rate_rejected() {
        let _ = DatasetBuilder::new(SignalKind::Random, 1).build(300.0);
    }

    #[test]
    fn gaps_reduce_presence() {
        let d = DatasetBuilder::new(SignalKind::Random, 4)
            .minutes(4 * 60)
            .with_gaps(GapModel::icu_default())
            .build(125.0);
        assert!(d.present_events() < d.len());
        assert!(d.present_events() > 0);
    }

    #[test]
    fn offset_moves_first_event() {
        let d = DatasetBuilder::new(SignalKind::Random, 1)
            .span_ticks(1000)
            .offset(500)
            .build(125.0);
        assert_eq!(d.shape().offset(), 500);
        assert_eq!(d.presence().start(), Some(500));
    }

    #[test]
    fn ecg_abp_pair_has_partial_overlap() {
        // A day-long span guarantees several run/outage cycles (runs cap
        // at 8 h), so partial overlap is structural, not seed luck.
        let (ecg, abp) = ecg_abp_pair(24 * 60, 42);
        let inter = ecg.presence().intersect(abp.presence()).covered_ticks();
        assert!(inter > 0);
        assert!(inter < ecg.presence().covered_ticks());
    }

    #[test]
    fn overlap_pair_honors_fraction() {
        for f in [0.2, 0.8] {
            let (ecg, abp) = ecg_abp_with_overlap(6 * 60, f, 5);
            let inter = ecg.presence().intersect(abp.presence()).covered_ticks();
            let frac = inter as f64 / ecg.presence().covered_ticks() as f64;
            assert!((frac - f).abs() < 0.05, "want {f} got {frac}");
        }
    }
}
