//! # lifestream-signal
//!
//! The physiological-waveform substrate for the LifeStream reproduction.
//!
//! The paper evaluates on a private dataset from The Hospital for Sick
//! Children (6100 patients, ECG at 500 Hz and ABP at 125 Hz) plus a
//! synthetic 1000 Hz dataset. The private data cannot be shared — the
//! paper's own artifact ships synthetic data instead — so this crate
//! synthesizes datasets that reproduce the *properties the engine's
//! optimizations exploit*:
//!
//! * strict periodicity at the clinical rates (ECG 500 Hz, ABP 125 Hz);
//! * morphologically plausible waveforms (PQRST-like ECG, pulsatile ABP);
//! * bursty, calendar-clustered discontinuities like Fig. 2 — long
//!   contiguous data runs separated by disconnection episodes;
//! * directly controllable mutual overlap between signals (the Fig. 10a
//!   knob);
//! * injectable line-zero calibration artifacts (Fig. 7).
//!
//! CSV ingest/egress mirrors the paper's end-to-end setup, which reads
//! retrospective data from CSV files.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifacts;
pub mod csv;
pub mod dataset;
pub mod gaps;
pub mod waveform;

pub use artifacts::{inject_line_zero, LineZeroSpec};
pub use dataset::{DatasetBuilder, SignalKind};
pub use gaps::GapModel;
pub use waveform::{abp_wave, ecg_wave, random_wave, sine_wave};
