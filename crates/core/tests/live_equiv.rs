//! Deployment seamlessness (§2): a recorded signal pushed through
//! `LiveSession::push`/`poll`/`finish` must yield *byte-identical* output
//! to the batch `Executor::run_collect` of the same compiled query —
//! including on gap-heavy data, where targeted processing skips rounds
//! online and offline alike.

use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::live::LiveSession;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::join::JoinKind;
use lifestream_core::pipeline as lspipe;
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};

const ROUND: Tick = 400;

/// A recorded, gap-riddled signal: deterministic waveform with several
/// dropouts of varying length (including one longer than a round).
fn recorded(shape: StreamShape, slots: usize, seed: u64) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            ((x >> 40) % 997) as f32 / 7.0
        })
        .collect();
    let mut data = SignalData::dense(shape, vals);
    let span = slots as Tick * shape.period();
    // Gap pattern: short dropout, mid dropout, and one > ROUND.
    data.punch_gap(span / 10, span / 10 + 3 * shape.period());
    data.punch_gap(span / 3, span / 3 + span / 20);
    data.punch_gap(span / 2, span / 2 + ROUND + span / 15);
    data
}

/// Replays `sources` through a live session (pushing present samples in
/// time order, interleaved across sources, polling periodically), then
/// checks the collected output against the batch run bit-for-bit.
fn assert_live_matches_batch(build: impl Fn() -> CompiledQuery, sources: Vec<SignalData>) {
    // Batch reference.
    let mut exec = build()
        .executor_with(
            sources.clone(),
            ExecOptions::default().with_round_ticks(ROUND),
        )
        .unwrap();
    let offline = exec.run_collect().unwrap();

    // Live replay: merge all sources' present events by time.
    let mut events: Vec<(Tick, usize, f32)> = Vec::new();
    for (s, data) in sources.iter().enumerate() {
        let shape = data.shape();
        for &(rs, re) in data.presence().ranges() {
            let mut t = shape.align_up(rs.max(shape.offset()));
            let end = re.min(data.end_time());
            while t < end {
                let slot = ((t - shape.offset()) / shape.period()) as usize;
                events.push((t, s, data.values()[slot]));
                t += shape.period();
            }
        }
    }
    events.sort_by_key(|&(t, s, _)| (t, s));

    let mut session = LiveSession::new(build(), ROUND).unwrap();
    let mut online = OutputCollector::new(session.sink_arity().unwrap());
    for (k, &(t, s, v)) in events.iter().enumerate() {
        session.push(s, t, v).unwrap();
        if k % 97 == 0 {
            session.poll(|w| online.absorb(w)).unwrap();
        }
    }
    session.finish(|w| online.absorb(w)).unwrap();

    assert_eq!(offline.len(), online.len(), "event count online vs batch");
    assert_eq!(
        offline.checksum(),
        online.checksum(),
        "live output must be byte-identical to batch"
    );
    assert!(
        !offline.is_empty(),
        "trivially-empty comparison proves nothing"
    );
}

#[test]
fn select_chain_live_equals_batch_on_gap_heavy_data() {
    let shape = StreamShape::new(0, 2);
    let data = recorded(shape, 4_000, 11);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            q.source("s", shape)
                .select(1, |i, o| o[0] = i[0] * 3.0 - 1.0)
                .unwrap()
                .where_(|v| v[0] > 10.0)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![data],
    );
}

#[test]
fn sliding_aggregate_live_equals_batch_on_gap_heavy_data() {
    // Stateful kernel: the ring buffer must behave identically when fed
    // round-by-round online.
    let shape = StreamShape::new(0, 2);
    let data = recorded(shape, 4_000, 23);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            q.source("s", shape)
                .aggregate(AggKind::Mean, 40, 4)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![data],
    );
}

#[test]
fn shift_spill_live_equals_batch_on_gap_heavy_data() {
    // Shift pushes events into future rounds; the spill queue must drain
    // identically online.
    let shape = StreamShape::new(0, 1);
    let data = recorded(shape, 3_000, 37);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            q.source("s", shape).shift(900).unwrap().sink();
            q.compile().unwrap()
        },
        vec![data],
    );
}

#[test]
fn two_source_join_live_equals_batch_on_gap_heavy_data() {
    let s_ecg = StreamShape::new(0, 2);
    let s_abp = StreamShape::new(0, 8);
    let ecg = recorded(s_ecg, 4_000, 5);
    let abp = recorded(s_abp, 1_000, 6);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            let a = q.source("ecg", s_ecg);
            let b = q.source("abp", s_abp);
            a.aggregate(AggKind::Max, 80, 80)
                .unwrap()
                .join(b, JoinKind::Inner)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![ecg, abp],
    );
}

#[test]
fn fig3_pipeline_live_equals_batch_on_gap_heavy_data() {
    // The full end-to-end application, including the stateful transform
    // closures (fill, resample, normalize) whose carried history must
    // survive incremental polling unchanged.
    let s_ecg = StreamShape::new(0, 2);
    let s_abp = StreamShape::new(0, 8);
    let ecg = recorded(s_ecg, 8_000, 41);
    let abp = recorded(s_abp, 2_000, 42);
    assert_live_matches_batch(
        || {
            lspipe::fig3_pipeline(s_ecg, s_abp, ROUND)
                .unwrap()
                .compile()
                .unwrap()
        },
        vec![ecg, abp],
    );
}
