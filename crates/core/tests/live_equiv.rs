//! Deployment seamlessness (§2): a recorded signal pushed through
//! `LiveSession::push`/`poll`/`finish` must yield *byte-identical* output
//! to the batch `Executor::run_collect` of the same compiled query —
//! including on gap-heavy data, where targeted processing skips rounds
//! online and offline alike.

use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::live::LiveSession;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::join::JoinKind;
use lifestream_core::pipeline as lspipe;
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use proptest::prelude::*;

const ROUND: Tick = 400;

/// A recorded, gap-riddled signal: deterministic waveform with several
/// dropouts of varying length (including one longer than a round).
fn recorded(shape: StreamShape, slots: usize, seed: u64) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            ((x >> 40) % 997) as f32 / 7.0
        })
        .collect();
    let mut data = SignalData::dense(shape, vals);
    let span = slots as Tick * shape.period();
    // Gap pattern: short dropout, mid dropout, and one > ROUND.
    data.punch_gap(span / 10, span / 10 + 3 * shape.period());
    data.punch_gap(span / 3, span / 3 + span / 20);
    data.punch_gap(span / 2, span / 2 + ROUND + span / 15);
    data
}

/// Replays `sources` through a live session (pushing present samples in
/// time order, interleaved across sources, polling periodically), then
/// checks the collected output against the batch run bit-for-bit.
fn assert_live_matches_batch(build: impl Fn() -> CompiledQuery, sources: Vec<SignalData>) {
    // Batch reference.
    let mut exec = build()
        .executor_with(
            sources.clone(),
            ExecOptions::default().with_round_ticks(ROUND),
        )
        .unwrap();
    let offline = exec.run_collect().unwrap();

    // Live replay: merge all sources' present events by time.
    let mut events: Vec<(Tick, usize, f32)> = Vec::new();
    for (s, data) in sources.iter().enumerate() {
        events.extend(data.present_samples().map(|(_, t, v)| (t, s, v)));
    }
    events.sort_by_key(|&(t, s, _)| (t, s));

    let mut session = LiveSession::new(build(), ROUND).unwrap();
    let mut online = OutputCollector::new(session.sink_arity().unwrap());
    for (k, &(t, s, v)) in events.iter().enumerate() {
        session.push(s, t, v).unwrap();
        if k % 97 == 0 {
            session.poll(|w| online.absorb(w)).unwrap();
        }
    }
    session.finish(|w| online.absorb(w)).unwrap();

    assert_eq!(offline.len(), online.len(), "event count online vs batch");
    assert_eq!(
        offline.checksum(),
        online.checksum(),
        "live output must be byte-identical to batch"
    );
    assert!(
        !offline.is_empty(),
        "trivially-empty comparison proves nothing"
    );
}

#[test]
fn select_chain_live_equals_batch_on_gap_heavy_data() {
    let shape = StreamShape::new(0, 2);
    let data = recorded(shape, 4_000, 11);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            q.source("s", shape)
                .select(1, |i, o| o[0] = i[0] * 3.0 - 1.0)
                .unwrap()
                .where_(|v| v[0] > 10.0)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![data],
    );
}

#[test]
fn sliding_aggregate_live_equals_batch_on_gap_heavy_data() {
    // Stateful kernel: the ring buffer must behave identically when fed
    // round-by-round online.
    let shape = StreamShape::new(0, 2);
    let data = recorded(shape, 4_000, 23);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            q.source("s", shape)
                .aggregate(AggKind::Mean, 40, 4)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![data],
    );
}

#[test]
fn shift_spill_live_equals_batch_on_gap_heavy_data() {
    // Shift pushes events into future rounds; the spill queue must drain
    // identically online.
    let shape = StreamShape::new(0, 1);
    let data = recorded(shape, 3_000, 37);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            q.source("s", shape).shift(900).unwrap().sink();
            q.compile().unwrap()
        },
        vec![data],
    );
}

#[test]
fn two_source_join_live_equals_batch_on_gap_heavy_data() {
    let s_ecg = StreamShape::new(0, 2);
    let s_abp = StreamShape::new(0, 8);
    let ecg = recorded(s_ecg, 4_000, 5);
    let abp = recorded(s_abp, 1_000, 6);
    assert_live_matches_batch(
        || {
            let q = Query::new();
            let a = q.source("ecg", s_ecg);
            let b = q.source("abp", s_abp);
            a.aggregate(AggKind::Max, 80, 80)
                .unwrap()
                .join(b, JoinKind::Inner)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![ecg, abp],
    );
}

/// The boundedness contract of the compacting live data plane: a session
/// polled while 100k+ samples stream through holds a buffer bounded by
/// round size + history margin + poll lag, never by stream length — and
/// since snapshots are `Arc` clones whose copy-on-write cost is the
/// retained length, bounded retention is bounded snapshot cost.
#[test]
fn long_session_retained_buffer_stays_bounded() {
    const TOTAL: i64 = 120_000;
    const ROUND: Tick = 500;
    const POLL_EVERY: i64 = 2_000;
    // A stateful pipeline with a real history margin: sliding mean over
    // a shifted stream.
    let q = Query::new();
    q.source("s", StreamShape::new(0, 1))
        .shift(300)
        .unwrap()
        .aggregate(AggKind::Mean, 50, 5)
        .unwrap()
        .sink();
    let mut s = LiveSession::new(q.compile().unwrap(), ROUND).unwrap();
    let margin = s.history_margin(0).unwrap();
    // Shift(300) composes with the sliding aggregate's window-50 lookback.
    assert_eq!(margin, 350);

    let mut emitted = 0usize;
    let mut max_retained = 0usize;
    for t in 0..TOTAL {
        s.push(0, t, (t % 611) as f32).unwrap();
        if (t + 1) % POLL_EVERY == 0 {
            s.poll(|w| emitted += w.present_count()).unwrap();
            max_retained = max_retained.max(s.retained_slots(0).unwrap());
        }
    }
    s.poll(|w| emitted += w.present_count()).unwrap();

    // Post-poll retention: the margin plus at most one unfinished round.
    let bound = (margin + 2 * ROUND) as usize;
    assert!(
        s.retained_slots(0).unwrap() <= bound,
        "retained {} > bound {bound}",
        s.retained_slots(0).unwrap()
    );
    // Across the whole run the buffer never exceeded margin + round +
    // poll lag — two orders of magnitude below the 120k-sample stream.
    let running_bound = (margin + 2 * ROUND + POLL_EVERY) as usize;
    assert!(
        max_retained <= running_bound,
        "max retained {max_retained} > bound {running_bound}"
    );
    assert!(max_retained * 20 < TOTAL as usize);
    assert!(emitted > 0, "the session must actually produce output");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deployment seamlessness, fuzzed: random single-source pipelines,
    /// gap patterns, and poll cadences — the compacting live session's
    /// per-sample replay must stay byte-identical to the batch run.
    #[test]
    fn random_pipelines_live_equal_batch(
        period in prop::sample::select(vec![1i64, 2, 4]),
        slots in 300usize..2500,
        seed in 0u64..u64::MAX / 2,
        gap_a in (0usize..2500, 1usize..400),
        gap_b in (0usize..2500, 1usize..400),
        poll_every in prop::sample::select(vec![23usize, 97, 401, 1861]),
        pipe in 0usize..4,
    ) {
        let shape = StreamShape::new(0, period);
        let mut data = recorded(shape, slots, seed);
        for (s, l) in [gap_a, gap_b] {
            let s = (s % slots) as Tick * period;
            data.punch_gap(s, s + l as Tick * period);
        }
        let build = || {
            let q = Query::new();
            let s = q.source("s", shape);
            match pipe {
                0 => s.select(1, |i, o| o[0] = i[0] * 1.5 + 2.0).unwrap().sink(),
                1 => s.aggregate(AggKind::Mean, 20 * period, 2 * period).unwrap().sink(),
                2 => s.aggregate(AggKind::Max, 64 * period, 64 * period).unwrap().sink(),
                _ => s.shift(13 * period).unwrap().sink(),
            }
            q.compile().unwrap()
        };

        let mut exec = build()
            .executor_with(
                vec![data.clone()],
                ExecOptions::default().with_round_ticks(ROUND),
            )
            .unwrap();
        let offline = exec.run_collect().unwrap();

        let mut session = LiveSession::new(build(), ROUND).unwrap();
        let mut online = OutputCollector::new(1);
        let mut pushed = 0usize;
        for (_, t, v) in data.present_samples().collect::<Vec<_>>() {
            session.push(0, t, v).unwrap();
            pushed += 1;
            if pushed.is_multiple_of(poll_every) {
                session.poll(|w| online.absorb(w)).unwrap();
            }
        }
        session.finish(|w| online.absorb(w)).unwrap();

        prop_assert_eq!(offline.len(), online.len());
        prop_assert_eq!(offline.checksum(), online.checksum());
    }
}

#[test]
fn fig3_pipeline_live_equals_batch_on_gap_heavy_data() {
    // The full end-to-end application, including the stateful transform
    // closures (fill, resample, normalize) whose carried history must
    // survive incremental polling unchanged.
    let s_ecg = StreamShape::new(0, 2);
    let s_abp = StreamShape::new(0, 8);
    let ecg = recorded(s_ecg, 8_000, 41);
    let abp = recorded(s_abp, 2_000, 42);
    assert_live_matches_batch(
        || {
            lspipe::fig3_pipeline(s_ecg, s_abp, ROUND)
                .unwrap()
                .compile()
                .unwrap()
        },
        vec![ecg, abp],
    );
}
