//! Fusion equivalence battery (the fused-execution contract).
//!
//! Operator fusion ([`lifestream_core::fuse`]) is a pure execution-plan
//! rewrite: a fused chain must produce output *byte-identical* to the
//! staged plan — same times, same durations, same f32 bit patterns —
//! on every input, gaps included. These tests pin that contract with
//! randomized fusible chains over gap-heavy data (including Fig.-3-style
//! long-dropout patterns), plus regression tests that re-gridding
//! operators (tumbling aggregates, `alter_period`) break fusion groups
//! instead of being silently mis-fused.

use lifestream_core::exec::{ExecOptions, Executor, OutputCollector};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::transform::TransformCtx;
use lifestream_core::source::SignalData;
use lifestream_core::stream::{Query, Stream};
use lifestream_core::time::{StreamShape, Tick};
use proptest::prelude::*;

const ROUND: Tick = 256;

/// One fusible unit-scale stage, chosen by the proptest strategy.
#[derive(Debug, Clone)]
enum Stage {
    Select { mul: f32, add: f32 },
    WhereGt { threshold: f32 },
    Normalize { window_slots: usize },
    Fir { taps: Vec<f32> },
    Sliding { kind: AggKind, window_slots: usize },
}

impl Stage {
    fn apply<'q>(&self, s: Stream<'q>) -> Stream<'q> {
        let period = s.shape().unwrap().period();
        match self.clone() {
            Stage::Select { mul, add } => s.map(move |v| v * mul + add).unwrap(),
            Stage::WhereGt { threshold } => s.where_(move |v| v[0] > threshold).unwrap(),
            Stage::Normalize { window_slots } => s
                .transform(window_slots as Tick * period, normalize_closure())
                .unwrap(),
            Stage::Fir { taps } => s.pass_filter(taps).unwrap(),
            Stage::Sliding { kind, window_slots } => s
                .aggregate(kind, window_slots as Tick * period, period)
                .unwrap(),
        }
    }
}

/// A standard-score normalization over each sub-window — a stateless
/// windowed transform, so fused and staged runs share no hidden state.
fn normalize_closure() -> impl FnMut(TransformCtx<'_>) + Send + 'static {
    |ctx: TransformCtx<'_>| {
        let mut sum = 0.0f32;
        let mut n = 0u32;
        for (i, &p) in ctx.present.iter().enumerate() {
            if p {
                sum += ctx.input[i];
                n += 1;
            }
        }
        if n == 0 {
            return;
        }
        let mean = sum / n as f32;
        let mut var = 0.0f32;
        for (i, &p) in ctx.present.iter().enumerate() {
            if p {
                let d = ctx.input[i] - mean;
                var += d * d;
            }
        }
        let sd = (var / n as f32).sqrt().max(1e-6);
        for (i, &p) in ctx.present.iter().enumerate() {
            if p {
                ctx.output[i] = (ctx.input[i] - mean) / sd;
                ctx.out_present[i] = true;
            }
        }
    }
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-4.0f32..4.0, -10.0f32..10.0).prop_map(|(mul, add)| Stage::Select { mul, add }),
        (-50.0f32..800.0).prop_map(|threshold| Stage::WhereGt { threshold }),
        (4usize..40).prop_map(|window_slots| Stage::Normalize { window_slots }),
        prop::collection::vec(-1.0f32..1.0, 1..6).prop_map(|taps| Stage::Fir { taps }),
        (
            prop::sample::select(vec![
                AggKind::Mean,
                AggKind::Min,
                AggKind::Max,
                AggKind::Sum
            ]),
            2usize..32
        )
            .prop_map(|(kind, window_slots)| Stage::Sliding { kind, window_slots }),
    ]
}

/// A gap-riddled waveform: deterministic pseudo-random payloads with a
/// Fig.-3-style long dropout plus scattered short ones.
fn gappy(shape: StreamShape, slots: usize, seed: u64, gaps: &[(usize, usize)]) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            ((x >> 40) % 997) as f32 / 3.0 - 80.0
        })
        .collect();
    let mut data = SignalData::dense(shape, vals);
    let p = shape.period();
    // The long Fig.-3-style dropout (a detached-sensor stretch spanning
    // several rounds) plus whatever the strategy generated.
    data.punch_gap(slots as Tick / 3 * p, (slots as Tick / 3 + 600) * p);
    for &(s, l) in gaps {
        let s = (s % slots) as Tick * p;
        data.punch_gap(s, s + l as Tick * p);
    }
    data
}

fn run_chain(
    stages: &[Stage],
    data: &SignalData,
    opts: ExecOptions,
) -> (Executor, OutputCollector) {
    let q = Query::new();
    let mut s = q.source("s", data.shape());
    for st in stages {
        s = st.apply(s);
    }
    s.sink();
    let mut exec = q
        .compile()
        .unwrap()
        .executor_with(vec![data.clone()], opts)
        .unwrap();
    let out = exec.run_collect().unwrap();
    (exec, out)
}

/// Byte-identity: times, durations, and f32 *bit patterns* must all match.
fn assert_identical(fused: &OutputCollector, staged: &OutputCollector, ctx: &str) {
    assert_eq!(fused.len(), staged.len(), "{ctx}: event count");
    assert_eq!(fused.times(), staged.times(), "{ctx}: times");
    assert_eq!(fused.durations(), staged.durations(), "{ctx}: durations");
    for f in 0..fused.arity() {
        let (a, b) = (fused.values(f), staged.values(f));
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: field {f} slot {i} differs bitwise ({x} vs {y})"
            );
        }
    }
    assert_eq!(fused.checksum(), staged.checksum(), "{ctx}: checksum");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random fusible chains × gap-heavy data: the fused plan's output is
    /// byte-identical to staged execution.
    #[test]
    fn fused_matches_staged_bitwise(
        stages in prop::collection::vec(stage_strategy(), 2..6),
        period in prop::sample::select(vec![1i64, 2, 4]),
        slots in 2_000usize..6_000,
        seed in 0u64..u64::MAX / 2,
        gaps in prop::collection::vec((0usize..6_000, 1usize..300), 0..4),
    ) {
        let shape = StreamShape::new(0, period);
        let data = gappy(shape, slots, seed, &gaps);
        let (fused_exec, fused) =
            run_chain(&stages, &data, ExecOptions::default().with_round_ticks(ROUND));
        let (staged_exec, staged) = run_chain(
            &stages,
            &data,
            ExecOptions::default().with_round_ticks(ROUND).without_fusion(),
        );
        prop_assert_eq!(
            fused_exec.fusion_groups().len(),
            1,
            "a pure unit-scale chain must fuse into one group"
        );
        prop_assert!(staged_exec.fusion_groups().is_empty());
        // The fused plan must also be strictly smaller: every interior
        // window is gone from the footprint.
        prop_assert!(fused_exec.planned_bytes() < staged_exec.planned_bytes());
        assert_identical(&fused, &staged, &format!("{stages:?}"));
    }
}

/// Deterministic spot-check kept outside proptest so a plain `cargo test`
/// run always exercises the full op vocabulary in one chain.
#[test]
fn full_vocabulary_chain_is_bit_identical() {
    let stages = [
        Stage::Select {
            mul: 1.75,
            add: -3.0,
        },
        Stage::Normalize { window_slots: 25 },
        Stage::Fir {
            taps: vec![0.25, 0.5, 0.25],
        },
        Stage::Sliding {
            kind: AggKind::Mean,
            window_slots: 8,
        },
        Stage::WhereGt { threshold: -0.5 },
    ];
    let shape = StreamShape::new(0, 2);
    let data = gappy(shape, 12_000, 42, &[(500, 37), (7_000, 3), (9_999, 210)]);
    let (fused_exec, fused) = run_chain(
        &stages,
        &data,
        ExecOptions::default().with_round_ticks(ROUND),
    );
    let (_, staged) = run_chain(
        &stages,
        &data,
        ExecOptions::default()
            .with_round_ticks(ROUND)
            .without_fusion(),
    );
    assert_eq!(fused_exec.fusion_groups().len(), 1);
    assert_eq!(fused_exec.fusion_groups()[0].members.len(), 5);
    assert!(!fused.is_empty(), "empty output proves nothing");
    assert_identical(&fused, &staged, "full vocabulary chain");
}

/// Regression: a tumbling aggregate (window == stride) re-grids the
/// stream, so it must *break* the fusion group, not join it.
#[test]
fn tumbling_aggregate_breaks_fusion_group() {
    let q = Query::new();
    let s = q.source("s", StreamShape::new(0, 2));
    s.map(|v| v * 2.0)
        .unwrap()
        .map(|v| v + 1.0)
        .unwrap()
        .aggregate(AggKind::Mean, 64, 64) // tumbling: re-grids to period 64
        .unwrap()
        .map(|v| v * 0.5)
        .unwrap()
        .sink();
    let data = SignalData::dense(
        StreamShape::new(0, 2),
        (0..4_000).map(|i| i as f32).collect(),
    );
    let exec = q
        .compile()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default())
        .unwrap();
    let groups = exec.fusion_groups();
    // Only the two selects ahead of the aggregate fuse; the aggregate and
    // the lone select after it stay staged (a group needs >= 2 members).
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].members.len(), 2);
    for g in groups {
        for &m in &g.members {
            assert!(
                !matches!(
                    exec.graph().nodes[m].kind,
                    lifestream_core::graph::OpKind::Aggregate { .. }
                ),
                "tumbling aggregate must not be a fusion member"
            );
        }
    }
}

/// Regression: `alter_period` (resampling onto a new grid) is not
/// unit-scale and must break the group on both sides.
#[test]
fn alter_period_breaks_fusion_group() {
    let q = Query::new();
    let s = q.source("s", StreamShape::new(0, 2));
    s.map(|v| v * 2.0)
        .unwrap()
        .map(|v| v + 1.0)
        .unwrap()
        .alter_period(4)
        .unwrap()
        .map(|v| v - 3.0)
        .unwrap()
        .map(|v| v * 0.25)
        .unwrap()
        .sink();
    let data = SignalData::dense(
        StreamShape::new(0, 2),
        (0..4_000).map(|i| i as f32).collect(),
    );
    let exec = q
        .compile()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default())
        .unwrap();
    let groups = exec.fusion_groups();
    assert_eq!(groups.len(), 2, "one group on each side of alter_period");
    for g in groups {
        assert_eq!(g.members.len(), 2);
        for &m in &g.members {
            assert!(matches!(
                exec.graph().nodes[m].kind,
                lifestream_core::graph::OpKind::Select
            ));
        }
    }
}
