//! Differential property tests: random Table-2 pipelines must produce
//! identical [`OutputCollector`] checksums on every engine.
//!
//! Each case draws an operator, window sizes, and a gap pattern, builds
//! the shared [`Workload`] once, and runs it through every engine in
//! [`all_engines`] — LifeStream, Trill, NumLib, and the sharded runtime.
//! Collected events are poured into an [`OutputCollector`] per engine and
//! compared by the order-sensitive checksum, so agreement is bit-for-bit
//! on both times and payload values.
//!
//! The vocabulary is restricted to workloads whose semantics all three
//! architectures can represent exactly (the paper's own comparison does
//! the same): `Select`, `Where`, tumbling `Aggregate`, and same-grid
//! `Join`. One documented normalization: the NumLib baseline labels an
//! aggregation window by its *end* (NumPy convention), LifeStream and
//! Trill by its *start* — NumLib times are shifted by `-window` before
//! checksumming. Spans are kept window-aligned because a whole-array
//! baseline cannot see a trailing partial window at all.

use lifestream::engine::{all_engines, EngineOptions, Workload};
use lifestream_core::exec::OutputCollector;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::source::SignalData;
use lifestream_core::time::{StreamShape, Tick};
use proptest::prelude::*;

/// Deterministic pseudo-random signal: values derived from a seed, gaps
/// punched from `(start_slot, len_slots)` pairs.
fn signal(period: Tick, slots: usize, seed: u64, gaps: &[(usize, usize)]) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) % 2001) as f32 / 10.0 - 100.0
        })
        .collect();
    let mut data = SignalData::dense(StreamShape::new(0, period), vals);
    for &(s, l) in gaps {
        let s = (s % slots.max(1)) as Tick * period;
        let e = s + (l.max(1) as Tick) * period;
        data.punch_gap(s, e);
    }
    data
}

fn collector_from(events: &[(Tick, f32)], time_shift: Tick) -> OutputCollector {
    let mut c = OutputCollector::new(1);
    for &(t, v) in events {
        c.push(t - time_shift, 0, &[v]);
    }
    c
}

/// Runs `workload` on every supporting engine and asserts all collected
/// outputs hash identically. `numlib_shift` maps the NumLib baseline's
/// window-end timestamps onto the others' window-start grid.
fn assert_engines_agree(workload: &Workload, inputs: &[SignalData], numlib_shift: Tick) {
    let opts = EngineOptions::default().collecting();
    let mut reference: Option<(&'static str, u64, usize)> = None;
    for engine in all_engines().iter().filter(|e| e.supports(workload)) {
        let out = engine
            .run(workload, inputs.to_vec(), &opts)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", engine.name(), workload.name()));
        let collected = out
            .collected
            .unwrap_or_else(|| panic!("{} did not collect", engine.name()));
        let shift = if engine.name() == "NumLib" {
            numlib_shift
        } else {
            0
        };
        let c = collector_from(&collected, shift);
        match reference {
            None => reference = Some((engine.name(), c.checksum(), c.len())),
            Some((ref_name, ref_sum, ref_len)) => {
                prop_assert_eq!(
                    c.len(),
                    ref_len,
                    "{} event count differs from {} on {}",
                    engine.name(),
                    ref_name,
                    workload.name()
                );
                prop_assert_eq!(
                    c.checksum(),
                    ref_sum,
                    "{} checksum differs from {} on {}",
                    engine.name(),
                    ref_name,
                    workload.name()
                );
            }
        }
    }
    assert!(reference.is_some(), "no engine supported the workload");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Payload operators: affine `Select` and threshold `Where` over
    /// random grids, lengths, coefficients, and gap patterns.
    #[test]
    fn select_and_where_agree_on_all_engines(
        period in prop::sample::select(vec![1i64, 2, 4, 8]),
        slots in 200usize..3000,
        seed in 0u64..u64::MAX / 2,
        gaps in prop::collection::vec((0usize..3000, 1usize..400), 0..5),
        mul in -4.0f32..4.0,
        add in -50.0f32..50.0,
        threshold in -80.0f32..80.0,
        pick_where in any::<bool>(),
    ) {
        let data = signal(period, slots, seed, &gaps);
        let workload = if pick_where {
            Workload::WhereGt { threshold }
        } else {
            Workload::Select { mul, add }
        };
        assert_engines_agree(&workload, &[data], 0);
    }

    /// Tumbling aggregations: every exactly-representable kind, random
    /// window sizes, window-aligned spans, random gaps.
    #[test]
    fn tumbling_aggregates_agree_on_all_engines(
        period in prop::sample::select(vec![1i64, 2, 4]),
        wslots in prop::sample::select(vec![5usize, 10, 25, 50]),
        windows in 4usize..40,
        seed in 0u64..u64::MAX / 2,
        gaps in prop::collection::vec((0usize..2000, 1usize..300), 0..5),
        kind in prop::sample::select(vec![
            AggKind::Sum,
            AggKind::Mean,
            AggKind::Max,
            AggKind::Min,
            AggKind::Count,
        ]),
    ) {
        let slots = wslots * windows; // window-aligned span
        let window = wslots as Tick * period;
        let data = signal(period, slots, seed, &gaps);
        let workload = Workload::Aggregate { kind, window, stride: window };
        assert_engines_agree(&workload, &[data], window);
    }

    /// Same-grid temporal inner joins with independent gap patterns on
    /// each side.
    #[test]
    fn joins_agree_on_all_engines(
        period in prop::sample::select(vec![1i64, 2, 4]),
        left_slots in 200usize..2500,
        right_slots in 200usize..2500,
        seed in 0u64..u64::MAX / 2,
        left_gaps in prop::collection::vec((0usize..2500, 1usize..300), 0..4),
        right_gaps in prop::collection::vec((0usize..2500, 1usize..300), 0..4),
    ) {
        let left = signal(period, left_slots, seed, &left_gaps);
        let right = signal(period, right_slots, seed ^ 0xabcdef, &right_gaps);
        assert_engines_agree(&Workload::Join, &[left, right], 0);
    }
}
