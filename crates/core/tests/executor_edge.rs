//! Executor edge cases: offset streams, join flavours end-to-end,
//! multi-sink queries, chained reshapes, and live-session multi-source
//! interleavings.

use lifestream_core::exec::ExecOptions;
use lifestream_core::live::LiveSession;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::join::JoinKind;
use lifestream_core::prelude::*;

fn ramp(shape: StreamShape, n: usize) -> SignalData {
    SignalData::dense(shape, (0..n).map(|i| i as f32).collect())
}

#[test]
fn offset_stream_executes_correctly() {
    // Events at 500, 502, 504, ... — far from the round grid's origin.
    let shape = StreamShape::new(500, 2);
    let data = ramp(shape, 100);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", shape);
    let sel = qb.select_map(src, |v| v + 0.5);
    qb.sink(sel);
    let out = qb
        .compile()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(64))
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(out.len(), 100);
    assert_eq!(out.times()[0], 500);
    assert_eq!(out.values(0)[0], 0.5);
}

#[test]
fn left_join_emits_all_left_events() {
    let s = StreamShape::new(0, 1);
    let left = ramp(s, 100);
    let mut right = ramp(s, 100);
    right.punch_gap(20, 80);
    let mut qb = QueryBuilder::new();
    let l = qb.source("l", s);
    let r = qb.source("r", s);
    let j = qb.join(l, r, JoinKind::Left).unwrap();
    qb.sink(j);
    let out = qb
        .compile()
        .unwrap()
        .executor(vec![left, right])
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(out.len(), 100);
    // Right side NaN inside the gap.
    let idx30 = out.times().iter().position(|&t| t == 30).unwrap();
    assert!(out.values(1)[idx30].is_nan());
    assert!(!out.values(1)[5].is_nan());
}

#[test]
fn outer_join_covers_union() {
    let s = StreamShape::new(0, 1);
    let mut left = ramp(s, 100);
    let mut right = ramp(s, 100);
    left.punch_gap(0, 50);
    right.punch_gap(50, 100);
    let mut qb = QueryBuilder::new();
    let l = qb.source("l", s);
    let r = qb.source("r", s);
    let j = qb.join(l, r, JoinKind::Outer).unwrap();
    qb.sink(j);
    let stats = qb
        .compile()
        .unwrap()
        .executor(vec![left, right])
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(stats.output_events, 100); // union covers everything
}

#[test]
fn multi_sink_query_counts_both_outputs() {
    let s = StreamShape::new(0, 2);
    let data = ramp(s, 50);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", s);
    let a = qb.select_map(src, |v| v);
    let b = qb.where_(src, |v| v[0] >= 25.0).unwrap();
    qb.sink(a);
    qb.sink(b);
    let compiled = qb.compile().unwrap();
    let mut exec = compiled.executor(vec![data]).unwrap();
    // run_collect rejects multi-sink; run_with sees both.
    assert!(exec.run_collect().is_err());
}

#[test]
fn chained_reshapes_compose() {
    // shift -> alter_period -> fill (via transform): a resample-to-denser
    // grid after a timing alignment.
    let s = StreamShape::new(0, 8);
    let data = ramp(s, 50);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", s);
    let sh = qb.shift(src, 8).unwrap();
    let up = qb.alter_period(sh, 4).unwrap();
    qb.sink(up);
    let out = qb
        .compile()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(80))
        .unwrap()
        .run_collect()
        .unwrap();
    // 50 events survive (shifted by 8, on the finer grid every other slot).
    assert_eq!(out.len(), 50);
    assert_eq!(out.times()[0], 8);
    assert_eq!(out.times()[1], 16);
}

#[test]
fn aggregate_chain_mean_of_means() {
    let s = StreamShape::new(0, 1);
    let data = ramp(s, 1000);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", s);
    let m1 = qb.aggregate(src, AggKind::Mean, 10, 10).unwrap();
    let m2 = qb.aggregate(m1, AggKind::Mean, 100, 100).unwrap();
    qb.sink(m2);
    let out = qb
        .compile()
        .unwrap()
        .executor(vec![data])
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(out.len(), 10);
    // Mean of means over uniform windows = global window mean.
    assert!((out.values(0)[0] - 49.5).abs() < 1e-3);
    assert!((out.values(0)[9] - 949.5).abs() < 1e-2);
}

#[test]
fn live_session_two_sources_wait_for_slowest() {
    let s1 = StreamShape::new(0, 1);
    let s2 = StreamShape::new(0, 2);
    let mut qb = QueryBuilder::new();
    let a = qb.source("a", s1);
    let b = qb.source("b", s2);
    let j = qb.join(a, b, JoinKind::Inner).unwrap();
    qb.sink(j);
    let mut session = LiveSession::new(qb.compile().unwrap(), 50).unwrap();
    // Source 0 races ahead; source 1 lags.
    for t in 0..200 {
        session.push(0, t, t as f32).unwrap();
    }
    let mut n = 0usize;
    session.poll(|w| n += w.present_count()).unwrap();
    assert_eq!(n, 0, "no output until the lagging source catches up");
    for t in (0..200).step_by(2) {
        session.push(1, t, t as f32).unwrap();
    }
    session.poll(|w| n += w.present_count()).unwrap();
    assert!(n >= 150, "joined output after both sides arrive: {n}");
    session.finish(|w| n += w.present_count()).unwrap();
    assert_eq!(n, 200);
}

#[test]
fn where_then_aggregate_sees_filtered_events_only() {
    let s = StreamShape::new(0, 1);
    let data = ramp(s, 100);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", s);
    let evens = qb.where_(src, |v| (v[0] as i64) % 2 == 0).unwrap();
    let sum = qb.aggregate(evens, AggKind::Sum, 10, 10).unwrap();
    qb.sink(sum);
    let out = qb
        .compile()
        .unwrap()
        .executor(vec![data])
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(out.len(), 10);
    assert_eq!(out.values(0)[0], 0.0 + 2.0 + 4.0 + 6.0 + 8.0);
}

#[test]
fn round_larger_than_dataset_runs_once() {
    let s = StreamShape::new(0, 2);
    let data = ramp(s, 10);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", s);
    qb.sink(src);
    let mut exec = qb
        .compile()
        .unwrap()
        .executor_with(
            vec![data],
            ExecOptions::default().with_round_ticks(1_000_000),
        )
        .unwrap();
    let stats = exec.run().unwrap();
    assert_eq!(stats.output_events, 10);
    assert!(stats.windows_executed <= 2);
}

#[test]
fn stats_skip_plus_exec_covers_span() {
    let s = StreamShape::new(0, 1);
    let mut data = ramp(s, 10_000);
    data.punch_gap(2_000, 8_000);
    let mut qb = QueryBuilder::new();
    let src = qb.source("s", s);
    qb.sink(src);
    let mut exec = qb
        .compile()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(500))
        .unwrap();
    let stats = exec.run().unwrap();
    // 10_000 span / 500 round = 20 rounds + 1 drain round.
    assert!(stats.windows_executed + stats.windows_skipped >= 20);
    assert!(stats.windows_skipped >= 10);
    assert_eq!(stats.output_events, 4_000);
}

// ---------------------------------------------------------------------
// replace_sources / recycle misuse: descriptive errors, never panics
// ---------------------------------------------------------------------

fn two_source_executor() -> lifestream_core::exec::Executor {
    let mut qb = QueryBuilder::new();
    let a = qb.source("ecg", StreamShape::new(0, 2));
    let b = qb.source("abp", StreamShape::new(0, 8));
    let j = qb.join(a, b, JoinKind::Inner).unwrap();
    qb.sink(j);
    qb.compile()
        .unwrap()
        .executor(vec![
            ramp(StreamShape::new(0, 2), 400),
            ramp(StreamShape::new(0, 8), 100),
        ])
        .unwrap()
}

#[test]
fn replace_sources_wrong_count_is_a_descriptive_error() {
    let mut exec = two_source_executor();
    let err = exec
        .replace_sources(vec![ramp(StreamShape::new(0, 2), 400)])
        .unwrap_err();
    assert!(matches!(
        err,
        Error::SourceCountMismatch {
            expected: 2,
            actual: 1
        }
    ));
    // Regression lock on the rendered message.
    assert_eq!(
        err.to_string(),
        "query declares 2 sources but 1 datasets were supplied"
    );
    // The executor is untouched and still runs.
    assert!(exec.run().is_ok());
}

#[test]
fn replace_sources_wrong_shape_names_the_offending_source() {
    let mut exec = two_source_executor();
    let err = exec
        .replace_sources(vec![
            ramp(StreamShape::new(0, 2), 400),
            ramp(StreamShape::new(0, 4), 200), // abp declared (0, 8)
        ])
        .unwrap_err();
    match &err {
        Error::SourceShapeMismatch { name, .. } => assert_eq!(name, "abp"),
        other => panic!("expected shape mismatch, got {other:?}"),
    }
    // Regression lock on the rendered message: it must carry the real
    // source name and both shapes, not a generic placeholder.
    assert_eq!(
        err.to_string(),
        "source 'abp' declared (0, 8) but dataset has (0, 4)"
    );
    assert!(exec.run().is_ok(), "failed replace must not poison");
}

#[test]
fn recycle_resets_state_and_recomputes_span() {
    // A recycled executor must behave exactly like a fresh one, even when
    // the new dataset covers a different time span than the old one.
    let shape = StreamShape::new(0, 2);
    let build = || {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", shape);
        let agg = qb.aggregate(src, AggKind::Mean, 20, 2).unwrap();
        qb.sink(agg);
        qb.compile().unwrap()
    };
    let long = ramp(shape, 2_000);
    let mut short = ramp(shape, 600);
    short.punch_gap(100, 400);

    let mut pooled = build().executor(vec![long]).unwrap();
    pooled.run_collect().unwrap();
    pooled.recycle(vec![short.clone()]).unwrap();
    let warm = pooled.run_collect().unwrap();

    let fresh = build()
        .executor(vec![short])
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(warm.len(), fresh.len());
    assert_eq!(warm.checksum(), fresh.checksum());
}

#[test]
fn recycle_failure_leaves_executor_reusable() {
    let mut exec = two_source_executor();
    assert!(exec.recycle(vec![]).is_err());
    let ok = exec.recycle(vec![
        ramp(StreamShape::new(0, 2), 100),
        ramp(StreamShape::new(0, 8), 25),
    ]);
    assert!(ok.is_ok());
    assert!(exec.run().is_ok());
}
