//! `ExecOptions` ablation coverage: targeted-vs-eager query processing
//! and static-vs-dynamic memory are *performance* knobs — they must
//! agree bit-for-bit on outputs for every prebuilt pipeline in
//! `lifestream_core::pipeline`, on both dense and gap-heavy data.

use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::where_shape::ShapeMode;
use lifestream_core::pipeline as lspipe;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};

const WINDOW: Tick = 400;
const ROUND: Tick = 800;

fn waveform(shape: StreamShape, slots: usize, gaps: bool) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| (i as f32 * 0.05).sin() * 30.0 + 80.0 + (i % 13) as f32)
        .collect();
    let mut data = SignalData::dense(shape, vals);
    if gaps {
        let span = slots as Tick * shape.period();
        data.punch_gap(span / 8, span / 8 + span / 16);
        data.punch_gap(span / 2, span / 2 + ROUND * 3); // multi-round gap
        data.punch_gap(span - span / 10, span); // tail dropout
    }
    data
}

type PipelineCase = (&'static str, Box<dyn Fn() -> Query>, Vec<SignalData>);

/// Every prebuilt pipeline as `(name, query builder, source datasets)`.
fn prebuilt(gaps: bool) -> Vec<PipelineCase> {
    let s2 = StreamShape::new(0, 2);
    let s8 = StreamShape::new(0, 8);

    vec![
        (
            "normalize",
            Box::new(move || {
                let q = Query::new();
                lspipe::normalize(q.source("s", s2), WINDOW).unwrap().sink();
                q
            }) as Box<dyn Fn() -> Query>,
            vec![waveform(s2, 6_000, gaps)],
        ),
        (
            "pass_filter",
            Box::new(move || {
                let q = Query::new();
                lspipe::pass_filter(q.source("s", s2), WINDOW, lspipe::fir_lowpass(15, 0.1))
                    .unwrap()
                    .sink();
                q
            }),
            vec![waveform(s2, 6_000, gaps)],
        ),
        (
            "fill_const",
            Box::new(move || {
                let q = Query::new();
                lspipe::fill_const(q.source("s", s2), WINDOW, -5.0)
                    .unwrap()
                    .sink();
                q
            }),
            vec![waveform(s2, 6_000, gaps)],
        ),
        (
            "fill_mean",
            Box::new(move || {
                let q = Query::new();
                lspipe::fill_mean(q.source("s", s2), WINDOW).unwrap().sink();
                q
            }),
            vec![waveform(s2, 6_000, gaps)],
        ),
        (
            "resample",
            Box::new(move || {
                let q = Query::new();
                lspipe::resample(q.source("s", s8), 2, WINDOW)
                    .unwrap()
                    .sink();
                q
            }),
            vec![waveform(s8, 1_500, gaps)],
        ),
        (
            "fig3_pipeline",
            Box::new(move || lspipe::fig3_pipeline(s2, s8, WINDOW).unwrap()),
            vec![waveform(s2, 6_000, gaps), waveform(s8, 1_500, gaps)],
        ),
        (
            "linezero_pipeline",
            Box::new(move || {
                lspipe::linezero_pipeline(s8, vec![0.0; 32], 4, 3.0, ShapeMode::Keep).unwrap()
            }),
            vec![{
                // Pulsatile signal with a flat line-zero artifact so the
                // detector has something to find.
                let mut data = waveform(s8, 1_500, gaps);
                let mut vals = data.values().to_vec();
                for v in &mut vals[600..700] {
                    *v = 0.0;
                }
                let mut with_artifact =
                    SignalData::with_presence(data.shape(), vals, data.presence().clone());
                std::mem::swap(&mut data, &mut with_artifact);
                data
            }],
        ),
        (
            "cap_pipeline",
            Box::new(move || {
                lspipe::cap_pipeline(&[s2, s8, StreamShape::new(0, 4)], WINDOW).unwrap()
            }),
            vec![
                waveform(s2, 6_000, gaps),
                waveform(s8, 1_500, gaps),
                waveform(StreamShape::new(0, 4), 3_000, gaps),
            ],
        ),
    ]
}

fn run_with(build: &dyn Fn() -> Query, sources: &[SignalData], opts: ExecOptions) -> (usize, u64) {
    let mut exec = build()
        .compile()
        .unwrap()
        .executor_with(sources.to_vec(), opts)
        .unwrap();
    let out = exec.run_collect().unwrap();
    (out.len(), out.checksum())
}

#[test]
fn every_prebuilt_pipeline_agrees_across_all_ablations() {
    for gaps in [false, true] {
        for (name, build, sources) in prebuilt(gaps) {
            let base = ExecOptions::default().with_round_ticks(ROUND);
            let reference = run_with(build.as_ref(), &sources, base);
            assert!(
                reference.0 > 0,
                "{name} (gaps={gaps}) produced no output; comparison is vacuous"
            );
            let ablations = [
                ("eager", ExecOptions::eager().with_round_ticks(ROUND)),
                ("dynamic-memory", base.with_dynamic_memory()),
                (
                    "eager+dynamic",
                    ExecOptions::eager()
                        .with_round_ticks(ROUND)
                        .with_dynamic_memory(),
                ),
            ];
            for (label, opts) in ablations {
                let got = run_with(build.as_ref(), &sources, opts);
                assert_eq!(
                    got, reference,
                    "{name} (gaps={gaps}): {label} disagrees with targeted+static \
                     (events+checksum)"
                );
            }
        }
    }
}

#[test]
fn targeted_actually_skips_on_gap_heavy_data() {
    // Guard the ablation above against becoming vacuous: on the gapped
    // datasets, targeted execution must really be taking the skip path.
    let s2 = StreamShape::new(0, 2);
    let data = waveform(s2, 6_000, true);
    let q = Query::new();
    lspipe::normalize(q.source("s", s2), WINDOW).unwrap().sink();
    let mut exec = q
        .compile()
        .unwrap()
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(ROUND))
        .unwrap();
    let stats = exec.run().unwrap();
    assert!(stats.windows_skipped > 0, "no rounds were skipped");
}
