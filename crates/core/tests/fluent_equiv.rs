//! Equivalence tests: the fluent [`Stream`] surface drives the raw
//! [`QueryBuilder`] one-to-one, so both forms of the same query must
//! compile to identical plan graphs, trace to the same `global_dim`,
//! and produce identical `run_collect` output.

use lifestream_core::ops::where_shape::ShapeMode;
use lifestream_core::prelude::*;
use lifestream_core::query::CompiledQuery;

/// The paper's Listing 1 written against the low-level plan layer.
fn listing1_builder() -> CompiledQuery {
    let mut qb = QueryBuilder::new();
    let sig500 = qb.source("sig500", StreamShape::new(0, 2));
    let sig200 = qb.source("sig200", StreamShape::new(0, 5));
    let (a, b) = qb.multicast(sig500);
    let mean = qb.aggregate(a, AggKind::Mean, 100, 100).unwrap();
    let sub = qb
        .join_map(mean, b, JoinKind::Inner, 1, |m, v, o| o[0] = v[0] - m[0])
        .unwrap();
    let joined = qb.join(sub, sig200, JoinKind::Inner).unwrap();
    qb.sink(joined);
    qb.compile().unwrap()
}

/// The same query as one fluent chain.
fn listing1_fluent() -> CompiledQuery {
    let q = Query::new();
    let sig500 = q.source("sig500", StreamShape::new(0, 2));
    let sig200 = q.source("sig200", StreamShape::new(0, 5));
    let (a, b) = sig500.multicast();
    a.aggregate(AggKind::Mean, 100, 100)
        .unwrap()
        .join_map(b, JoinKind::Inner, 1, |m, v, o| o[0] = v[0] - m[0])
        .unwrap()
        .join(sig200, JoinKind::Inner)
        .unwrap()
        .sink();
    q.compile().unwrap()
}

fn listing1_inputs() -> Vec<SignalData> {
    vec![
        SignalData::dense(
            StreamShape::new(0, 2),
            (0..5_000).map(|i| (i % 313) as f32).collect(),
        ),
        SignalData::dense(
            StreamShape::new(0, 5),
            (0..2_000).map(|i| (i % 71) as f32).collect(),
        ),
    ]
}

/// A `where_shape`-bearing pipeline in both styles: DTW-filter a ramp
/// pattern, then rescale survivors.
fn shape_pattern() -> Vec<f32> {
    (0..16).map(|i| i as f32).collect()
}

fn where_shape_builder() -> CompiledQuery {
    let mut qb = QueryBuilder::new();
    let src = qb.source("abp", StreamShape::new(0, 8));
    let kept = qb
        .where_shape(src, shape_pattern(), 4, 3.0, true, ShapeMode::Keep)
        .unwrap();
    let scaled = qb.select_map(kept, |v| v * 0.5);
    qb.sink(scaled);
    qb.compile().unwrap()
}

fn where_shape_fluent() -> CompiledQuery {
    let q = Query::new();
    q.source("abp", StreamShape::new(0, 8))
        .where_shape(shape_pattern(), 4, 3.0, true, ShapeMode::Keep)
        .unwrap()
        .map(|v| v * 0.5)
        .unwrap()
        .sink();
    q.compile().unwrap()
}

fn where_shape_inputs() -> Vec<SignalData> {
    vec![SignalData::dense(
        StreamShape::new(0, 8),
        (0..4_000)
            .map(|i| ((i % 97) as f32 * 0.4).sin() * 20.0 + (i % 29) as f32)
            .collect(),
    )]
}

fn collect(c: CompiledQuery, inputs: Vec<SignalData>) -> (Vec<Tick>, Vec<Vec<f32>>) {
    let mut exec = c.executor(inputs).unwrap();
    let out = exec.run_collect().unwrap();
    let values = (0..out.arity()).map(|f| out.values(f).to_vec()).collect();
    (out.times().to_vec(), values)
}

#[test]
fn listing1_graphs_are_identical() {
    let b = listing1_builder();
    let f = listing1_fluent();
    assert_eq!(b.graph().render(), f.graph().render());
    assert_eq!(b.graph().len(), f.graph().len());
    assert_eq!(b.global_dim(), f.global_dim());
    assert_eq!(b.global_dim(), 100, "Fig. 6's traced dimension");
}

#[test]
fn listing1_outputs_are_identical() {
    let (bt, bv) = collect(listing1_builder(), listing1_inputs());
    let (ft, fv) = collect(listing1_fluent(), listing1_inputs());
    assert!(!bt.is_empty());
    assert_eq!(bt, ft);
    assert_eq!(bv, fv);
}

#[test]
fn where_shape_graphs_are_identical() {
    let b = where_shape_builder();
    let f = where_shape_fluent();
    assert_eq!(b.graph().render(), f.graph().render());
    assert_eq!(b.global_dim(), f.global_dim());
}

#[test]
fn where_shape_outputs_are_identical() {
    let (bt, bv) = collect(where_shape_builder(), where_shape_inputs());
    let (ft, fv) = collect(where_shape_fluent(), where_shape_inputs());
    assert!(!bt.is_empty(), "DTW filter kept nothing; test is vacuous");
    assert_eq!(bt, ft);
    assert_eq!(bv, fv);
}
