//! Presence maps: which intervals of a source stream actually hold data.
//!
//! Raw physiological data contains many discontinuities (Fig. 2 of the
//! paper). A [`PresenceMap`] records the kept (data-bearing) intervals of a
//! source as a sorted list of half-open `[start, end)` ranges. Targeted
//! query processing consults these maps — through the event-lineage maps —
//! to decide which output windows can possibly produce output.

use std::sync::Arc;

use crate::time::Tick;

/// Sorted, coalesced set of half-open data-bearing intervals.
///
/// The interval list is `Arc`-backed with copy-on-write mutation: cloning
/// a map is a reference-count bump, and a clone held elsewhere (a live
/// snapshot handed to the executor) stays valid while the original keeps
/// growing — the first mutation after a clone pays one copy of the
/// retained ranges, nothing more. Long-lived live buffers additionally
/// [`retire`](Self::retire) processed history so that copy stays bounded.
///
/// # Examples
/// ```
/// use lifestream_core::presence::PresenceMap;
/// let mut m = PresenceMap::new();
/// m.add(0, 10);
/// m.add(20, 30);
/// assert!(m.overlaps(5, 8));
/// assert!(!m.overlaps(10, 20));
/// assert_eq!(m.covered_ticks(), 20);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresenceMap {
    /// Sorted, non-overlapping, non-adjacent `[start, end)` intervals.
    ranges: Arc<Vec<(Tick, Tick)>>,
}

impl PresenceMap {
    /// Creates an empty map (no data anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map with a single interval `[start, end)`.
    pub fn full(start: Tick, end: Tick) -> Self {
        let mut m = Self::new();
        m.add(start, end);
        m
    }

    /// Adds `[start, end)`, merging with existing/adjacent intervals.
    /// Empty or inverted intervals are ignored.
    pub fn add(&mut self, start: Tick, end: Tick) {
        if end <= start {
            return;
        }
        // Find insertion window: all ranges overlapping or adjacent.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        let ranges = Arc::make_mut(&mut self.ranges);
        if lo == hi {
            ranges.insert(lo, (start, end));
            return;
        }
        let new_start = start.min(ranges[lo].0);
        let new_end = end.max(ranges[hi - 1].1);
        ranges.drain(lo..hi);
        ranges.insert(lo, (new_start, new_end));
    }

    /// Removes `[start, end)` from the map (punches a gap).
    pub fn remove(&mut self, start: Tick, end: Tick) {
        if end <= start {
            return;
        }
        if !self.overlaps(start, end) {
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in self.ranges.iter() {
            if e <= start || s >= end {
                out.push((s, e));
                continue;
            }
            if s < start {
                out.push((s, start));
            }
            if e > end {
                out.push((end, e));
            }
        }
        self.ranges = Arc::new(out);
    }

    /// Drops all coverage strictly below `before` — the compaction step of
    /// long-lived live buffers, which retire processed history so clones
    /// and copy-on-write both stay bounded by the retained suffix.
    pub fn retire(&mut self, before: Tick) {
        let cut = self.ranges.partition_point(|&(_, e)| e <= before);
        if cut == 0 && self.ranges.first().is_none_or(|&(s, _)| s >= before) {
            return;
        }
        let ranges = Arc::make_mut(&mut self.ranges);
        ranges.drain(..cut);
        if let Some(first) = ranges.first_mut() {
            first.0 = first.0.max(before);
        }
    }

    /// True if any data exists in `[start, end)`.
    pub fn overlaps(&self, start: Tick, end: Tick) -> bool {
        if end <= start {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        i < self.ranges.len() && self.ranges[i].0 < end
    }

    /// True if `[start, end)` is entirely covered by data.
    pub fn covers(&self, start: Tick, end: Tick) -> bool {
        if end <= start {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        i < self.ranges.len() && self.ranges[i].0 <= start && self.ranges[i].1 >= end
    }

    /// True if the instant `t` lies in a data interval.
    pub fn contains(&self, t: Tick) -> bool {
        self.overlaps(t, t + 1)
    }

    /// Number of data ticks covered by `[start, end)` ∩ map.
    pub fn covered_in(&self, start: Tick, end: Tick) -> Tick {
        let mut total = 0;
        for &(s, e) in self.ranges.iter() {
            let a = s.max(start);
            let b = e.min(end);
            if b > a {
                total += b - a;
            }
            if s >= end {
                break;
            }
        }
        total
    }

    /// Total ticks of data in the map.
    pub fn covered_ticks(&self) -> Tick {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// The kept intervals, sorted.
    pub fn ranges(&self) -> &[(Tick, Tick)] {
        &self.ranges
    }

    /// Earliest data tick, if any.
    pub fn start(&self) -> Option<Tick> {
        self.ranges.first().map(|&(s, _)| s)
    }

    /// One past the latest data tick, if any.
    pub fn end(&self) -> Option<Tick> {
        self.ranges.last().map(|&(_, e)| e)
    }

    /// True if the map holds no data.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Intersection with another map (used to reason about inner joins).
    pub fn intersect(&self, other: &PresenceMap) -> PresenceMap {
        let mut out = PresenceMap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            let s = s1.max(s2);
            let e = e1.min(e2);
            if e > s {
                out.add(s, e);
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Union with another map (used for outer joins).
    pub fn union(&self, other: &PresenceMap) -> PresenceMap {
        let mut out = self.clone();
        for &(s, e) in other.ranges.iter() {
            out.add(s, e);
        }
        out
    }

    /// Fraction of `[start, end)` covered by data, in `0.0..=1.0`.
    pub fn coverage_fraction(&self, start: Tick, end: Tick) -> f64 {
        if end <= start {
            return 0.0;
        }
        self.covered_in(start, end) as f64 / (end - start) as f64
    }
}

impl FromIterator<(Tick, Tick)> for PresenceMap {
    fn from_iter<T: IntoIterator<Item = (Tick, Tick)>>(iter: T) -> Self {
        let mut m = PresenceMap::new();
        for (s, e) in iter {
            m.add(s, e);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge() {
        let mut m = PresenceMap::new();
        m.add(10, 20);
        m.add(30, 40);
        m.add(18, 32); // bridges both
        assert_eq!(m.ranges(), &[(10, 40)]);
        m.add(40, 50); // adjacent merges
        assert_eq!(m.ranges(), &[(10, 50)]);
        m.add(60, 60); // empty ignored
        assert_eq!(m.ranges().len(), 1);
    }

    #[test]
    fn add_before_and_between() {
        let mut m = PresenceMap::new();
        m.add(100, 200);
        m.add(0, 50);
        m.add(60, 70);
        assert_eq!(m.ranges(), &[(0, 50), (60, 70), (100, 200)]);
    }

    #[test]
    fn remove_punches_gaps() {
        let mut m = PresenceMap::full(0, 100);
        m.remove(20, 30);
        m.remove(90, 120);
        assert_eq!(m.ranges(), &[(0, 20), (30, 90)]);
        m.remove(0, 100);
        assert!(m.is_empty());
    }

    #[test]
    fn overlap_and_cover_queries() {
        let m: PresenceMap = [(0, 10), (20, 30)].into_iter().collect();
        assert!(m.overlaps(5, 25));
        assert!(m.overlaps(9, 10));
        assert!(!m.overlaps(10, 20));
        assert!(m.covers(2, 8));
        assert!(!m.covers(5, 25));
        assert!(m.contains(0));
        assert!(!m.contains(10));
        assert!(m.contains(29));
    }

    #[test]
    fn covered_accounting() {
        let m: PresenceMap = [(0, 10), (20, 30)].into_iter().collect();
        assert_eq!(m.covered_ticks(), 20);
        assert_eq!(m.covered_in(5, 25), 10);
        assert_eq!(m.coverage_fraction(0, 40), 0.5);
        assert_eq!(m.start(), Some(0));
        assert_eq!(m.end(), Some(30));
    }

    #[test]
    fn intersect_union() {
        let a: PresenceMap = [(0, 10), (20, 30)].into_iter().collect();
        let b: PresenceMap = [(5, 25)].into_iter().collect();
        assert_eq!(a.intersect(&b).ranges(), &[(5, 10), (20, 25)]);
        assert_eq!(a.union(&b).ranges(), &[(0, 30)]);
        let empty = PresenceMap::new();
        assert!(a.intersect(&empty).is_empty());
        assert_eq!(a.union(&empty), a);
    }

    #[test]
    fn retire_drops_history() {
        let mut m: PresenceMap = [(0, 10), (20, 30), (40, 50)].into_iter().collect();
        m.retire(25);
        assert_eq!(m.ranges(), &[(25, 30), (40, 50)]);
        m.retire(25); // idempotent
        assert_eq!(m.ranges(), &[(25, 30), (40, 50)]);
        m.retire(0); // below everything: no-op
        assert_eq!(m.ranges(), &[(25, 30), (40, 50)]);
        m.retire(100);
        assert!(m.is_empty());
    }

    #[test]
    fn clone_is_shared_until_mutation() {
        let mut m = PresenceMap::full(0, 100);
        let snap = m.clone();
        m.add(200, 300); // copy-on-write: the snapshot must not move
        assert_eq!(snap.ranges(), &[(0, 100)]);
        assert_eq!(m.ranges(), &[(0, 100), (200, 300)]);
        let snap2 = m.clone();
        m.remove(0, 50);
        assert_eq!(snap2.ranges(), &[(0, 100), (200, 300)]);
        assert_eq!(m.ranges(), &[(50, 100), (200, 300)]);
    }

    #[test]
    fn from_iterator_collects() {
        let m: PresenceMap = [(20, 30), (0, 10), (8, 22)].into_iter().collect();
        assert_eq!(m.ranges(), &[(0, 30)]);
    }
}
