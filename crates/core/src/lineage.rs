//! Event lineage tracking (§5.1, Fig. 5).
//!
//! The *linearity property*: the sync time of every event produced by a
//! temporal operator is a linear transformation of its parent input events'
//! sync times. A [`LineageMap`] captures that transformation for one
//! operator input edge as an interval map: to produce output in `[a, b)`,
//! the operator must read input in `[a*num/den + shift - lookback,
//! b*num/den + shift + lookahead)`.
//!
//! All of the paper's operators have `num/den == 1` (temporal operators do
//! not rescale the time axis); `Shift(k)` sets `shift = -k` (output at `t`
//! came from input at `t - k`), and windowed aggregates set
//! `lookahead = w - p` style margins. Maps compose, which extends the
//! mapping from a query's final output all the way to its sources — the
//! mechanism behind targeted query processing.

use crate::time::{gcd, Tick};

/// A linear interval map from an operator's output time axis to one of its
/// input time axes.
///
/// # Examples
/// ```
/// use lifestream_core::lineage::LineageMap;
/// // Shift(3): output event at t reads input at t - 3.
/// let m = LineageMap::shift(3);
/// assert_eq!(m.map_interval(10, 20), (7, 17));
/// // Aggregate over w=100 windows: output at t reads input [t, t+100),
/// // so output [0, 100) needs input up to (and including) tick 198.
/// let agg = LineageMap::window(100);
/// assert_eq!(agg.map_interval(0, 100), (0, 199));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageMap {
    num: i64,
    den: i64,
    shift: Tick,
    lookback: Tick,
    lookahead: Tick,
}

impl LineageMap {
    /// The identity map: output `[a,b)` requires input `[a,b)`.
    pub fn identity() -> Self {
        Self {
            num: 1,
            den: 1,
            shift: 0,
            lookback: 0,
            lookahead: 0,
        }
    }

    /// Map for `Shift(k)`: an output event at `t` descends from the input
    /// event at `t - k`.
    pub fn shift(k: Tick) -> Self {
        Self {
            shift: -k,
            ..Self::identity()
        }
    }

    /// Map for an operator that reads a `w`-tick input window starting at
    /// each output event's sync time (tumbling/sliding aggregates,
    /// transforms): output `[a,b)` requires input `[a, b + w - 1)`, i.e. a
    /// lookahead of `w` minus the final event's own tick.
    pub fn window(w: Tick) -> Self {
        Self {
            lookahead: w.max(1) - 1,
            ..Self::identity()
        }
    }

    /// Map with explicit margins: output `[a,b)` requires input
    /// `[a - lookback, b + lookahead)`.
    pub fn with_margins(lookback: Tick, lookahead: Tick) -> Self {
        Self {
            lookback,
            lookahead,
            ..Self::identity()
        }
    }

    /// General constructor (rational scale). Kept for completeness of the
    /// linearity property; all built-in operators use scale 1.
    ///
    /// # Panics
    /// Panics if `den == 0` or `num <= 0`.
    pub fn scaled(num: i64, den: i64, shift: Tick) -> Self {
        assert!(den > 0 && num > 0, "scale must be positive");
        let g = gcd(num, den).max(1);
        Self {
            num: num / g,
            den: den / g,
            shift,
            lookback: 0,
            lookahead: 0,
        }
    }

    /// Maps an output interval `[a, b)` to the required input interval.
    pub fn map_interval(&self, a: Tick, b: Tick) -> (Tick, Tick) {
        let lo = self.scale_floor(a) + self.shift - self.lookback;
        let hi = self.scale_ceil(b) + self.shift + self.lookahead;
        (lo, hi)
    }

    /// Maps a single output instant to the input instant it descends from
    /// (ignoring margins).
    pub fn map_instant(&self, t: Tick) -> Tick {
        self.scale_floor(t) + self.shift
    }

    /// Composition: if `self` maps operator O's output to O's input, and
    /// `inner` maps that input (as some upstream operator's output) to *its*
    /// input, the composite maps O's output directly to the upstream input.
    ///
    /// Margins accumulate; scales multiply.
    pub fn compose(&self, inner: &LineageMap) -> LineageMap {
        // t -> t*n1/d1 + s1 (self), then u -> u*n2/d2 + s2 (inner)
        let num = self.num * inner.num;
        let den = self.den * inner.den;
        let g = gcd(num, den).max(1);
        LineageMap {
            num: num / g,
            den: den / g,
            shift: inner.map_instant(self.shift),
            // Margins from self are expressed on the intermediate axis; for
            // unit scales they carry through directly, which covers every
            // built-in operator.
            lookback: inner.lookback + self.lookback * inner.num / inner.den,
            lookahead: inner.lookahead + self.lookahead * inner.num / inner.den,
        }
    }

    /// True when the map does not rescale the time axis (`num == den`).
    /// All of the paper's operators are unit-scale; consumers that assume
    /// shift-invariant margins (live-buffer compaction) check this and
    /// fall back to keeping everything when it fails.
    pub fn is_unit_scale(&self) -> bool {
        self.num == self.den
    }

    /// Lookback margin (ticks of input before the mapped start).
    pub fn lookback(&self) -> Tick {
        self.lookback
    }

    /// Lookahead margin (ticks of input past the mapped end).
    pub fn lookahead(&self) -> Tick {
        self.lookahead
    }

    fn scale_floor(&self, t: Tick) -> Tick {
        (t * self.num).div_euclid(self.den)
    }

    fn scale_ceil(&self, t: Tick) -> Tick {
        (t * self.num + self.den - 1).div_euclid(self.den)
    }
}

impl Default for LineageMap {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_interval_to_itself() {
        let m = LineageMap::identity();
        assert_eq!(m.map_interval(0, 100), (0, 100));
        assert_eq!(m.map_instant(42), 42);
    }

    #[test]
    fn shift_follows_fig5b() {
        // Fig. 5(b): Shift(k) moves events from t to t+k, so an output at
        // t+k descends from input at t.
        let m = LineageMap::shift(5);
        assert_eq!(m.map_instant(5), 0);
        assert_eq!(m.map_interval(5, 15), (0, 10));
        let neg = LineageMap::shift(-3);
        assert_eq!(neg.map_instant(0), 3);
    }

    #[test]
    fn window_adds_lookahead() {
        let m = LineageMap::window(100);
        assert_eq!(m.map_interval(0, 100), (0, 199));
        assert_eq!(m.lookahead(), 99);
        // Degenerate 1-tick window is identity.
        assert_eq!(LineageMap::window(1), LineageMap::identity());
    }

    #[test]
    fn margins_constructor() {
        let m = LineageMap::with_margins(10, 20);
        assert_eq!(m.map_interval(100, 200), (90, 220));
    }

    #[test]
    fn composition_chains_shifts_and_margins() {
        let a = LineageMap::shift(5); // out -> mid: t-5
        let b = LineageMap::shift(3); // mid -> in: t-3
        let c = a.compose(&b);
        assert_eq!(c.map_instant(10), 2); // 10-5-3
        let w = LineageMap::window(50);
        let cw = w.compose(&b);
        assert_eq!(cw.map_interval(0, 100), (-3, 146));
        // Lineage from sink to source through three ops, Fig. 5 style.
        let chain = LineageMap::identity()
            .compose(&LineageMap::shift(2))
            .compose(&LineageMap::window(10));
        assert_eq!(chain.map_interval(2, 12), (0, 19));
    }

    #[test]
    fn scaled_maps_reduce() {
        let m = LineageMap::scaled(2, 4, 0);
        assert_eq!(m, LineageMap::scaled(1, 2, 0));
        assert_eq!(m.map_interval(0, 10), (0, 5));
        assert_eq!(m.map_interval(1, 3), (0, 2));
    }

    #[test]
    fn compose_scales_multiply() {
        let a = LineageMap::scaled(1, 2, 0);
        let b = LineageMap::scaled(1, 3, 0);
        let c = a.compose(&b);
        assert_eq!(c.map_instant(12), 2); // 12/2 = 6, 6/3 = 2
    }
}
