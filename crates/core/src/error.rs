//! Crate error type.

use std::fmt;

use crate::time::{StreamShape, Tick};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised at query-compile or execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A query referenced a stream handle from a different builder or a
    /// node id out of range.
    InvalidHandle {
        /// The offending node index.
        node: usize,
    },
    /// The query graph has no sink.
    NoSink,
    /// The query graph has a cycle (streams may only flow forward).
    Cycle,
    /// Two streams cannot be joined because their grids never align.
    IncompatibleJoin {
        /// Left input shape.
        left: StreamShape,
        /// Right input shape.
        right: StreamShape,
    },
    /// An operator parameter is invalid (non-positive window, stride that
    /// does not divide the window, ...).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The number of supplied source datasets does not match the number of
    /// source nodes in the plan.
    SourceCountMismatch {
        /// Sources declared in the query.
        expected: usize,
        /// Datasets supplied.
        actual: usize,
    },
    /// A supplied dataset's shape differs from the shape declared for the
    /// corresponding source node.
    SourceShapeMismatch {
        /// Source node name.
        name: String,
        /// Shape declared in the query.
        declared: StreamShape,
        /// Shape of the supplied data.
        supplied: StreamShape,
    },
    /// Locality tracing failed to converge (dimension overflow).
    TraceDiverged {
        /// The dimension that overflowed the configured bound.
        dim: Tick,
    },
    /// Two fluent [`Stream`](crate::stream::Stream)s from different
    /// [`Query`](crate::stream::Query) scopes were combined in one
    /// operator.
    CrossQuery,
    /// An operation that requires single-field payloads received a wider
    /// stream.
    ArityMismatch {
        /// Arity required by the operator.
        expected: usize,
        /// Arity of the input stream.
        actual: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidHandle { node } => {
                write!(f, "invalid stream handle referencing node {node}")
            }
            Error::NoSink => write!(f, "query has no sink"),
            Error::Cycle => write!(f, "query graph contains a cycle"),
            Error::IncompatibleJoin { left, right } => write!(
                f,
                "streams {left} and {right} cannot be joined: grids never align"
            ),
            Error::InvalidParameter { message } => {
                write!(f, "invalid operator parameter: {message}")
            }
            Error::SourceCountMismatch { expected, actual } => write!(
                f,
                "query declares {expected} sources but {actual} datasets were supplied"
            ),
            Error::SourceShapeMismatch {
                name,
                declared,
                supplied,
            } => write!(
                f,
                "source '{name}' declared {declared} but dataset has {supplied}"
            ),
            Error::TraceDiverged { dim } => {
                write!(
                    f,
                    "locality tracing diverged: dimension {dim} exceeds bound"
                )
            }
            Error::CrossQuery => {
                write!(f, "streams from different query scopes cannot be combined")
            }
            Error::ArityMismatch { expected, actual } => write!(
                f,
                "operator requires payload arity {expected} but input has {actual}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<Error> = vec![
            Error::InvalidHandle { node: 3 },
            Error::NoSink,
            Error::Cycle,
            Error::IncompatibleJoin {
                left: StreamShape::new(0, 4),
                right: StreamShape::new(1, 4),
            },
            Error::InvalidParameter {
                message: "window must be positive".into(),
            },
            Error::SourceCountMismatch {
                expected: 2,
                actual: 1,
            },
            Error::SourceShapeMismatch {
                name: "ecg".into(),
                declared: StreamShape::new(0, 2),
                supplied: StreamShape::new(0, 8),
            },
            Error::TraceDiverged { dim: i64::MAX },
            Error::CrossQuery,
            Error::ArityMismatch {
                expected: 1,
                actual: 2,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("query"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
