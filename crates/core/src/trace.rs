//! Locality tracing (§5.2, Fig. 6).
//!
//! Static analysis over the computation graph that adjusts every FWindow's
//! dimension until the input and output dimensions of every operator match.
//! Because dimensions must stay multiples of each stream's period (and of
//! operator-specific grids like aggregate windows — Table 2's *Dimension*
//! column), mismatches are resolved by taking least common multiples, and
//! corrections ripple through the graph until a fixpoint — exactly the
//! procedure the paper walks through on the Listing 1 query, where
//! `(0,2)[2]`, `(0,5)[5]` and `(0,100)[100]` all converge to dimension 100.
//!
//! The resulting uniform dimensions mean each operator's output is consumed
//! immediately by its successor while still cache-resident, maximizing the
//! end-to-end locality of the pipeline.

use crate::error::{Error, Result};
use crate::graph::Graph;
use crate::time::{lcm, Tick};

/// Upper bound on traced dimensions; exceeding it means the query mixes
/// wildly incommensurate periods and tracing is diverging.
const DIM_BOUND: Tick = 1 << 40;

/// Outcome of the locality-tracing pass.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The uniform execution dimension (per weakly-connected component the
    /// dims converge; this is their overall LCM, used as the round length).
    pub global_dim: Tick,
    /// Number of fixpoint iterations taken.
    pub iterations: usize,
    /// Human-readable adjustment log (one entry per dimension change), the
    /// textual analogue of Fig. 6(b)–(e).
    pub log: Vec<String>,
}

/// Runs locality tracing over `graph`, setting every node's `dim` in place.
///
/// # Errors
/// Returns [`Error::TraceDiverged`] if a dimension exceeds the internal
/// bound (incommensurate periods).
pub fn trace(graph: &mut Graph) -> Result<TraceReport> {
    // Initial dimensions: each operator's natural constraint (Fig. 6(a)'s
    // starting graph sets each FWindow to its stream's period, and the
    // aggregate to its window size).
    for n in &mut graph.nodes {
        n.dim = n.kind.dim_constraint(n.shape);
    }

    let mut log = Vec::new();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        // Walk from the sinks backward (paper order), equalizing each
        // operator's input and output dimensions via LCM.
        for id in (0..graph.nodes.len()).rev() {
            let node_dim = graph.nodes[id].dim;
            let mut d = node_dim;
            for &inp in &graph.nodes[id].inputs.clone() {
                d = lcm(d, graph.nodes[inp].dim);
            }
            // Respect this node's own grid constraint after merging.
            d = lcm(
                d,
                graph.nodes[id].kind.dim_constraint(graph.nodes[id].shape),
            );
            if d > DIM_BOUND {
                return Err(Error::TraceDiverged { dim: d });
            }
            if d != node_dim {
                log.push(format!(
                    "adjust {} ({}): [{}] -> [{}]",
                    graph.nodes[id].kind.name(),
                    id,
                    node_dim,
                    d
                ));
                graph.nodes[id].dim = d;
                changed = true;
            }
            for &inp in &graph.nodes[id].inputs.clone() {
                if graph.nodes[inp].dim != d {
                    log.push(format!(
                        "adjust {} ({}): [{}] -> [{}] (to match consumer {})",
                        graph.nodes[inp].kind.name(),
                        inp,
                        graph.nodes[inp].dim,
                        d,
                        id
                    ));
                    graph.nodes[inp].dim = d;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if iterations > graph.nodes.len() + 2 {
            // The LCM lattice has height <= number of distinct constraints;
            // more iterations than nodes means something is wrong.
            return Err(Error::TraceDiverged {
                dim: graph.nodes.iter().map(|n| n.dim).max().unwrap_or(0),
            });
        }
    }

    let global_dim = graph
        .nodes
        .iter()
        .map(|n| n.dim)
        .fold(1, lcm)
        .min(DIM_BOUND);
    Ok(TraceReport {
        global_dim,
        iterations,
        log,
    })
}

/// Scales every traced dimension to `round_dim` (a multiple of the traced
/// global dimension) — used to apply the benchmark "window size" parameter
/// (1 minute by default in the paper's evaluation).
///
/// # Errors
/// Returns [`Error::InvalidParameter`] if `round_dim` is not a positive
/// multiple of the traced global dimension.
pub fn apply_round_dim(graph: &mut Graph, global_dim: Tick, round_dim: Tick) -> Result<()> {
    if round_dim <= 0 || round_dim % global_dim != 0 {
        return Err(Error::InvalidParameter {
            message: format!(
                "round dimension {round_dim} must be a positive multiple of the traced dimension {global_dim}"
            ),
        });
    }
    for n in &mut graph.nodes {
        n.dim = round_dim;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{JoinKindTag, Node, OpKind};
    use crate::time::StreamShape;

    fn node(id: usize, kind: OpKind, inputs: Vec<usize>, shape: StreamShape) -> Node {
        Node {
            id,
            name: kind.name().to_string(),
            kind,
            inputs,
            shape,
            arity: 1,
            dim: 0,
            lineage: vec![],
        }
    }

    /// Builds the Listing 1 computation graph of Fig. 6:
    /// sig500 (0,2) multicast -> Select and Mean(100); Join1; sig200 (0,5)
    /// Select; Join2.
    fn listing1_graph() -> Graph {
        let s500 = StreamShape::new(0, 2);
        let s200 = StreamShape::new(0, 5);
        let mut g = Graph::new();
        g.nodes
            .push(node(0, OpKind::Source { index: 0 }, vec![], s500));
        g.nodes.push(node(1, OpKind::Select, vec![0], s500));
        g.nodes.push(node(
            2,
            OpKind::Aggregate {
                window: 100,
                stride: 100,
            },
            vec![0],
            StreamShape::new(0, 100),
        ));
        g.nodes.push(node(
            3,
            OpKind::Join {
                kind: JoinKindTag::Inner,
            },
            vec![1, 2],
            s500, // gcd(2, 100) = 2
        ));
        g.nodes
            .push(node(4, OpKind::Source { index: 1 }, vec![], s200));
        g.nodes.push(node(5, OpKind::Select, vec![4], s200));
        g.nodes.push(node(
            6,
            OpKind::Join {
                kind: JoinKindTag::Inner,
            },
            vec![3, 5],
            StreamShape::new(0, 1), // gcd(2, 5) = 1
        ));
        g.nodes
            .push(node(7, OpKind::Sink, vec![6], StreamShape::new(0, 1)));
        g.sinks.push(7);
        g
    }

    #[test]
    fn listing1_converges_to_dim_100_fig6() {
        let mut g = listing1_graph();
        let report = trace(&mut g).unwrap();
        assert_eq!(report.global_dim, 100);
        for n in &g.nodes {
            assert_eq!(n.dim, 100, "node {} should trace to [100]", n);
        }
        assert!(!report.log.is_empty());
    }

    #[test]
    fn single_chain_keeps_minimal_dim() {
        let s = StreamShape::new(0, 2);
        let mut g = Graph::new();
        g.nodes
            .push(node(0, OpKind::Source { index: 0 }, vec![], s));
        g.nodes.push(node(1, OpKind::Select, vec![0], s));
        g.nodes.push(node(2, OpKind::Sink, vec![1], s));
        g.sinks.push(2);
        let report = trace(&mut g).unwrap();
        assert_eq!(report.global_dim, 2);
    }

    #[test]
    fn join_forces_lcm_of_periods() {
        let l = StreamShape::new(0, 2);
        let r = StreamShape::new(0, 5);
        let mut g = Graph::new();
        g.nodes
            .push(node(0, OpKind::Source { index: 0 }, vec![], l));
        g.nodes
            .push(node(1, OpKind::Source { index: 1 }, vec![], r));
        g.nodes.push(node(
            2,
            OpKind::Join {
                kind: JoinKindTag::Inner,
            },
            vec![0, 1],
            StreamShape::new(0, 1),
        ));
        g.nodes
            .push(node(3, OpKind::Sink, vec![2], StreamShape::new(0, 1)));
        g.sinks.push(3);
        let report = trace(&mut g).unwrap();
        // lcm(2, 5, 1) = 10.
        assert_eq!(report.global_dim, 10);
        assert_eq!(g.nodes[0].dim, 10);
        assert_eq!(g.nodes[1].dim, 10);
    }

    #[test]
    fn dims_are_multiples_of_each_period() {
        let mut g = listing1_graph();
        trace(&mut g).unwrap();
        for n in &g.nodes {
            assert_eq!(n.dim % n.shape.period(), 0);
        }
    }

    #[test]
    fn apply_round_dim_validates() {
        let mut g = listing1_graph();
        let r = trace(&mut g).unwrap();
        assert!(apply_round_dim(&mut g, r.global_dim, 250).is_err()); // not multiple
        assert!(apply_round_dim(&mut g, r.global_dim, 0).is_err());
        apply_round_dim(&mut g, r.global_dim, 60_000).unwrap();
        assert!(g.nodes.iter().all(|n| n.dim == 60_000));
    }

    #[test]
    fn tracing_is_idempotent() {
        let mut g = listing1_graph();
        let r1 = trace(&mut g).unwrap();
        let mut g2 = g.clone();
        let r2 = trace(&mut g2).unwrap();
        assert_eq!(r1.global_dim, r2.global_dim);
        assert!(r2.log.is_empty() || r2.iterations <= r1.iterations);
    }
}
