//! Execution statistics: events processed, windows executed vs. skipped,
//! steady-state allocation counting.

use std::fmt;

/// Counters collected by one [`Executor`](crate::exec::Executor) run.
///
/// `windows_skipped` is the direct measure of targeted query processing:
/// rounds whose lineage-mapped source intervals could not produce output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events emitted by the sink(s).
    pub output_events: u64,
    /// Events read from the sources (present events only).
    pub input_events: u64,
    /// Execution rounds that ran at least one kernel.
    pub windows_executed: u64,
    /// Execution rounds skipped by targeted query processing.
    pub windows_skipped: u64,
    /// Heap allocations performed after the memory plan was installed.
    /// Zero in steady state — the static-memory-allocation guarantee.
    pub steady_state_allocs: u64,
    /// Total kernel invocations.
    pub kernel_invocations: u64,
}

impl RunStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of rounds skipped, in `0.0..=1.0`.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.windows_executed + self.windows_skipped;
        if total == 0 {
            0.0
        } else {
            self.windows_skipped as f64 / total as f64
        }
    }

    /// Merges counters from another run (used by the multi-core harness).
    pub fn merge(&mut self, other: &RunStats) {
        self.output_events += other.output_events;
        self.input_events += other.input_events;
        self.windows_executed += other.windows_executed;
        self.windows_skipped += other.windows_skipped;
        self.steady_state_allocs += other.steady_state_allocs;
        self.kernel_invocations += other.kernel_invocations;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in={} out={} exec={} skip={} ({:.1}%) allocs={} kernels={}",
            self.input_events,
            self.output_events,
            self.windows_executed,
            self.windows_skipped,
            self.skip_fraction() * 100.0,
            self.steady_state_allocs,
            self.kernel_invocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_fraction_handles_zero() {
        assert_eq!(RunStats::new().skip_fraction(), 0.0);
        let s = RunStats {
            windows_executed: 3,
            windows_skipped: 1,
            ..Default::default()
        };
        assert_eq!(s.skip_fraction(), 0.25);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats {
            output_events: 5,
            input_events: 10,
            windows_executed: 2,
            windows_skipped: 1,
            steady_state_allocs: 0,
            kernel_invocations: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.output_events, 10);
        assert_eq!(a.kernel_invocations, 12);
    }

    #[test]
    fn display_nonempty() {
        assert!(!RunStats::new().to_string().is_empty());
    }
}
