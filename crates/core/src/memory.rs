//! Static memory allocation (§5.2).
//!
//! The *bounded memory footprint* property — a stream of period `p` can
//! hold at most `d / p` events in any `d`-tick interval — lets LifeStream
//! compute the exact buffer requirement of every FWindow in the plan at
//! query-compile time. The [`MemoryPlan`] preallocates every intermediate
//! FWindow once; steady-state execution then performs no heap allocation
//! or deallocation at all (the dynamic-allocation overhead other streaming
//! engines pay on every batch simply disappears).

use crate::fwindow::FWindow;
use crate::graph::{Graph, OpKind};

/// Per-node footprint entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFootprint {
    /// Node id.
    pub node: usize,
    /// Slot capacity (`dim / period`).
    pub slots: usize,
    /// Heap bytes of the preallocated FWindow.
    pub bytes: usize,
}

/// The preallocated buffer set plus its accounting.
#[derive(Debug)]
pub struct MemoryPlan {
    /// One FWindow per node; `None` for sinks (which read their input's
    /// window directly).
    pub windows: Vec<Option<FWindow>>,
    /// Per-node accounting.
    pub footprints: Vec<NodeFootprint>,
}

impl MemoryPlan {
    /// Builds the plan for a traced graph: allocates every node's output
    /// FWindow with capacity `dim / period`.
    ///
    /// # Panics
    /// Panics if the graph has not been traced (`dim == 0` somewhere).
    pub fn allocate(graph: &Graph) -> Self {
        Self::allocate_skipping(graph, &[])
    }

    /// Like [`allocate`](Self::allocate), but nodes with `skip[id] == true`
    /// get no FWindow and contribute nothing to the footprint — how
    /// operator fusion ([`fuse`](crate::fuse)) removes the interior
    /// buffers of a fused chain. An empty `skip` skips nothing.
    ///
    /// # Panics
    /// Panics if the graph has not been traced (`dim == 0` somewhere).
    pub fn allocate_skipping(graph: &Graph, skip: &[bool]) -> Self {
        let mut windows = Vec::with_capacity(graph.nodes.len());
        let mut footprints = Vec::new();
        for n in &graph.nodes {
            assert!(n.dim > 0, "graph must be traced before allocation");
            if matches!(n.kind, OpKind::Sink) || skip.get(n.id).copied().unwrap_or(false) {
                windows.push(None);
                continue;
            }
            let w = FWindow::new(n.shape, n.dim, n.arity);
            footprints.push(NodeFootprint {
                node: n.id,
                slots: w.capacity(),
                bytes: w.footprint_bytes(),
            });
            windows.push(Some(w));
        }
        Self {
            windows,
            footprints,
        }
    }

    /// Total preallocated heap bytes — the statically known upper bound of
    /// the query's intermediate-result memory.
    pub fn total_bytes(&self) -> usize {
        self.footprints.iter().map(|f| f.bytes).sum()
    }

    /// Total preallocated event slots.
    pub fn total_slots(&self) -> usize {
        self.footprints.iter().map(|f| f.slots).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Node, OpKind};
    use crate::time::StreamShape;

    fn traced_graph() -> Graph {
        let s = StreamShape::new(0, 2);
        let mut g = Graph::new();
        for (id, kind, inputs) in [
            (0usize, OpKind::Source { index: 0 }, vec![]),
            (1, OpKind::Select, vec![0]),
            (2, OpKind::Sink, vec![1]),
        ] {
            g.nodes.push(Node {
                id,
                name: kind.name().into(),
                kind,
                inputs,
                shape: s,
                arity: 1,
                dim: 100,
                lineage: vec![],
            });
        }
        g.sinks.push(2);
        g
    }

    #[test]
    fn allocates_one_window_per_non_sink() {
        let g = traced_graph();
        let plan = MemoryPlan::allocate(&g);
        assert!(plan.windows[0].is_some());
        assert!(plan.windows[1].is_some());
        assert!(plan.windows[2].is_none());
        assert_eq!(plan.footprints.len(), 2);
    }

    #[test]
    fn footprint_matches_bounded_memory_property() {
        let g = traced_graph();
        let plan = MemoryPlan::allocate(&g);
        // dim 100 / period 2 = 50 slots each.
        assert_eq!(plan.total_slots(), 100);
        let w = plan.windows[0].as_ref().unwrap();
        assert_eq!(plan.footprints[0].bytes, w.footprint_bytes());
        assert_eq!(plan.total_bytes(), 2 * w.footprint_bytes());
    }

    #[test]
    #[should_panic(expected = "traced")]
    fn untraced_graph_rejected() {
        let mut g = traced_graph();
        g.nodes[1].dim = 0;
        let _ = MemoryPlan::allocate(&g);
    }
}
