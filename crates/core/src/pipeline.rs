//! Prebuilt physiological-data pipelines, written against the fluent
//! [`Stream`] API.
//!
//! The building blocks here are the operation benchmarks of Table 3
//! (Normalize, PassFilter, FillConst, FillMean, Resample) expressed as
//! LifeStream queries, plus the three end-to-end applications evaluated in
//! the paper: the Fig. 3 ECG ⋈ ABP pipeline (§8.3), the line-zero artifact
//! detection model, and the cardiac-arrest-prediction (CAP) feature
//! pipeline (§8.4). Each operation takes and returns a [`Stream`], so
//! applications compose them like any other operator; the end-to-end
//! builders return a ready-to-compile [`Query`].

use crate::error::{Error, Result};
use crate::ops::aggregate::AggKind;
use crate::ops::join::JoinKind;
use crate::ops::transform::TransformCtx;
use crate::ops::where_shape::ShapeMode;
use crate::stream::{Query, Stream};
use crate::time::{StreamShape, Tick};

/// Designs a windowed-sinc low-pass FIR filter (Hamming window).
///
/// `cutoff` is the normalized cutoff frequency in `(0.0, 0.5)` (fraction of
/// the sampling rate); `taps` is the filter length.
///
/// # Panics
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5]`.
pub fn fir_lowpass(taps: usize, cutoff: f32) -> Vec<f32> {
    assert!(taps > 0, "taps must be positive");
    assert!(cutoff > 0.0 && cutoff <= 0.5, "cutoff must be in (0, 0.5]");
    let m = (taps - 1) as f32;
    let mut h: Vec<f32> = (0..taps)
        .map(|i| {
            let x = i as f32 - m / 2.0;
            let sinc = if x.abs() < 1e-6 {
                2.0 * cutoff
            } else {
                (2.0 * std::f32::consts::PI * cutoff * x).sin() / (std::f32::consts::PI * x)
            };
            let hamming = 0.54 - 0.46 * (2.0 * std::f32::consts::PI * i as f32 / m.max(1.0)).cos();
            sinc * hamming
        })
        .collect();
    let sum: f32 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// `Normalize`: standard-score normalization over `window`-tick windows
/// (`(v - mean) / std`), the Scikit-learn benchmark of Table 3.
///
/// # Errors
/// Propagates transform validation errors.
pub fn normalize(input: Stream<'_>, window: Tick) -> Result<Stream<'_>> {
    input.transform(window, |ctx: TransformCtx<'_>| {
        let n = ctx.input.len();
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for i in 0..n {
            if ctx.present[i] {
                sum += ctx.input[i] as f64;
                count += 1;
            }
        }
        if count == 0 {
            return;
        }
        let mean = sum / count as f64;
        let mut var = 0.0f64;
        for i in 0..n {
            if ctx.present[i] {
                let d = ctx.input[i] as f64 - mean;
                var += d * d;
            }
        }
        let std = (var / count as f64).sqrt().max(1e-9);
        for i in 0..n {
            if ctx.present[i] {
                ctx.output[i] = ((ctx.input[i] as f64 - mean) / std) as f32;
                ctx.out_present[i] = true;
            }
        }
    })
}

/// `PassFilter`: finite-impulse-response frequency filtering (the SciPy
/// benchmark of Table 3), built on the first-class `Fir` operator so
/// chains containing it fuse into single-pass kernels. Within each
/// maximal run of present samples, `y[t] = Σₖ taps[k]·x[t−k·period]`;
/// gaps reset the filter. On dense data this matches the historical
/// `Transform`-closure implementation exactly.
///
/// `window` is kept for API compatibility with the other Table-3
/// building blocks and validated the same way (positive multiple of the
/// period); the run-based filter no longer slices on it.
///
/// # Errors
/// Rejects an empty tap vector, an invalid window, or multi-field input.
pub fn pass_filter(input: Stream<'_>, window: Tick, taps: Vec<f32>) -> Result<Stream<'_>> {
    if taps.is_empty() {
        return Err(Error::InvalidParameter {
            message: "pass_filter requires at least one tap".into(),
        });
    }
    let period = input.shape()?.period();
    if window <= 0 || window % period != 0 {
        return Err(Error::InvalidParameter {
            message: format!(
                "pass_filter window {window} must be a positive multiple of period {period}"
            ),
        });
    }
    input.pass_filter(taps)
}

/// `FillConst`: fills gaps smaller than the sub-window with a constant
/// (the NumPy benchmark of Table 3). Sub-windows with no present values
/// stay absent — imputation patches holes in data, it does not invent
/// data where a monitor was disconnected outright (and an all-absent
/// window is exactly what targeted query processing skips, so filling it
/// would make targeted and eager execution disagree).
///
/// # Errors
/// Propagates transform validation errors.
pub fn fill_const(input: Stream<'_>, window: Tick, value: f32) -> Result<Stream<'_>> {
    input.transform(window, move |ctx: TransformCtx<'_>| {
        if !ctx.present.iter().any(|&p| p) {
            return;
        }
        for i in 0..ctx.input.len() {
            if ctx.present[i] {
                ctx.output[i] = ctx.input[i];
            } else {
                ctx.output[i] = value;
            }
            ctx.out_present[i] = true;
        }
    })
}

/// `FillMean`: fills gaps smaller than the sub-window with the mean of the
/// window's present values (the NumPy benchmark of Table 3). Windows with
/// no present values stay absent.
///
/// # Errors
/// Propagates transform validation errors.
pub fn fill_mean(input: Stream<'_>, window: Tick) -> Result<Stream<'_>> {
    input.transform(window, |ctx: TransformCtx<'_>| {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for i in 0..ctx.input.len() {
            if ctx.present[i] {
                sum += ctx.input[i] as f64;
                count += 1;
            }
        }
        if count == 0 {
            return;
        }
        let mean = (sum / count as f64) as f32;
        for i in 0..ctx.input.len() {
            ctx.output[i] = if ctx.present[i] { ctx.input[i] } else { mean };
            ctx.out_present[i] = true;
        }
    })
}

/// `Resample`: up/down-samples to `new_period` using linear interpolation
/// (the SciPy benchmark of Table 3). Composed from `AlterPeriod`
/// (re-grid) + `Transform` (interpolate the holes), with the closure
/// carrying the last sample across sub-windows.
///
/// # Errors
/// Propagates operator validation errors.
pub fn resample(input: Stream<'_>, new_period: Tick, window: Tick) -> Result<Stream<'_>> {
    let mut last: Option<(Tick, f32)> = None;
    input
        .alter_period(new_period)?
        .transform(window, move |ctx: TransformCtx<'_>| {
            let n = ctx.input.len();
            // Invalidate the carried sample across discontinuities: a
            // fresh kernel (recycled executor, skipped round) or a time
            // jump larger than one sub-window.
            if ctx.fresh {
                last = None;
            }
            if let Some((t, _)) = last {
                if ctx.base - t > window {
                    last = None;
                }
            }
            // A sub-window with no samples at all emits nothing: holding
            // the carried value across it would invent data in rounds
            // targeted processing (rightly) skips — e.g. the post-end
            // drain rounds, where eager execution would otherwise extend
            // the signal by a full window. The carried sample expires via
            // the distance check above, so later windows cannot
            // interpolate across the dead zone either.
            if !ctx.present.iter().any(|&p| p) {
                return;
            }
            let mut i = 0usize;
            while i < n {
                if ctx.present[i] {
                    ctx.output[i] = ctx.input[i];
                    ctx.out_present[i] = true;
                    last = Some((ctx.base + i as Tick * ctx.period, ctx.input[i]));
                    i += 1;
                    continue;
                }
                // Find the next present sample to interpolate toward.
                let next = (i + 1..n).find(|&j| ctx.present[j]);
                match (last, next) {
                    (Some((lt, lv)), Some(j)) => {
                        let nt = ctx.base + j as Tick * ctx.period;
                        let nv = ctx.input[j];
                        for k in i..j {
                            let t = ctx.base + k as Tick * ctx.period;
                            let frac = (t - lt) as f32 / (nt - lt) as f32;
                            ctx.output[k] = lv + frac * (nv - lv);
                            ctx.out_present[k] = true;
                        }
                        i = j;
                    }
                    (Some((_, lv)), None) => {
                        // Trailing holes: hold the last value (streaming
                        // boundary effect; SciPy would see the full array).
                        for k in i..n {
                            ctx.output[k] = lv;
                            ctx.out_present[k] = true;
                        }
                        i = n;
                    }
                    (None, Some(j)) => {
                        i = j; // leading holes before any sample stay absent
                    }
                    (None, None) => break,
                }
            }
        })
}

/// Builds the Fig. 3 end-to-end pipeline: impute both signals, upsample ABP
/// to the ECG rate, normalize both, and inner-join them. Returns the
/// ready-to-compile query.
///
/// Source order: 0 = ECG (period `ecg.period()`), 1 = ABP.
///
/// # Errors
/// Propagates operator validation errors.
pub fn fig3_pipeline(ecg: StreamShape, abp: StreamShape, window: Tick) -> Result<Query> {
    let q = Query::new();
    let ecg_src = q.source("ecg", ecg);
    let abp_src = q.source("abp", abp);
    // Signal value imputation.
    let ecg_f = fill_mean(ecg_src, window)?;
    let abp_f = fill_mean(abp_src, window)?;
    // Upsample ABP to the ECG rate.
    let abp_up = resample(abp_f, ecg.period(), window)?;
    // Normalize both, then join strictly overlapping events.
    normalize(ecg_f, window)?
        .join(normalize(abp_up, window)?, JoinKind::Inner)?
        .sink();
    Ok(q)
}

/// Builds the line-zero artifact detection model (§8.4): sliding-window
/// normalization followed by shape-based `Where` with the line-zero
/// pattern. `mode` selects detection (keep) or scrubbing (remove).
///
/// # Errors
/// Propagates operator validation errors.
pub fn linezero_pipeline(
    abp: StreamShape,
    pattern: Vec<f32>,
    band: usize,
    threshold: f32,
    mode: ShapeMode,
) -> Result<Query> {
    let q = Query::new();
    let src = q.source("abp", abp);
    // Sliding-window normalization (stride = 1 sample, window = 32 samples).
    let p = abp.period();
    let mean = src.aggregate(AggKind::Mean, 32 * p, p)?;
    let std = src.aggregate(AggKind::Std, 32 * p, p)?;
    src.join(mean, JoinKind::Inner)?
        .join(std, JoinKind::Inner)?
        .select(1, |v, o| {
            o[0] = (v[0] - v[1]) / v[2].max(1e-6);
        })?
        .where_shape(pattern, band, threshold, true, mode)?
        .sink();
    Ok(q)
}

/// Builds the cardiac-arrest-prediction (CAP) feature pipeline (§8.4):
/// joins `shapes.len()` signal streams (the paper uses 6) after per-signal
/// normalization, upsampling to the fastest rate, imputation, and event
/// masking.
///
/// # Errors
/// Returns an error when fewer than two signals are supplied or arity
/// limits are exceeded.
pub fn cap_pipeline(shapes: &[StreamShape], window: Tick) -> Result<Query> {
    if shapes.len() < 2 {
        return Err(Error::InvalidParameter {
            message: "CAP pipeline requires at least two signals".into(),
        });
    }
    let fastest = shapes.iter().map(|s| s.period()).min().expect("non-empty");
    let q = Query::new();
    let mut processed = Vec::with_capacity(shapes.len());
    for (i, &shape) in shapes.iter().enumerate() {
        let src = q.source(format!("sig{i}"), shape);
        let filled = fill_mean(src, window)?;
        let up = if shape.period() != fastest {
            resample(filled, fastest, window)?
        } else {
            filled
        };
        // Event masking: drop implausible magnitudes (|z| > 8).
        let masked = normalize(up, window)?.where_(|v| v[0].abs() <= 8.0)?;
        processed.push(masked);
    }
    let mut joined = processed[0];
    for &next in &processed[1..] {
        joined = joined.join(next, JoinKind::Inner)?;
    }
    joined.sink();
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecOptions;
    use crate::source::SignalData;

    fn sine(shape: StreamShape, n: usize, freq: f32) -> SignalData {
        SignalData::dense(
            shape,
            (0..n)
                .map(|i| (i as f32 * freq).sin() * 10.0 + 50.0)
                .collect(),
        )
    }

    #[test]
    fn fir_lowpass_is_normalized() {
        let h = fir_lowpass(31, 0.1);
        assert_eq!(h.len(), 31);
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        // Symmetric (linear phase).
        for i in 0..15 {
            assert!((h[i] - h[30 - i]).abs() < 1e-5);
        }
    }

    #[test]
    fn normalize_produces_zero_mean_unit_std() {
        let s = StreamShape::new(0, 2);
        let data = sine(s, 500, 0.05);
        let q = Query::new();
        normalize(q.source("s", s), 1000).unwrap().sink();
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.len(), 500);
        let m: f32 = out.values(0).iter().sum::<f32>() / 500.0;
        assert!(m.abs() < 1e-3, "mean {m}");
    }

    #[test]
    fn pass_filter_attenuates_high_frequency() {
        let s = StreamShape::new(0, 1);
        // High-frequency alternating signal.
        let data = SignalData::dense(
            s,
            (0..2000)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        let q = Query::new();
        pass_filter(q.source("s", s), 500, fir_lowpass(31, 0.05))
            .unwrap()
            .sink();
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        // After the filter warms up, the alternating component is ~gone.
        let tail = &out.values(0)[100..];
        let max_abs = tail.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(max_abs < 0.05, "max abs {max_abs}");
    }

    #[test]
    fn fill_const_fills_small_gaps() {
        let s = StreamShape::new(0, 1);
        let mut data = SignalData::dense(s, vec![5.0; 100]);
        data.punch_gap(10, 14);
        let q = Query::new();
        fill_const(q.source("s", s), 50, -1.0).unwrap().sink();
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out.values(0)[11], -1.0);
        assert_eq!(out.values(0)[20], 5.0);
    }

    #[test]
    fn fill_mean_uses_window_mean() {
        let s = StreamShape::new(0, 1);
        let mut data = SignalData::dense(s, (0..10).map(|i| i as f32).collect());
        data.punch_gap(4, 5);
        let q = Query::new();
        fill_mean(q.source("s", s), 10).unwrap().sink();
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.len(), 10);
        // Present values: 0,1,2,3,5,6,7,8,9 -> mean 41/9.
        let expect = 41.0 / 9.0;
        assert!((out.values(0)[4] - expect).abs() < 1e-5);
    }

    #[test]
    fn resample_upsamples_with_linear_interpolation() {
        let s = StreamShape::new(0, 8); // 125 Hz
        let data = SignalData::dense(s, (0..100).map(|i| i as f32).collect());
        let q = Query::new();
        resample(q.source("s", s), 2, 400).unwrap().sink(); // -> 500 Hz
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        // Original samples at t=0,8,16,... value t/8; interpolated slots
        // at t=2,4,6 should be t/8 exactly (linear data).
        let t10 = out.times().iter().position(|&t| t == 10).unwrap();
        assert!((out.values(0)[t10] - 1.25).abs() < 1e-5);
        assert!(out.len() >= 390);
    }

    #[test]
    fn fig3_pipeline_runs_end_to_end() {
        let ecg = StreamShape::new(0, 2);
        let abp = StreamShape::new(0, 8);
        let ecg_data = sine(ecg, 2000, 0.1);
        let abp_data = sine(abp, 500, 0.03);
        let q = fig3_pipeline(ecg, abp, 1000).unwrap();
        let mut exec = q
            .compile()
            .unwrap()
            .executor_with(vec![ecg_data, abp_data], ExecOptions::default())
            .unwrap();
        let out = exec.run_collect().unwrap();
        assert!(out.len() > 1500, "joined events: {}", out.len());
        assert_eq!(out.arity(), 2);
    }

    #[test]
    fn fig3_pipeline_with_gaps_prunes_work() {
        let ecg = StreamShape::new(0, 2);
        let abp = StreamShape::new(0, 8);
        let mut ecg_data = sine(ecg, 50_000, 0.1);
        let mut abp_data = sine(abp, 12_500, 0.03);
        // Disjoint availability: ECG first half, ABP second half.
        ecg_data.punch_gap(50_000, 100_000);
        abp_data.punch_gap(0, 50_000);
        let q = fig3_pipeline(ecg, abp, 1000).unwrap();
        let mut exec = q
            .compile()
            .unwrap()
            .executor_with(
                vec![ecg_data, abp_data],
                ExecOptions::default().with_round_ticks(1000),
            )
            .unwrap();
        let stats = exec.run().unwrap();
        assert_eq!(stats.output_events, 0);
        assert!(
            stats.windows_skipped >= 90,
            "skipped {}",
            stats.windows_skipped
        );
    }

    #[test]
    fn cap_pipeline_joins_six_signals() {
        let shapes = [
            StreamShape::new(0, 2),
            StreamShape::new(0, 8),
            StreamShape::new(0, 8),
            StreamShape::new(0, 4),
            StreamShape::new(0, 2),
            StreamShape::new(0, 8),
        ];
        let data: Vec<SignalData> = shapes
            .iter()
            .map(|&s| sine(s, (4000 / s.period()) as usize, 0.05))
            .collect();
        let q = cap_pipeline(&shapes, 1000).unwrap();
        let mut exec = q.compile().unwrap().executor(data).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.arity(), 6);
        assert!(out.len() > 1000);
    }

    #[test]
    fn linezero_pipeline_detects_artifact() {
        let abp = StreamShape::new(0, 8);
        // Pulsatile signal with a flat line-zero drop in the middle.
        let mut vals: Vec<f32> = (0..2000)
            .map(|i| 80.0 + 20.0 * (i as f32 * 0.3).sin())
            .collect();
        for v in &mut vals[900..1000] {
            *v = 0.0;
        }
        let data = SignalData::dense(abp, vals);
        // Pattern: normalized flat-drop shape.
        let pattern = vec![0.0; 32];
        let q = linezero_pipeline(abp, pattern, 4, 3.0, ShapeMode::Keep).unwrap();
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert!(!out.is_empty(), "artifact should be detected");
        // Detections should land inside the artifact region [7200, 8000).
        let inside = out
            .times()
            .iter()
            .filter(|&&t| (7000..8200).contains(&t))
            .count();
        assert!(inside * 2 >= out.len(), "detections centered on artifact");
    }
}
