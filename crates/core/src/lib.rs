//! # LifeStream
//!
//! A high-performance stream processing engine for *periodic* streams —
//! a from-scratch Rust reproduction of the ASPLOS '21 paper
//! *LifeStream: A High-Performance Stream Processing Engine for Periodic
//! Streams* (Jayarajan, Hau, Goodwin, Pekhimenko).
//!
//! Physiological waveforms (ECG, ABP, EEG, ...) are produced by bedside
//! monitors at fixed rates. LifeStream exploits that periodicity with two
//! properties of temporal operators over periodic streams:
//!
//! * **Linearity** — the sync time of every output event is a linear
//!   transformation of its parent input events' sync times, so the whole
//!   lineage of every event can be computed statically ([`lineage`]).
//! * **Bounded memory footprint** — a stream of period `p` can hold at most
//!   `d / p` events in any interval of length `d`, so every intermediate
//!   buffer size is known at query-compile time ([`memory`]).
//!
//! Those two properties power three optimizations:
//!
//! 1. **Locality tracing** ([`trace`]) — a query-compile-time pass that
//!    equalizes the [`FWindow`](fwindow::FWindow) dimensions across the whole
//!    computation graph so intermediate results are consumed immediately,
//!    maximizing end-to-end cache locality.
//! 2. **Static memory allocation** ([`memory`]) — all intermediate FWindows
//!    are preallocated once and reused; steady-state execution performs no
//!    heap allocation.
//! 3. **Targeted query processing** ([`exec`]) — event lineage maps candidate
//!    output windows back to source intervals; windows whose sources cannot
//!    produce output (discontinuities, no join overlap) are skipped entirely.
//!
//! ## Quickstart
//!
//! Queries are written against the fluent [`stream`] surface: a
//! [`Query`](stream::Query) scope hands out chainable
//! [`Stream`](stream::Stream) values, and every Table-2 operator is a
//! fallible method on them.
//!
//! ```
//! use lifestream_core::prelude::*;
//!
//! // A 10 Hz stream (period 100 ticks) of ramp values, 100 events.
//! let data = SignalData::dense(StreamShape::new(0, 100),
//!                              (0..100).map(|i| i as f32).collect());
//!
//! let q = Query::new();
//! q.source("sig", data.shape())
//!     .map(|v| v * v)?
//!     .sink();
//!
//! let mut exec = q.compile()?.executor(vec![data])?;
//! let out = exec.run_collect()?;
//! assert_eq!(out.len(), 100);
//! assert_eq!(out.values(0)[3], 9.0);
//! # Ok::<(), lifestream_core::Error>(())
//! ```
//!
//! The fluent layer drives the logical-plan layer — the
//! [`QueryBuilder`](query::QueryBuilder) — one-to-one; both compile to
//! identical plans, and the builder remains the documented low-level API
//! for compiler passes that rewrite the plan graph (see [`stream`] for
//! the two-layer design).
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitvec;
pub mod dtw;
pub mod error;
pub mod exec;
pub mod fuse;
pub mod fwindow;
pub mod graph;
pub mod lineage;
pub mod live;
pub mod memory;
pub mod ops;
pub mod pipeline;
pub mod presence;
pub mod query;
pub mod source;
pub mod stats;
pub mod stream;
pub mod time;
pub mod trace;

pub use error::{Error, Result};
pub use exec::{ExecOptions, Executor};
pub use fwindow::FWindow;
pub use query::{QueryBuilder, StreamHandle};
pub use source::SignalData;
pub use stream::{Query, Stream};
pub use time::{StreamShape, Tick};

/// Convenience re-exports for typical usage.
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use crate::exec::{ExecOptions, Executor, OutputCollector};
    pub use crate::fwindow::FWindow;
    pub use crate::ops::aggregate::AggKind;
    pub use crate::ops::join::JoinKind;
    pub use crate::presence::PresenceMap;
    pub use crate::query::{QueryBuilder, StreamHandle};
    pub use crate::source::SignalData;
    pub use crate::stats::RunStats;
    pub use crate::stream::{Query, Stream};
    pub use crate::time::{StreamShape, Tick};
}
