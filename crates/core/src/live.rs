//! Live (online) execution.
//!
//! §2 of the paper: analysts develop against retrospective data, then the
//! deployment on live monitor feeds "must be seamless and error-free".
//! [`LiveSession`] provides that path: the *same compiled query* runs over
//! samples appended in arrival order, emitting output round by round as
//! the processing windows fill. Retrospective and live execution share the
//! kernels, the traced dimensions, and the static memory plan — a pipeline
//! validated offline behaves identically online.
//!
//! ```
//! use lifestream_core::live::LiveSession;
//! use lifestream_core::prelude::*;
//!
//! let mut qb = QueryBuilder::new();
//! let src = qb.source("ecg", StreamShape::new(0, 2));
//! let doubled = qb.select_map(src, |v| v * 2.0);
//! qb.sink(doubled);
//!
//! let mut session = LiveSession::new(qb.compile()?, 100)?;
//! for k in 0..200 {
//!     session.push(0, k * 2, k as f32)?;
//! }
//! let mut emitted = 0;
//! session.poll(|w| emitted += w.present_count())?;
//! assert!(emitted > 0); // completed rounds have been processed
//! # Ok::<(), lifestream_core::Error>(())
//! ```

use crate::error::{Error, Result};
use crate::exec::{ExecOptions, Executor, OutputCollector};
use crate::fwindow::FWindow;
use crate::presence::PresenceMap;
use crate::query::CompiledQuery;
use crate::source::SignalData;
use crate::stats::RunStats;
use crate::time::{StreamShape, Tick};

/// Growable per-source ingest buffer.
#[derive(Debug)]
struct LiveSource {
    shape: StreamShape,
    values: Vec<f32>,
    presence: PresenceMap,
    /// Largest appended sync time + period (this source's watermark).
    watermark: Tick,
}

impl LiveSource {
    fn new(shape: StreamShape) -> Self {
        Self {
            shape,
            values: Vec::new(),
            presence: PresenceMap::new(),
            watermark: shape.offset(),
        }
    }

    fn push(&mut self, t: Tick, v: f32) -> Result<()> {
        if !self.shape.on_grid(t) || t < self.shape.offset() {
            return Err(Error::InvalidParameter {
                message: format!("sample time {t} off the {} grid", self.shape),
            });
        }
        if t < self.watermark && self.presence.contains(t) {
            return Err(Error::InvalidParameter {
                message: format!("sample time {t} arrived out of order"),
            });
        }
        let slot = ((t - self.shape.offset()) / self.shape.period()) as usize;
        if slot >= self.values.len() {
            self.values.resize(slot + 1, 0.0);
        }
        self.values[slot] = v;
        self.presence.add(t, t + self.shape.period());
        self.watermark = self.watermark.max(t + self.shape.period());
        Ok(())
    }

    fn snapshot(&self) -> SignalData {
        SignalData::with_presence(self.shape, self.values.clone(), self.presence.clone())
    }
}

/// An online execution session over a compiled query.
///
/// Samples are appended with [`push`](Self::push); [`poll`](Self::poll)
/// processes every round whose interval is complete (i.e. below all
/// sources' watermarks) and invokes the output callback, exactly as the
/// retrospective executor would have. [`finish`](Self::finish) flushes the
/// tail. One executor persists across polls, so stateful kernels (sliding
/// aggregates, shifts, join carries) behave exactly as offline.
pub struct LiveSession {
    exec: Executor,
    sources: Vec<LiveSource>,
    round_dim: Tick,
    /// Next round start to process.
    next_round: Tick,
    stats: RunStats,
}

impl LiveSession {
    /// Creates a session with the given processing-window length in ticks.
    ///
    /// # Errors
    /// Returns an error when the round length is incompatible with the
    /// traced dimension.
    pub fn new(compiled: CompiledQuery, round_ticks: Tick) -> Result<Self> {
        if round_ticks <= 0 {
            return Err(Error::InvalidParameter {
                message: "live round length must be positive".into(),
            });
        }
        let shapes = compiled.source_shapes();
        let sources: Vec<LiveSource> = shapes.iter().map(|&s| LiveSource::new(s)).collect();
        let empty: Vec<SignalData> = shapes
            .iter()
            .map(|&s| SignalData::dense(s, Vec::new()))
            .collect();
        let exec =
            compiled.executor_with(empty, ExecOptions::default().with_round_ticks(round_ticks))?;
        let round_dim = exec.round_dim();
        Ok(Self {
            exec,
            sources,
            round_dim,
            next_round: 0,
            stats: RunStats::new(),
        })
    }

    /// The processing-window length in effect.
    pub fn round_dim(&self) -> Tick {
        self.round_dim
    }

    /// Payload arity of the single sink (what an output collector needs).
    ///
    /// # Errors
    /// Returns an error when the query has more than one sink.
    pub fn sink_arity(&self) -> Result<usize> {
        self.exec.sink_arity()
    }

    /// Cumulative statistics across all polls.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Appends one sample to source `source` at grid time `t`.
    ///
    /// # Errors
    /// Returns an error for an unknown source, an off-grid timestamp, or
    /// an out-of-order duplicate.
    pub fn push(&mut self, source: usize, t: Tick, v: f32) -> Result<()> {
        self.sources
            .get_mut(source)
            .ok_or(Error::InvalidHandle { node: source })?
            .push(t, v)
    }

    /// Processes every round fully below all sources' watermarks, calling
    /// `on_output` with each sink window.
    ///
    /// # Errors
    /// Propagates execution errors.
    pub fn poll<F: FnMut(&FWindow)>(&mut self, on_output: F) -> Result<RunStats> {
        let safe = self.sources.iter().map(|s| s.watermark).min().unwrap_or(0);
        let end = safe.div_euclid(self.round_dim) * self.round_dim;
        self.run_span(end, on_output)
    }

    /// Flushes all remaining data (end of stream), including the same
    /// one-round drain margin the retrospective executor applies (trailing
    /// windows, shift spill).
    ///
    /// # Errors
    /// Propagates execution errors.
    pub fn finish<F: FnMut(&FWindow)>(&mut self, mut on_output: F) -> Result<RunStats> {
        let end = self.sources.iter().map(|s| s.watermark).max().unwrap_or(0);
        let aligned =
            (end + self.round_dim - 1).div_euclid(self.round_dim) * self.round_dim + self.round_dim;
        let mut stats = self.run_span(aligned, &mut on_output)?;
        let mut extra = 0;
        while self.exec.has_pending() && extra < 64 {
            let s = self.run_span(self.next_round + self.round_dim, &mut on_output)?;
            stats.merge(&s);
            extra += 1;
        }
        Ok(stats)
    }

    /// Convenience: finish and collect all remaining output (single sink).
    ///
    /// # Errors
    /// Returns an error when the query has more than one sink.
    pub fn finish_collect(&mut self) -> Result<OutputCollector> {
        let arity = self.exec.sink_arity()?;
        let mut collector = OutputCollector::new(arity);
        self.finish(|w| collector.absorb(w))?;
        Ok(collector)
    }

    fn run_span<F: FnMut(&FWindow)>(&mut self, to: Tick, mut on_output: F) -> Result<RunStats> {
        if to <= self.next_round {
            return Ok(RunStats::new());
        }
        let datasets: Vec<SignalData> = self.sources.iter().map(LiveSource::snapshot).collect();
        self.exec.replace_sources(datasets)?;
        let stats = self.exec.run_span(self.next_round, to, &mut on_output)?;
        self.next_round = to;
        self.stats.merge(&stats);
        Ok(stats)
    }
}

impl std::fmt::Debug for LiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("sources", &self.sources.len())
            .field("round_dim", &self.round_dim)
            .field("next_round", &self.next_round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate::AggKind;
    use crate::query::QueryBuilder;

    fn session(round: Tick) -> LiveSession {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 2));
        let sel = qb.select_map(src, |v| v + 1.0);
        qb.sink(sel);
        LiveSession::new(qb.compile().unwrap(), round).unwrap()
    }

    #[test]
    fn poll_emits_only_complete_rounds() {
        let mut s = session(100);
        for k in 0..30 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        // Watermark = 60: no complete 100-tick round yet.
        let mut n = 0;
        s.poll(|w| n += w.present_count()).unwrap();
        assert_eq!(n, 0);
        for k in 30..60 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        // Watermark = 120: round [0, 100) complete -> 50 events.
        s.poll(|w| n += w.present_count()).unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn finish_flushes_tail() {
        let mut s = session(100);
        for k in 0..60 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        let out = s.finish_collect().unwrap();
        assert_eq!(out.len(), 60);
        assert_eq!(out.values(0)[59], 60.0);
    }

    #[test]
    fn live_matches_retrospective() {
        // The deployment-seamlessness property: identical output online
        // and offline, including a stateful sliding aggregate.
        let build = || {
            let mut qb = QueryBuilder::new();
            let src = qb.source("s", StreamShape::new(0, 2));
            let agg = qb.aggregate(src, AggKind::Mean, 20, 2).unwrap();
            qb.sink(agg);
            qb.compile().unwrap()
        };
        let vals: Vec<f32> = (0..500).map(|i| ((i * 37) % 97) as f32).collect();

        // Retrospective.
        let data = SignalData::dense(StreamShape::new(0, 2), vals.clone());
        let mut exec = build()
            .executor_with(vec![data], ExecOptions::default().with_round_ticks(100))
            .unwrap();
        let offline = exec.run_collect().unwrap();

        // Live, pushed in dribbles.
        let mut s = LiveSession::new(build(), 100).unwrap();
        let mut online = OutputCollector::new(1);
        for (k, &v) in vals.iter().enumerate() {
            s.push(0, k as Tick * 2, v).unwrap();
            if k % 37 == 0 {
                s.poll(|w| online.absorb(w)).unwrap();
            }
        }
        s.finish(|w| online.absorb(w)).unwrap();

        assert_eq!(offline.len(), online.len());
        assert_eq!(offline.checksum(), online.checksum());
    }

    #[test]
    fn rejects_bad_pushes() {
        let mut s = session(100);
        assert!(s.push(0, 3, 1.0).is_err()); // off grid
        assert!(s.push(1, 2, 1.0).is_err()); // unknown source
        s.push(0, 10, 1.0).unwrap();
        assert!(s.push(0, 10, 2.0).is_err()); // duplicate
        s.push(0, 20, 2.0).unwrap(); // forward gap is fine
    }

    #[test]
    fn gaps_in_live_feed_are_skipped() {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 1));
        qb.sink(src);
        let mut s = LiveSession::new(qb.compile().unwrap(), 50).unwrap();
        s.push(0, 0, 1.0).unwrap();
        s.push(0, 500, 2.0).unwrap(); // long disconnection
        let out = s.finish_collect().unwrap();
        assert_eq!(out.len(), 2);
        assert!(s.stats().windows_skipped > 0);
    }
}
