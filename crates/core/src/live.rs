//! Live (online) execution.
//!
//! §2 of the paper: analysts develop against retrospective data, then the
//! deployment on live monitor feeds "must be seamless and error-free".
//! [`LiveSession`] provides that path: the *same compiled query* runs over
//! samples appended in arrival order, emitting output round by round as
//! the processing windows fill. Retrospective and live execution share the
//! kernels, the traced dimensions, and the static memory plan — a pipeline
//! validated offline behaves identically online.
//!
//! ```
//! use lifestream_core::live::LiveSession;
//! use lifestream_core::prelude::*;
//!
//! let mut qb = QueryBuilder::new();
//! let src = qb.source("ecg", StreamShape::new(0, 2));
//! let doubled = qb.select_map(src, |v| v * 2.0);
//! qb.sink(doubled);
//!
//! let mut session = LiveSession::new(qb.compile()?, 100)?;
//! for k in 0..200 {
//!     session.push(0, k * 2, k as f32)?;
//! }
//! let mut emitted = 0;
//! session.poll(|w| emitted += w.present_count())?;
//! assert!(emitted > 0); // completed rounds have been processed
//! # Ok::<(), lifestream_core::Error>(())
//! ```

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::exec::{ExecOptions, Executor, OutputCollector};
use crate::fwindow::FWindow;
use crate::presence::PresenceMap;
use crate::query::CompiledQuery;
use crate::source::SignalData;
use crate::stats::RunStats;
use crate::time::{StreamShape, Tick};

/// One compacted sample span leaving a [`LiveSession`]'s retained buffer.
///
/// When a retire sink is attached ([`LiveSession::set_retire_sink`]), every
/// suffix compaction hands the dropped prefix to the sink as one of these
/// instead of discarding it — the hook a tiered history store uses to spill
/// retired data to durable segments. The span is self-describing: `values`
/// is the dense slot array starting at grid slot `base_slot` of `shape`,
/// and `ranges` are the half-open presence intervals (absent slots hold
/// garbage the ranges mask off), exactly the `SignalData` conventions.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredSpan {
    /// Source index within the session.
    pub source: usize,
    /// The source's grid shape (offset, period).
    pub shape: StreamShape,
    /// Grid-slot index of `values[0]` on the stream grid.
    pub base_slot: u64,
    /// The dense retired prefix (covers `[base_slot, base_slot + len)`).
    pub values: Vec<f32>,
    /// Presence ranges within the span, `[start, end)` tick pairs.
    pub ranges: Vec<(Tick, Tick)>,
}

/// Callback receiving compacted spans before they are dropped.
pub type RetireSink = Box<dyn FnMut(RetiredSpan) + Send>;

/// Compacting per-source ingest buffer.
///
/// Samples land in an `Arc`-shared dense array whose first slot is
/// `base_slot` on the stream grid; once a round has been processed, the
/// session *retires* everything below the round start minus the source's
/// lineage history margin, so the buffer holds only the live suffix.
/// Snapshots clone the `Arc`, not the samples, and the executor releases
/// its clone at the end of each span — steady-state pushes and compaction
/// therefore mutate in place; copy-on-write only fires (bounded by the
/// retained suffix) if a snapshot somehow outlives the span.
#[derive(Debug)]
struct LiveSource {
    shape: StreamShape,
    /// Grid-slot index of `values[0]`; everything below is retired.
    base_slot: usize,
    values: Arc<Vec<f32>>,
    presence: PresenceMap,
    /// Largest appended sync time + period (this source's watermark).
    watermark: Tick,
}

impl LiveSource {
    fn new(shape: StreamShape) -> Self {
        Self {
            shape,
            base_slot: 0,
            values: Arc::new(Vec::new()),
            presence: PresenceMap::new(),
            watermark: shape.offset(),
        }
    }

    fn base_time(&self) -> Tick {
        self.shape.offset() + self.base_slot as Tick * self.shape.period()
    }

    fn push(&mut self, t: Tick, v: f32) -> Result<()> {
        if !self.shape.on_grid(t) || t < self.shape.offset() {
            return Err(Error::InvalidParameter {
                message: format!("sample time {t} off the {} grid", self.shape),
            });
        }
        if t < self.base_time() {
            return Err(Error::InvalidParameter {
                message: format!(
                    "sample time {t} is below the retained horizon {} (already \
                     processed and retired)",
                    self.base_time()
                ),
            });
        }
        if t < self.watermark && self.presence.contains(t) {
            return Err(Error::InvalidParameter {
                message: format!("sample time {t} arrived out of order"),
            });
        }
        let slot = ((t - self.base_time()) / self.shape.period()) as usize;
        let values = Arc::make_mut(&mut self.values);
        if slot >= values.len() {
            values.resize(slot + 1, 0.0);
        }
        values[slot] = v;
        self.presence.add(t, t + self.shape.period());
        self.watermark = self.watermark.max(t + self.shape.period());
        Ok(())
    }

    /// Zero-copy snapshot of the retained suffix: `Arc` bumps only.
    fn snapshot(&self) -> SignalData {
        SignalData::from_shared(
            self.shape,
            self.base_slot,
            Arc::clone(&self.values),
            self.presence.clone(),
        )
    }

    /// Retires everything strictly below `cutoff` (grid-aligned down,
    /// clamped to the stream offset): drops the dead sample prefix and the
    /// presence ranges covering it. After this, `push` rejects times below
    /// the new horizon.
    ///
    /// With `capture` set, the dropped prefix is returned as a
    /// [`RetiredSpan`] (with `source` left 0 for the caller to fill in)
    /// instead of vanishing; a span with no present samples returns `None`
    /// either way. Presence coverage never exceeds the materialized slots
    /// (`push` resizes `values` through the sample's slot), so the drained
    /// values always cover the clipped ranges.
    fn retire_below(&mut self, cutoff: Tick, capture: bool) -> Option<RetiredSpan> {
        let cutoff = self.shape.align_down(cutoff.max(self.shape.offset()));
        let new_base = ((cutoff - self.shape.offset()) / self.shape.period()) as usize;
        if new_base <= self.base_slot {
            return None;
        }
        let old_base = self.base_slot;
        let drop = new_base - self.base_slot;
        let values = Arc::make_mut(&mut self.values);
        let span = if capture {
            // Clip presence to the retired interval *before* `retire`
            // clamps it away.
            let ranges: Vec<(Tick, Tick)> = self
                .presence
                .ranges()
                .iter()
                .filter_map(|&(s, e)| {
                    let e = e.min(cutoff);
                    (e > s).then_some((s, e))
                })
                .collect();
            let drained: Vec<f32> = if drop >= values.len() {
                std::mem::take(values)
            } else {
                values.drain(..drop).collect()
            };
            (!ranges.is_empty()).then_some(RetiredSpan {
                source: 0,
                shape: self.shape,
                base_slot: old_base as u64,
                values: drained,
                ranges,
            })
        } else {
            if drop >= values.len() {
                values.clear();
            } else {
                values.drain(..drop);
            }
            None
        };
        self.base_slot = new_base;
        self.presence.retire(cutoff);
        span
    }

    /// Currently buffered grid slots (the retained suffix length).
    fn retained_slots(&self) -> usize {
        self.values.len()
    }
}

/// Portable snapshot of one source's retained suffix — everything a peer
/// needs to resume this source's live stream at the session's round
/// frontier. Produced by [`LiveSession::export_suffix`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSuffix {
    /// Grid-slot index of `values[0]` on the stream grid.
    pub base_slot: u64,
    /// The source's watermark (largest appended sync time + period).
    pub watermark: Tick,
    /// The retained sample suffix (dense, absent slots hold garbage the
    /// presence ranges mask off).
    pub values: Vec<f32>,
    /// Presence ranges covering the suffix, `[start, end)` tick pairs.
    pub ranges: Vec<(Tick, Tick)>,
}

/// Portable snapshot of a [`LiveSession`] at its current round frontier:
/// the per-source retained suffixes plus the frontier itself.
///
/// This is the unit of *partition handoff*: because a polled session
/// retires everything below `next_round - margin`
/// ([`Executor::history_margins`]), the suffixes are O(round + margin +
/// poll lag) — only that bounded tail ever needs to cross a machine
/// boundary, never the stream's full history.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Next round start the exporting session would have processed.
    pub next_round: Tick,
    /// One suffix per source, in source-index order.
    pub sources: Vec<SourceSuffix>,
}

/// An online execution session over a compiled query.
///
/// Samples are appended with [`push`](Self::push); [`poll`](Self::poll)
/// processes every round whose interval is complete (i.e. below all
/// sources' watermarks) and invokes the output callback, exactly as the
/// retrospective executor would have. [`finish`](Self::finish) flushes the
/// tail. One executor persists across polls, so stateful kernels (sliding
/// aggregates, shifts, join carries) behave exactly as offline.
///
/// The session's cost is bounded by the round size, not the stream
/// length: once a round is processed, each source buffer retires
/// everything below the round start minus that source's lineage history
/// margin ([`Executor::history_margins`]), and snapshots handed to the
/// executor share the retained suffix by `Arc` instead of copying it. A
/// session that is pushed to and polled forever therefore holds
/// O(round + margin + poll lag) memory and pays O(delta) per poll,
/// regardless of how many samples have flowed through it.
pub struct LiveSession {
    exec: Executor,
    sources: Vec<LiveSource>,
    round_dim: Tick,
    /// Next round start to process.
    next_round: Tick,
    /// Per-source retirement margins (ticks below `next_round` a future
    /// round may still consult), fixed by the compiled lineage.
    margins: Vec<Tick>,
    /// Optional recipient of compacted spans (tiered history store).
    retire_sink: Option<RetireSink>,
    stats: RunStats,
}

impl LiveSession {
    /// Creates a session with the given processing-window length in ticks.
    ///
    /// # Errors
    /// Returns an error when the round length is incompatible with the
    /// traced dimension.
    pub fn new(compiled: CompiledQuery, round_ticks: Tick) -> Result<Self> {
        if round_ticks <= 0 {
            return Err(Error::InvalidParameter {
                message: "live round length must be positive".into(),
            });
        }
        let shapes = compiled.source_shapes();
        let sources: Vec<LiveSource> = shapes.iter().map(|&s| LiveSource::new(s)).collect();
        let empty: Vec<SignalData> = shapes
            .iter()
            .map(|&s| SignalData::dense(s, Vec::new()))
            .collect();
        let exec =
            compiled.executor_with(empty, ExecOptions::default().with_round_ticks(round_ticks))?;
        let round_dim = exec.round_dim();
        let margins = exec.history_margins();
        Ok(Self {
            exec,
            sources,
            round_dim,
            next_round: 0,
            margins,
            retire_sink: None,
            stats: RunStats::new(),
        })
    }

    /// Attaches a retire sink: from now on every compacted span is handed
    /// to `sink` (as a [`RetiredSpan`]) instead of being dropped. This is
    /// the interception point a tiered history store uses to make the
    /// session's past durable while the live suffix stays bounded.
    pub fn set_retire_sink(&mut self, sink: RetireSink) {
        self.retire_sink = Some(sink);
    }

    /// Detaches the retire sink, if any; subsequent compactions discard
    /// retired spans again.
    pub fn clear_retire_sink(&mut self) -> Option<RetireSink> {
        self.retire_sink.take()
    }

    /// The processing-window length in effect.
    pub fn round_dim(&self) -> Tick {
        self.round_dim
    }

    /// The grid shape (offset, period) of every source, in source order —
    /// what a remote peer needs to size and align a replay buffer.
    pub fn source_shapes(&self) -> Vec<StreamShape> {
        self.sources.iter().map(|s| s.shape).collect()
    }

    /// Payload arity of the single sink (what an output collector needs).
    ///
    /// # Errors
    /// Returns an error when the query has more than one sink.
    pub fn sink_arity(&self) -> Result<usize> {
        self.exec.sink_arity()
    }

    /// Cumulative statistics across all polls.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Ticks below the next unprocessed round that source `source` must
    /// keep buffered (its lineage history margin).
    ///
    /// # Errors
    /// Returns an error for an unknown source index.
    pub fn history_margin(&self, source: usize) -> Result<Tick> {
        self.margins
            .get(source)
            .copied()
            .ok_or(Error::InvalidHandle { node: source })
    }

    /// Grid slots currently buffered for source `source` — after a poll,
    /// bounded by the history margin plus the data not yet processed,
    /// never by the total stream length.
    ///
    /// # Errors
    /// Returns an error for an unknown source index.
    pub fn retained_slots(&self, source: usize) -> Result<usize> {
        self.sources
            .get(source)
            .map(LiveSource::retained_slots)
            .ok_or(Error::InvalidHandle { node: source })
    }

    /// Appends one sample to source `source` at grid time `t`.
    ///
    /// # Errors
    /// Returns an error for an unknown source, an off-grid timestamp, a
    /// sample below the compaction horizon (the error names the horizon,
    /// the round frontier, and the source's history margin), or an
    /// out-of-order duplicate.
    pub fn push(&mut self, source: usize, t: Tick, v: f32) -> Result<()> {
        let src = self
            .sources
            .get_mut(source)
            .ok_or(Error::InvalidHandle { node: source })?;
        if src.shape.on_grid(t) && t >= src.shape.offset() && t < src.base_time() {
            // The source-level check would fire too, but only the session
            // knows *why* the horizon sits where it does — say so.
            let margin = self.margins.get(source).copied().unwrap_or(0);
            return Err(Error::InvalidParameter {
                message: format!(
                    "sample time {t} is below the compaction horizon {}: rounds \
                     below the frontier {} are already processed, and source \
                     {source} retains a history margin of {margin} ticks below it",
                    src.base_time(),
                    self.next_round,
                ),
            });
        }
        src.push(t, v)
    }

    /// Processes every round fully below all sources' watermarks, calling
    /// `on_output` with each sink window.
    ///
    /// # Errors
    /// Propagates execution errors.
    pub fn poll<F: FnMut(&FWindow)>(&mut self, on_output: F) -> Result<RunStats> {
        let safe = self.sources.iter().map(|s| s.watermark).min().unwrap_or(0);
        let end = safe.div_euclid(self.round_dim) * self.round_dim;
        self.run_span(end, on_output)
    }

    /// Flushes all remaining data (end of stream), including the same
    /// one-round drain margin the retrospective executor applies (trailing
    /// windows, shift spill).
    ///
    /// # Errors
    /// Propagates execution errors.
    pub fn finish<F: FnMut(&FWindow)>(&mut self, mut on_output: F) -> Result<RunStats> {
        let end = self.sources.iter().map(|s| s.watermark).max().unwrap_or(0);
        let aligned =
            (end + self.round_dim - 1).div_euclid(self.round_dim) * self.round_dim + self.round_dim;
        let mut stats = self.run_span(aligned, &mut on_output)?;
        let mut extra = 0;
        while self.exec.has_pending() && extra < 64 {
            let s = self.run_span(self.next_round + self.round_dim, &mut on_output)?;
            stats.merge(&s);
            extra += 1;
        }
        Ok(stats)
    }

    /// Convenience: finish and collect all remaining output (single sink).
    ///
    /// # Errors
    /// Returns an error when the query has more than one sink.
    pub fn finish_collect(&mut self) -> Result<OutputCollector> {
        let arity = self.exec.sink_arity()?;
        let mut collector = OutputCollector::new(arity);
        self.finish(|w| collector.absorb(w))?;
        Ok(collector)
    }

    /// Exports the session's state as a portable snapshot: per-source
    /// retained suffixes plus the round frontier. The session itself is
    /// left untouched and can keep running (the caller decides when to
    /// stop feeding it).
    ///
    /// Combined with [`import_suffix`](Self::import_suffix) on a peer
    /// compiled from the *same query*, this is a lossless mid-stream
    /// handoff: samples already pushed but not yet processed are part of
    /// the retained suffix, so nothing in flight is dropped.
    pub fn export_suffix(&self) -> SessionSnapshot {
        SessionSnapshot {
            next_round: self.next_round,
            sources: self
                .sources
                .iter()
                .map(|s| SourceSuffix {
                    base_slot: s.base_slot as u64,
                    watermark: s.watermark,
                    values: (*s.values).clone(),
                    ranges: s.presence.ranges().to_vec(),
                })
                .collect(),
        }
    }

    /// Resumes a session exported by [`export_suffix`](Self::export_suffix)
    /// on a fresh executor compiled from the same query.
    ///
    /// Kernel-internal state (sliding-aggregate rings, FIR taps, shift
    /// spill) is not shipped in the snapshot; it is rebuilt by replaying
    /// the retained suffix *with output suppressed* up to the exported
    /// frontier. Every built-in operator's cross-round memory is bounded
    /// by its lineage lookback — the same bound that sized the retained
    /// suffix ([`Executor::history_margins`]) — so the rebuilt state is
    /// identical and rounds at or beyond `next_round` emit byte-identical
    /// output. (A user `transform` closure whose state reaches further
    /// back than the composed lineage margin is outside that guarantee,
    /// exactly as it is outside the compaction guarantee.)
    ///
    /// # Errors
    /// Returns an error when the snapshot's source count does not match
    /// the query, when its frontier is not round-aligned, or when the
    /// warm-up replay fails.
    pub fn import_suffix(
        compiled: CompiledQuery,
        round_ticks: Tick,
        snapshot: SessionSnapshot,
    ) -> Result<Self> {
        let mut session = Self::new(compiled, round_ticks)?;
        if snapshot.sources.len() != session.sources.len() {
            return Err(Error::InvalidParameter {
                message: format!(
                    "snapshot has {} sources, query has {}",
                    snapshot.sources.len(),
                    session.sources.len()
                ),
            });
        }
        if snapshot.next_round < 0 || snapshot.next_round % session.round_dim != 0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "snapshot frontier {} is not aligned to the {}-tick round grid",
                    snapshot.next_round, session.round_dim
                ),
            });
        }
        for (src, suffix) in session.sources.iter_mut().zip(snapshot.sources) {
            src.base_slot = suffix.base_slot as usize;
            src.values = Arc::new(suffix.values);
            src.presence = PresenceMap::new();
            for (s, e) in suffix.ranges {
                src.presence.add(s, e);
            }
            src.watermark = suffix.watermark.max(src.shape.offset());
        }
        // Warm-up replay: run the retained rounds below the frontier with
        // output discarded, rebuilding kernel state from the suffix.
        let replay_from = session
            .sources
            .iter()
            .map(|s| s.base_time().div_euclid(session.round_dim) * session.round_dim)
            .min()
            .unwrap_or(snapshot.next_round)
            .min(snapshot.next_round);
        if replay_from < snapshot.next_round {
            let datasets: Vec<SignalData> =
                session.sources.iter().map(LiveSource::snapshot).collect();
            session.exec.replace_sources(datasets)?;
            session
                .exec
                .run_span(replay_from, snapshot.next_round, &mut |_| {})?;
            session.exec.release_sources();
        }
        session.next_round = snapshot.next_round;
        Ok(session)
    }

    fn run_span<F: FnMut(&FWindow)>(&mut self, to: Tick, mut on_output: F) -> Result<RunStats> {
        if to <= self.next_round {
            return Ok(RunStats::new());
        }
        // Zero-copy: snapshots share each source's retained suffix.
        let datasets: Vec<SignalData> = self.sources.iter().map(LiveSource::snapshot).collect();
        self.exec.replace_sources(datasets)?;
        let stats = self.exec.run_span(self.next_round, to, &mut on_output)?;
        // Drop the executor's snapshot before compacting: with the
        // session's buffer unique again, retirement (and later appends)
        // mutate in place instead of copy-on-writing against it.
        self.exec.release_sources();
        self.next_round = to;
        // Compact: rounds below `to` are done, so each source only needs
        // its lineage margin of history below the new frontier. With a
        // retire sink attached the dropped prefixes are spilled, not lost.
        let capture = self.retire_sink.is_some();
        for (i, (src, &margin)) in self.sources.iter_mut().zip(&self.margins).enumerate() {
            if let Some(mut span) = src.retire_below(to.saturating_sub(margin), capture) {
                span.source = i;
                if let Some(sink) = self.retire_sink.as_mut() {
                    sink(span);
                }
            }
        }
        self.stats.merge(&stats);
        Ok(stats)
    }
}

impl std::fmt::Debug for LiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("sources", &self.sources.len())
            .field("round_dim", &self.round_dim)
            .field("next_round", &self.next_round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate::AggKind;
    use crate::query::QueryBuilder;

    fn session(round: Tick) -> LiveSession {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 2));
        let sel = qb.select_map(src, |v| v + 1.0);
        qb.sink(sel);
        LiveSession::new(qb.compile().unwrap(), round).unwrap()
    }

    #[test]
    fn poll_emits_only_complete_rounds() {
        let mut s = session(100);
        for k in 0..30 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        // Watermark = 60: no complete 100-tick round yet.
        let mut n = 0;
        s.poll(|w| n += w.present_count()).unwrap();
        assert_eq!(n, 0);
        for k in 30..60 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        // Watermark = 120: round [0, 100) complete -> 50 events.
        s.poll(|w| n += w.present_count()).unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn finish_flushes_tail() {
        let mut s = session(100);
        for k in 0..60 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        let out = s.finish_collect().unwrap();
        assert_eq!(out.len(), 60);
        assert_eq!(out.values(0)[59], 60.0);
    }

    #[test]
    fn live_matches_retrospective() {
        // The deployment-seamlessness property: identical output online
        // and offline, including a stateful sliding aggregate.
        let build = || {
            let mut qb = QueryBuilder::new();
            let src = qb.source("s", StreamShape::new(0, 2));
            let agg = qb.aggregate(src, AggKind::Mean, 20, 2).unwrap();
            qb.sink(agg);
            qb.compile().unwrap()
        };
        let vals: Vec<f32> = (0..500).map(|i| ((i * 37) % 97) as f32).collect();

        // Retrospective.
        let data = SignalData::dense(StreamShape::new(0, 2), vals.clone());
        let mut exec = build()
            .executor_with(vec![data], ExecOptions::default().with_round_ticks(100))
            .unwrap();
        let offline = exec.run_collect().unwrap();

        // Live, pushed in dribbles.
        let mut s = LiveSession::new(build(), 100).unwrap();
        let mut online = OutputCollector::new(1);
        for (k, &v) in vals.iter().enumerate() {
            s.push(0, k as Tick * 2, v).unwrap();
            if k % 37 == 0 {
                s.poll(|w| online.absorb(w)).unwrap();
            }
        }
        s.finish(|w| online.absorb(w)).unwrap();

        assert_eq!(offline.len(), online.len());
        assert_eq!(offline.checksum(), online.checksum());
    }

    #[test]
    fn rejects_bad_pushes() {
        let mut s = session(100);
        assert!(s.push(0, 3, 1.0).is_err()); // off grid
        assert!(s.push(1, 2, 1.0).is_err()); // unknown source
        s.push(0, 10, 1.0).unwrap();
        assert!(s.push(0, 10, 2.0).is_err()); // duplicate
        s.push(0, 20, 2.0).unwrap(); // forward gap is fine
    }

    #[test]
    fn compaction_retires_processed_history() {
        let mut s = session(100); // stateless select: zero history margin
        assert_eq!(s.history_margin(0).unwrap(), 0);
        for k in 0..500 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        let mut n = 0;
        s.poll(|w| n += w.present_count()).unwrap();
        assert_eq!(n, 500);
        // Rounds [0, 1000) are done; with no margin the whole buffer is
        // retired, not merely the processed prefix kept around.
        assert_eq!(s.retained_slots(0).unwrap(), 0);
        // A sample below the retired horizon is rejected explicitly.
        let err = s.push(0, 4, 1.0).unwrap_err().to_string();
        assert!(err.contains("compaction horizon"), "err: {err}");
        // The frontier keeps accepting and producing.
        for k in 500..600 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        let out = s.finish_collect().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out.values(0)[0], 501.0);
    }

    #[test]
    fn shift_margin_keeps_lookback_history() {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 1));
        let sh = qb.shift(src, 250).unwrap();
        qb.sink(sh);
        let mut s = LiveSession::new(qb.compile().unwrap(), 100).unwrap();
        // Shift(250) lineage looks 250 ticks back from any round start.
        assert_eq!(s.history_margin(0).unwrap(), 250);
        for t in 0..1000 {
            s.push(0, t, t as f32).unwrap();
        }
        let mut out = OutputCollector::new(1);
        s.poll(|w| out.absorb(w)).unwrap();
        // Processed to 1000; the margin (and only the margin) is retained.
        assert_eq!(s.retained_slots(0).unwrap(), 250);
        s.finish(|w| out.absorb(w)).unwrap();
        assert_eq!(out.len(), 1000);
        assert_eq!(out.times()[0], 250);
    }

    #[test]
    fn snapshots_share_the_retained_buffer() {
        // Two consecutive polls with no pushes in between must not copy
        // the sample buffer at all (replace_sources gets Arc clones).
        let mut s = session(100);
        for k in 0..5_000 {
            s.push(0, k * 2, k as f32).unwrap();
        }
        let before = s.stats();
        s.poll(|_| {}).unwrap();
        s.poll(|_| {}).unwrap(); // no new data: zero rounds re-run
        let after = s.stats();
        assert_eq!(before.windows_executed, 0);
        assert_eq!(
            after.windows_executed + after.windows_skipped,
            100,
            "10_000 ticks / 100-tick rounds, each executed or skipped once"
        );
    }

    #[test]
    fn export_import_resumes_byte_identically() {
        // Handoff fidelity: run one session straight through; run a twin
        // that is exported mid-stream and resumed on a fresh executor
        // (fresh kernels, warm-up replay). Outputs must be identical —
        // including a stateful sliding aggregate whose ring state crosses
        // the handoff point.
        let build = || {
            let mut qb = QueryBuilder::new();
            let src = qb.source("s", StreamShape::new(0, 2));
            let agg = qb.aggregate(src, AggKind::Mean, 100, 10).unwrap();
            qb.sink(agg);
            qb.compile().unwrap()
        };
        let vals: Vec<f32> = (0..800).map(|i| ((i * 37) % 97) as f32).collect();

        let mut reference = LiveSession::new(build(), 100).unwrap();
        let mut ref_out = OutputCollector::new(1);
        for (k, &v) in vals.iter().enumerate() {
            reference.push(0, k as Tick * 2, v).unwrap();
            if k % 41 == 0 {
                reference.poll(|w| ref_out.absorb(w)).unwrap();
            }
        }
        reference.finish(|w| ref_out.absorb(w)).unwrap();

        let mut first = LiveSession::new(build(), 100).unwrap();
        let mut out = OutputCollector::new(1);
        let cut = 500;
        for (k, &v) in vals[..cut].iter().enumerate() {
            first.push(0, k as Tick * 2, v).unwrap();
            if k % 41 == 0 {
                first.poll(|w| out.absorb(w)).unwrap();
            }
        }
        // Export mid-stream: samples above the frontier are un-processed
        // and must survive the handoff inside the suffix.
        let snapshot = first.export_suffix();
        drop(first);
        let mut second = LiveSession::import_suffix(build(), 100, snapshot).unwrap();
        for (k, &v) in vals.iter().enumerate().skip(cut) {
            second.push(0, k as Tick * 2, v).unwrap();
            if k % 41 == 0 {
                second.poll(|w| out.absorb(w)).unwrap();
            }
        }
        second.finish(|w| out.absorb(w)).unwrap();

        assert_eq!(ref_out.len(), out.len());
        assert_eq!(ref_out.checksum(), out.checksum());
    }

    #[test]
    fn export_import_survives_shift_lookback_and_polled_frontier() {
        // A forward shift keeps a real spill queue and a 250-tick margin;
        // export right after a poll (frontier advanced, history retired to
        // the margin) and resume.
        let build = || {
            let mut qb = QueryBuilder::new();
            let src = qb.source("s", StreamShape::new(0, 1));
            let sh = qb.shift(src, 250).unwrap();
            qb.sink(sh);
            qb.compile().unwrap()
        };
        let mut reference = LiveSession::new(build(), 100).unwrap();
        let mut ref_out = OutputCollector::new(1);
        let mut first = LiveSession::new(build(), 100).unwrap();
        let mut out = OutputCollector::new(1);
        for t in 0..700 {
            reference.push(0, t, t as f32).unwrap();
            first.push(0, t, t as f32).unwrap();
        }
        reference.poll(|w| ref_out.absorb(w)).unwrap();
        first.poll(|w| out.absorb(w)).unwrap();
        let snapshot = first.export_suffix();
        assert!(snapshot.next_round > 0, "poll advanced the frontier");
        drop(first);
        let mut second = LiveSession::import_suffix(build(), 100, snapshot).unwrap();
        for t in 700..1000 {
            reference.push(0, t, t as f32).unwrap();
            second.push(0, t, t as f32).unwrap();
        }
        reference.finish(|w| ref_out.absorb(w)).unwrap();
        second.finish(|w| out.absorb(w)).unwrap();
        assert_eq!(ref_out.len(), out.len());
        assert_eq!(ref_out.checksum(), out.checksum());
    }

    #[test]
    fn import_rejects_mismatched_snapshots() {
        let snap = session(100).export_suffix();
        // Wrong source count.
        let mut qb = QueryBuilder::new();
        let a = qb.source("a", StreamShape::new(0, 2));
        let b = qb.source("b", StreamShape::new(0, 2));
        let j = qb.join(a, b, crate::ops::join::JoinKind::Inner).unwrap();
        qb.sink(j);
        let err = LiveSession::import_suffix(qb.compile().unwrap(), 100, snap.clone())
            .unwrap_err()
            .to_string();
        assert!(err.contains("sources"), "err: {err}");
        // Misaligned frontier.
        let mut bad = snap;
        bad.next_round = 37;
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 2));
        let sel = qb.select_map(src, |v| v + 1.0);
        qb.sink(sel);
        let err = LiveSession::import_suffix(qb.compile().unwrap(), 100, bad)
            .unwrap_err()
            .to_string();
        assert!(err.contains("aligned"), "err: {err}");
    }

    #[test]
    fn horizon_rejection_names_round_and_margin() {
        // Satellite regression: the below-horizon error must name the
        // horizon itself, the round frontier, and the source's history
        // margin so an operator can see *why* the push was refused.
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 1));
        let sh = qb.shift(src, 250).unwrap();
        qb.sink(sh);
        let mut s = LiveSession::new(qb.compile().unwrap(), 100).unwrap();
        for t in 0..1000 {
            s.push(0, t, t as f32).unwrap();
        }
        s.poll(|_| {}).unwrap();
        // Frontier 1000, margin 250 -> horizon 750.
        let err = s.push(0, 10, 1.0).unwrap_err().to_string();
        assert!(err.contains("compaction horizon 750"), "err: {err}");
        assert!(err.contains("frontier 1000"), "err: {err}");
        assert!(err.contains("history margin of 250 ticks"), "err: {err}");
    }

    #[test]
    fn retire_sink_receives_every_compacted_sample() {
        use std::sync::Mutex;
        // Attach a sink, stream with interleaved polls, and check the
        // spilled spans plus the retained suffix reconstruct the full
        // history exactly — nothing lost, nothing duplicated.
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 2));
        let sel = qb.select_map(src, |v| v + 1.0);
        qb.sink(sel);
        let mut s = LiveSession::new(qb.compile().unwrap(), 100).unwrap();
        let spilled: Arc<Mutex<Vec<RetiredSpan>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_ref = Arc::clone(&spilled);
        s.set_retire_sink(Box::new(move |span| sink_ref.lock().unwrap().push(span)));

        let vals: Vec<f32> = (0..700).map(|i| (i * 13 % 101) as f32).collect();
        for (k, &v) in vals.iter().enumerate() {
            if k % 3 != 2 {
                s.push(0, k as Tick * 2, v).unwrap(); // gap-y feed
            }
            if k % 97 == 0 {
                s.poll(|_| {}).unwrap();
            }
        }
        s.poll(|_| {}).unwrap();

        let spans = spilled.lock().unwrap();
        assert!(!spans.is_empty(), "compaction produced spans");
        // Rebuild a dense view from the spans + the live suffix.
        let mut rebuilt = vec![None; vals.len()];
        let mut mark = |base_slot: u64, values: &[f32], ranges: &[(Tick, Tick)]| {
            for &(rs, re) in ranges {
                let mut t = rs;
                while t < re {
                    let slot = (t / 2) as usize;
                    let v = values[slot - base_slot as usize];
                    assert!(rebuilt[slot].is_none(), "slot {slot} spilled twice");
                    rebuilt[slot] = Some(v);
                    t += 2;
                }
            }
        };
        for span in spans.iter() {
            assert_eq!(span.source, 0);
            mark(span.base_slot, &span.values, &span.ranges);
        }
        let tail = s.export_suffix();
        mark(
            tail.sources[0].base_slot,
            &tail.sources[0].values,
            &tail.sources[0].ranges,
        );
        for (k, &v) in vals.iter().enumerate() {
            if k % 3 != 2 {
                assert_eq!(rebuilt[k], Some(v), "slot {k}");
            } else {
                assert_eq!(rebuilt[k], None, "slot {k} never pushed");
            }
        }
    }

    #[test]
    fn gaps_in_live_feed_are_skipped() {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 1));
        qb.sink(src);
        let mut s = LiveSession::new(qb.compile().unwrap(), 50).unwrap();
        s.push(0, 0, 1.0).unwrap();
        s.push(0, 500, 2.0).unwrap(); // long disconnection
        let out = s.finish_collect().unwrap();
        assert_eq!(out.len(), 2);
        assert!(s.stats().windows_skipped > 0);
    }
}
