//! The temporal query language builder.
//!
//! [`QueryBuilder`] exposes the operator vocabulary of Table 2 as chainable
//! methods over [`StreamHandle`]s. Building produces the logical
//! computation graph; [`QueryBuilder::compile`] runs locality tracing and
//! returns a [`CompiledQuery`] from which executors are created.
//!
//! ```
//! use lifestream_core::prelude::*;
//!
//! // Listing 1 of the paper: adjust sig500 by its 100-tick tumbling mean,
//! // then join with sig200.
//! let mut qb = QueryBuilder::new();
//! let sig500 = qb.source("sig500", StreamShape::new(0, 2));
//! let sig200 = qb.source("sig200", StreamShape::new(0, 5));
//! let (a, b) = qb.multicast(sig500);
//! let mean = qb.aggregate(a, AggKind::Mean, 100, 100)?;
//! let adjusted = qb.join_map(b, mean, JoinKind::Inner, 1, |v, m, out| {
//!     out[0] = v[0] - m[0];
//! })?;
//! let joined = qb.join(adjusted, sig200, JoinKind::Inner)?;
//! qb.sink(joined);
//! let compiled = qb.compile()?;
//! assert_eq!(compiled.global_dim(), 100); // Fig. 6's traced dimension
//! # Ok::<(), lifestream_core::Error>(())
//! ```

use crate::dtw::StreamingMatcher;
use crate::error::{Error, Result};
use crate::exec::{ExecOptions, Executor};
use crate::fwindow::MAX_ARITY;
use crate::graph::{Graph, JoinKindTag, Node, NodeId, OpKind};
use crate::lineage::LineageMap;
use crate::ops::aggregate::{AggKind, SlidingAggKernel, TumblingAggKernel};
use crate::ops::fir::FirKernel;
use crate::ops::join::{ClipJoinKernel, JoinKernel, JoinKind, JoinMapFn};
use crate::ops::reshape::{AlterDurationKernel, AlterPeriodKernel, ChopKernel, ShiftKernel};
use crate::ops::select::{SelectKernel, WhereKernel};
use crate::ops::transform::{TransformCtx, TransformKernel};
use crate::ops::where_shape::{ShapeMode, WhereShapeKernel};
use crate::ops::Kernel;
use crate::source::SignalData;
use crate::time::{gcd, StreamShape, Tick};
use crate::trace::{self, TraceReport};

/// A handle to an intermediate stream inside a [`QueryBuilder`].
///
/// Handles carry the identity of the builder that created them, so
/// passing a handle to a *different* builder is detected (returning
/// [`Error::InvalidHandle`]) even when the node index happens to be in
/// range there.
#[must_use = "a StreamHandle names a sub-query; without reaching a sink() it computes nothing"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHandle {
    node: NodeId,
    builder: u64,
}

type KernelFactory = Box<dyn FnOnce(&Node) -> Box<dyn Kernel> + Send>;

/// Builder for temporal queries over periodic streams.
pub struct QueryBuilder {
    graph: Graph,
    factories: Vec<Option<KernelFactory>>,
    n_sources: usize,
    id: u64,
}

/// Process-unique builder identities, embedded in every [`StreamHandle`]
/// to detect handles crossing between builders.
static NEXT_BUILDER_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Default for QueryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            graph: Graph::new(),
            factories: Vec::new(),
            n_sources: 0,
            id: NEXT_BUILDER_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: Vec<NodeId>,
        shape: StreamShape,
        arity: usize,
        lineage: Vec<LineageMap>,
        factory: Option<KernelFactory>,
    ) -> StreamHandle {
        let id = self.graph.nodes.len();
        self.graph.nodes.push(Node {
            id,
            name: name.into(),
            kind,
            inputs,
            shape,
            arity,
            dim: 0,
            lineage,
        });
        self.factories.push(factory);
        StreamHandle {
            node: id,
            builder: self.id,
        }
    }

    fn node(&self, h: StreamHandle) -> Result<&Node> {
        if h.builder != self.id {
            return Err(Error::InvalidHandle { node: h.node });
        }
        self.graph
            .nodes
            .get(h.node)
            .ok_or(Error::InvalidHandle { node: h.node })
    }

    /// Declares a source stream. Datasets are later supplied to the
    /// executor in declaration order.
    pub fn source(&mut self, name: impl Into<String>, shape: StreamShape) -> StreamHandle {
        let index = self.n_sources;
        self.n_sources += 1;
        self.push(
            name,
            OpKind::Source { index },
            vec![],
            shape,
            1,
            vec![],
            None,
        )
    }

    /// `Select`: projects each event's payload through `f`
    /// (`out_arity` output fields).
    ///
    /// # Errors
    /// Returns an error for an invalid handle or `out_arity` out of range.
    pub fn select<F>(&mut self, input: StreamHandle, out_arity: usize, f: F) -> Result<StreamHandle>
    where
        F: FnMut(&[f32], &mut [f32]) + Send + 'static,
    {
        if out_arity == 0 || out_arity > MAX_ARITY {
            return Err(Error::InvalidParameter {
                message: format!("select out_arity {out_arity} out of range"),
            });
        }
        let n = self.node(input)?;
        let (shape, in_arity) = (n.shape, n.arity);
        let factory: KernelFactory =
            Box::new(move |_| Box::new(SelectKernel::new(in_arity, out_arity, Box::new(f))));
        Ok(self.push(
            "Select",
            OpKind::Select,
            vec![input.node],
            shape,
            out_arity,
            vec![LineageMap::identity()],
            Some(factory),
        ))
    }

    /// Single-field convenience `Select` mapping `f32 -> f32`.
    ///
    /// # Panics
    /// Panics if `input` is an invalid handle (use [`select`](Self::select)
    /// for a fallible variant).
    pub fn select_map<F>(&mut self, input: StreamHandle, mut f: F) -> StreamHandle
    where
        F: FnMut(f32) -> f32 + Send + 'static,
    {
        self.select(input, 1, move |i, o| o[0] = f(i[0]))
            .expect("select_map on invalid handle")
    }

    /// `Where`: keeps events satisfying `pred`.
    ///
    /// # Errors
    /// Returns an error for an invalid handle.
    pub fn where_<F>(&mut self, input: StreamHandle, pred: F) -> Result<StreamHandle>
    where
        F: FnMut(&[f32]) -> bool + Send + 'static,
    {
        let n = self.node(input)?;
        let (shape, arity) = (n.shape, n.arity);
        let factory: KernelFactory =
            Box::new(move |_| Box::new(WhereKernel::new(arity, Box::new(pred))));
        Ok(self.push(
            "Where",
            OpKind::Where,
            vec![input.node],
            shape,
            arity,
            vec![LineageMap::identity()],
            Some(factory),
        ))
    }

    /// Extended `Where` (§6.1): filters by visual pattern using streaming
    /// constrained DTW. `mode` selects artifact scrubbing ([`ShapeMode::Remove`])
    /// or detection ([`ShapeMode::Keep`]).
    ///
    /// # Errors
    /// Returns an error for an invalid handle, multi-field input, or an
    /// empty pattern.
    pub fn where_shape(
        &mut self,
        input: StreamHandle,
        pattern: Vec<f32>,
        band: usize,
        threshold: f32,
        normalize: bool,
        mode: ShapeMode,
    ) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if n.arity != 1 {
            return Err(Error::ArityMismatch {
                expected: 1,
                actual: n.arity,
            });
        }
        if pattern.is_empty() {
            return Err(Error::InvalidParameter {
                message: "shape pattern must be non-empty".into(),
            });
        }
        let shape = n.shape;
        let factory: KernelFactory = Box::new(move |_| {
            Box::new(WhereShapeKernel::new(
                StreamingMatcher::new(pattern, band, threshold, normalize),
                mode,
            ))
        });
        Ok(self.push(
            "WhereShape",
            OpKind::WhereShape,
            vec![input.node],
            shape,
            1,
            vec![LineageMap::identity()],
            Some(factory),
        ))
    }

    /// `Aggregate(w, p)`: applies `kind` to `window`-tick windows with
    /// stride `stride`. Tumbling (`window == stride`) aggregates
    /// `[t, t+window)`; sliding (`window > stride`) aggregates the trailing
    /// window `(t-window, t]`.
    ///
    /// # Errors
    /// Returns an error for invalid parameters (window/stride not positive
    /// multiples of the input period, or window < stride) or a multi-field
    /// input.
    pub fn aggregate(
        &mut self,
        input: StreamHandle,
        kind: AggKind,
        window: Tick,
        stride: Tick,
    ) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if n.arity != 1 {
            return Err(Error::ArityMismatch {
                expected: 1,
                actual: n.arity,
            });
        }
        let in_period = n.shape.period();
        if window <= 0 || stride <= 0 || window < stride {
            return Err(Error::InvalidParameter {
                message: format!("aggregate window {window} / stride {stride} invalid"),
            });
        }
        if window % in_period != 0 || stride % in_period != 0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "aggregate window {window} and stride {stride} must be multiples of the input period {in_period}"
                ),
            });
        }
        let shape = n.shape.aggregated(stride);
        let lineage = if window == stride {
            LineageMap::window(window)
        } else {
            LineageMap::with_margins(window, 0)
        };
        let factory: KernelFactory = Box::new(move |_| {
            if window == stride {
                Box::new(TumblingAggKernel::new(kind, window))
            } else {
                Box::new(SlidingAggKernel::new(kind, window, in_period))
            }
        });
        Ok(self.push(
            format!("Aggregate({kind:?},{window},{stride})"),
            OpKind::Aggregate { window, stride },
            vec![input.node],
            shape,
            1,
            vec![lineage],
            Some(factory),
        ))
    }

    /// Temporal equijoin concatenating both payloads.
    ///
    /// # Errors
    /// Returns an error when the grids never align or the combined arity
    /// exceeds [`MAX_ARITY`].
    pub fn join(
        &mut self,
        left: StreamHandle,
        right: StreamHandle,
        kind: JoinKind,
    ) -> Result<StreamHandle> {
        let (la, ra) = (self.node(left)?.arity, self.node(right)?.arity);
        self.join_inner(left, right, kind, la + ra, None)
    }

    /// Temporal equijoin with a payload projection.
    ///
    /// # Errors
    /// Returns an error when the grids never align or `out_arity` is out of
    /// range.
    pub fn join_map<F>(
        &mut self,
        left: StreamHandle,
        right: StreamHandle,
        kind: JoinKind,
        out_arity: usize,
        f: F,
    ) -> Result<StreamHandle>
    where
        F: FnMut(&[f32], &[f32], &mut [f32]) + Send + 'static,
    {
        self.join_inner(left, right, kind, out_arity, Some(Box::new(f)))
    }

    fn join_inner(
        &mut self,
        left: StreamHandle,
        right: StreamHandle,
        kind: JoinKind,
        out_arity: usize,
        map: Option<JoinMapFn>,
    ) -> Result<StreamHandle> {
        let (ls, la) = {
            let n = self.node(left)?;
            (n.shape, n.arity)
        };
        let (rs, ra) = {
            let n = self.node(right)?;
            (n.shape, n.arity)
        };
        if out_arity == 0 || out_arity > MAX_ARITY {
            return Err(Error::InvalidParameter {
                message: format!("join out_arity {out_arity} out of range"),
            });
        }
        let shape = ls.join(&rs);
        let tag = match kind {
            JoinKind::Inner => JoinKindTag::Inner,
            JoinKind::Left => JoinKindTag::Left,
            JoinKind::Outer => JoinKindTag::Outer,
        };
        let factory: KernelFactory = Box::new(move |node: &Node| {
            Box::new(JoinKernel::new(
                kind,
                la,
                ra,
                node.arity,
                node.capacity(),
                map,
            ))
        });
        Ok(self.push(
            format!("Join({kind:?})"),
            OpKind::Join { kind: tag },
            vec![left.node, right.node],
            shape,
            out_arity,
            vec![LineageMap::identity(), LineageMap::identity()],
            Some(factory),
        ))
    }

    /// `ClipJoin`: pairs each left event with the most recent right event
    /// at or before it (as-of join). Output grid follows the left stream.
    ///
    /// # Errors
    /// Returns an error when the combined arity exceeds [`MAX_ARITY`].
    pub fn clip_join(&mut self, left: StreamHandle, right: StreamHandle) -> Result<StreamHandle> {
        let (ls, la) = {
            let n = self.node(left)?;
            (n.shape, n.arity)
        };
        let ra = self.node(right)?.arity;
        if la + ra > MAX_ARITY {
            return Err(Error::InvalidParameter {
                message: format!("clip_join arity {} exceeds {MAX_ARITY}", la + ra),
            });
        }
        let factory: KernelFactory = Box::new(move |_| Box::new(ClipJoinKernel::new(la, ra)));
        Ok(self.push(
            "ClipJoin",
            OpKind::ClipJoin,
            vec![left.node, right.node],
            ls,
            la + ra,
            vec![LineageMap::identity(), LineageMap::identity()],
            Some(factory),
        ))
    }

    /// `Chop(b)`: splits event intervals on multiples of `boundary`.
    ///
    /// # Errors
    /// Returns an error when `boundary` is non-positive or the stream's
    /// offset does not lie on the joint grid.
    pub fn chop(&mut self, input: StreamHandle, boundary: Tick) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if boundary <= 0 {
            return Err(Error::InvalidParameter {
                message: format!("chop boundary {boundary} must be positive"),
            });
        }
        let g = gcd(n.shape.period(), boundary);
        if n.shape.offset().rem_euclid(g) != 0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "chop boundary {boundary} incompatible with stream offset {}",
                    n.shape.offset()
                ),
            });
        }
        let shape = StreamShape::new(n.shape.offset(), g);
        let arity = n.arity;
        let factory: KernelFactory = Box::new(move |_| Box::new(ChopKernel::new(boundary, arity)));
        Ok(self.push(
            format!("Chop({boundary})"),
            OpKind::Chop { boundary },
            vec![input.node],
            shape,
            arity,
            vec![LineageMap::identity()],
            Some(factory),
        ))
    }

    /// `Shift(k)`: moves every sync time forward by `delta` ticks
    /// (non-negative).
    ///
    /// # Errors
    /// Returns an error for a negative `delta`.
    pub fn shift(&mut self, input: StreamHandle, delta: Tick) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if delta < 0 {
            return Err(Error::InvalidParameter {
                message: format!("shift delta {delta} must be non-negative"),
            });
        }
        let shape = n.shape.shifted(delta);
        let arity = n.arity;
        let in_period = n.shape.period();
        let factory: KernelFactory =
            Box::new(move |_| Box::new(ShiftKernel::new(delta, arity, in_period)));
        Ok(self.push(
            format!("Shift({delta})"),
            OpKind::Shift { delta },
            vec![input.node],
            shape,
            arity,
            vec![LineageMap::shift(delta)],
            Some(factory),
        ))
    }

    /// `AlterPeriod(p)`: re-grids the stream to period `period`. Sync times
    /// are unchanged; upsampling leaves absent slots for a later fill.
    ///
    /// # Errors
    /// Returns an error for a non-positive period.
    pub fn alter_period(&mut self, input: StreamHandle, period: Tick) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if period <= 0 {
            return Err(Error::InvalidParameter {
                message: format!("alter_period {period} must be positive"),
            });
        }
        let shape = n.shape.with_period(period);
        let arity = n.arity;
        let factory: KernelFactory = Box::new(move |_| Box::new(AlterPeriodKernel::new(arity)));
        Ok(self.push(
            format!("AlterPeriod({period})"),
            OpKind::AlterPeriod { period },
            vec![input.node],
            shape,
            arity,
            vec![LineageMap::identity()],
            Some(factory),
        ))
    }

    /// `AlterDuration(d)`: rewrites every event's active lifetime.
    ///
    /// # Errors
    /// Returns an error for a non-positive duration.
    pub fn alter_duration(&mut self, input: StreamHandle, duration: Tick) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if duration <= 0 {
            return Err(Error::InvalidParameter {
                message: format!("alter_duration {duration} must be positive"),
            });
        }
        let shape = n.shape;
        let arity = n.arity;
        let factory: KernelFactory =
            Box::new(move |_| Box::new(AlterDurationKernel::new(duration, arity)));
        Ok(self.push(
            format!("AlterDuration({duration})"),
            OpKind::AlterDuration { duration },
            vec![input.node],
            shape,
            arity,
            vec![LineageMap::identity()],
            Some(factory),
        ))
    }

    /// `Transform(w)`: applies a user window-to-window function to
    /// `window`-tick sub-windows (single-field streams).
    ///
    /// # Errors
    /// Returns an error for a multi-field input or a window that is not a
    /// positive multiple of the period.
    pub fn transform<F>(&mut self, input: StreamHandle, window: Tick, f: F) -> Result<StreamHandle>
    where
        F: FnMut(TransformCtx<'_>) + Send + 'static,
    {
        let n = self.node(input)?;
        if n.arity != 1 {
            return Err(Error::ArityMismatch {
                expected: 1,
                actual: n.arity,
            });
        }
        let period = n.shape.period();
        if window <= 0 || window % period != 0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "transform window {window} must be a positive multiple of period {period}"
                ),
            });
        }
        let shape = n.shape;
        let factory: KernelFactory = Box::new(move |node: &Node| {
            Box::new(TransformKernel::new(
                window,
                period,
                node.capacity(),
                Box::new(f),
            ))
        });
        Ok(self.push(
            format!("Transform({window})"),
            OpKind::Transform { window },
            vec![input.node],
            shape,
            1,
            vec![LineageMap::window(window)],
            Some(factory),
        ))
    }

    /// `PassFilter`: FIR-filters the stream with `taps` coefficients
    /// (newest sample first): `y[t] = Σₖ taps[k] · x[t − k·period]` within
    /// each maximal present run; gaps reset the filter. Presence passes
    /// through unchanged; durations are rewritten to the grid period.
    ///
    /// This is the first-class form of the old `Transform`-closure
    /// `pass_filter` — same results on dense data, but fusible and
    /// vectorizable. Lineage carries a `(taps−1)·period` lookback margin
    /// so targeted skipping and live suffix replay see the warm-up
    /// samples.
    ///
    /// # Errors
    /// Returns an error for a multi-field input or empty taps.
    pub fn pass_filter(&mut self, input: StreamHandle, taps: Vec<f32>) -> Result<StreamHandle> {
        let n = self.node(input)?;
        if n.arity != 1 {
            return Err(Error::ArityMismatch {
                expected: 1,
                actual: n.arity,
            });
        }
        if taps.is_empty() {
            return Err(Error::InvalidParameter {
                message: "pass_filter taps must be non-empty".into(),
            });
        }
        let shape = n.shape;
        let lookback = (taps.len() as Tick - 1) * shape.period();
        let n_taps = taps.len();
        let factory: KernelFactory =
            Box::new(move |node: &Node| Box::new(FirKernel::new(taps, node.capacity())));
        Ok(self.push(
            format!("Fir({n_taps})"),
            OpKind::Fir { taps: n_taps },
            vec![input.node],
            shape,
            1,
            vec![LineageMap::with_margins(lookback, 0)],
            Some(factory),
        ))
    }

    /// `Multicast`: forks a stream so multiple subqueries can read it.
    ///
    /// This is **aliasing, not copying**: the engine's graph supports
    /// fan-out natively (every operator consuming a handle adds an edge to
    /// the same node), so no node is inserted and both returned handles
    /// name the same stream. Since [`StreamHandle`] is `Copy`, using the
    /// input handle twice is equivalent; `multicast` exists to mirror the
    /// paper's operator vocabulary (Listing 1). The fluent counterpart is
    /// [`Stream::multicast`](crate::stream::Stream::multicast).
    pub fn multicast(&mut self, input: StreamHandle) -> (StreamHandle, StreamHandle) {
        (input, input)
    }

    /// Marks `input` as a query output.
    ///
    /// # Panics
    /// Panics on a handle from a different builder or out of range.
    pub fn sink(&mut self, input: StreamHandle) {
        assert_eq!(
            input.builder, self.id,
            "stream handle from a different builder passed to sink()"
        );
        let (shape, arity) = {
            let n = &self.graph.nodes[input.node];
            (n.shape, n.arity)
        };
        let h = self.push(
            "Sink",
            OpKind::Sink,
            vec![input.node],
            shape,
            arity,
            vec![LineageMap::identity()],
            None,
        );
        self.graph.sinks.push(h.node);
    }

    /// Shape of an intermediate stream (useful when composing pipelines).
    ///
    /// # Errors
    /// Returns an error for an invalid handle.
    pub fn shape_of(&self, h: StreamHandle) -> Result<StreamShape> {
        Ok(self.node(h)?.shape)
    }

    /// Compiles the query: validates the graph and runs locality tracing.
    ///
    /// # Errors
    /// Returns an error when the query has no sink or tracing diverges.
    pub fn compile(mut self) -> Result<CompiledQuery> {
        if self.graph.sinks.is_empty() {
            return Err(Error::NoSink);
        }
        let report = trace::trace(&mut self.graph)?;
        Ok(CompiledQuery {
            graph: self.graph,
            factories: self.factories,
            report,
            n_sources: self.n_sources,
        })
    }
}

impl std::fmt::Debug for QueryBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("nodes", &self.graph.nodes.len())
            .field("sources", &self.n_sources)
            .finish()
    }
}

/// A compiled (traced) query, ready to instantiate executors.
#[must_use = "a CompiledQuery does nothing until an executor is created from it"]
pub struct CompiledQuery {
    graph: Graph,
    factories: Vec<Option<KernelFactory>>,
    report: TraceReport,
    n_sources: usize,
}

impl CompiledQuery {
    /// The traced computation graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The uniform FWindow dimension chosen by locality tracing.
    pub fn global_dim(&self) -> Tick {
        self.report.global_dim
    }

    /// The locality-tracing report (iterations + adjustment log).
    pub fn trace_report(&self) -> &TraceReport {
        &self.report
    }

    /// Shapes of the declared sources, in dataset-slot order.
    pub fn source_shapes(&self) -> Vec<StreamShape> {
        self.graph
            .source_ids()
            .iter()
            .map(|&id| self.graph.nodes[id].shape)
            .collect()
    }
    /// Number of declared sources.
    pub fn source_count(&self) -> usize {
        self.n_sources
    }

    /// Creates an executor with default options.
    ///
    /// # Errors
    /// Returns an error when the supplied datasets do not match the
    /// declared sources.
    pub fn executor(self, sources: Vec<SignalData>) -> Result<Executor> {
        self.executor_with(sources, ExecOptions::default())
    }

    /// Creates an executor with explicit options.
    ///
    /// # Errors
    /// Returns an error when the datasets mismatch the declared sources or
    /// the requested round dimension is incompatible with the traced
    /// dimension.
    pub fn executor_with(
        mut self,
        sources: Vec<SignalData>,
        opts: ExecOptions,
    ) -> Result<Executor> {
        if sources.len() != self.n_sources {
            return Err(Error::SourceCountMismatch {
                expected: self.n_sources,
                actual: sources.len(),
            });
        }
        for (slot, src_id) in self.graph.source_ids().iter().enumerate() {
            let n = &self.graph.nodes[*src_id];
            if sources[slot].shape() != n.shape {
                return Err(Error::SourceShapeMismatch {
                    name: n.name.clone(),
                    declared: n.shape,
                    supplied: sources[slot].shape(),
                });
            }
        }
        // Apply the requested round (processing window) size.
        let round_dim = match opts.round_ticks {
            Some(r) => {
                let g = self.report.global_dim;
                // Round the requested size up to the next multiple of the
                // traced dimension (both are positive; signed div_ceil is
                // not stable yet).
                let aligned = ((r.max(g) as u64).div_ceil(g as u64) * g as u64) as Tick;
                trace::apply_round_dim(&mut self.graph, g, aligned)?;
                aligned
            }
            None => {
                trace::apply_round_dim(
                    &mut self.graph,
                    self.report.global_dim,
                    self.report.global_dim,
                )?;
                self.report.global_dim
            }
        };
        // Instantiate kernels now that capacities are final.
        let mut kernels: Vec<Option<Box<dyn Kernel>>> = Vec::with_capacity(self.graph.nodes.len());
        for (i, fac) in self.factories.into_iter().enumerate() {
            kernels.push(fac.map(|f| f(&self.graph.nodes[i])));
        }
        Executor::new(self.graph, kernels, sources, opts, round_dim)
    }
}

impl std::fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledQuery")
            .field("nodes", &self.graph.nodes.len())
            .field("global_dim", &self.report.global_dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_compiles_to_dim_100() {
        let mut qb = QueryBuilder::new();
        let sig500 = qb.source("sig500", StreamShape::new(0, 2));
        let sig200 = qb.source("sig200", StreamShape::new(0, 5));
        let (a, b) = qb.multicast(sig500);
        let mean = qb.aggregate(a, AggKind::Mean, 100, 100).unwrap();
        let adj = qb
            .join_map(b, mean, JoinKind::Inner, 1, |v, m, o| o[0] = v[0] - m[0])
            .unwrap();
        let out = qb.join(adj, sig200, JoinKind::Inner).unwrap();
        qb.sink(out);
        let compiled = qb.compile().unwrap();
        assert_eq!(compiled.global_dim(), 100);
        assert_eq!(compiled.source_count(), 2);
    }

    #[test]
    fn compile_without_sink_fails() {
        let mut qb = QueryBuilder::new();
        let s = qb.source("s", StreamShape::new(0, 1));
        let _ = qb.select_map(s, |v| v);
        assert_eq!(qb.compile().unwrap_err(), Error::NoSink);
    }

    #[test]
    fn aggregate_validates_parameters() {
        let mut qb = QueryBuilder::new();
        let s = qb.source("s", StreamShape::new(0, 2));
        assert!(qb.aggregate(s, AggKind::Mean, 0, 0).is_err());
        assert!(qb.aggregate(s, AggKind::Mean, 5, 5).is_err()); // not multiple of 2
        assert!(qb.aggregate(s, AggKind::Mean, 4, 8).is_err()); // window < stride
        assert!(qb.aggregate(s, AggKind::Mean, 8, 4).is_ok());
    }

    #[test]
    fn join_of_staggered_grids_refines_period() {
        let mut qb = QueryBuilder::new();
        let a = qb.source("a", StreamShape::new(0, 4));
        let b = qb.source("b", StreamShape::new(2, 4));
        let j = qb.join(a, b, JoinKind::Inner).unwrap();
        assert_eq!(qb.shape_of(j).unwrap(), StreamShape::new(0, 2));
    }

    #[test]
    fn shift_rejects_negative() {
        let mut qb = QueryBuilder::new();
        let s = qb.source("s", StreamShape::new(0, 1));
        assert!(qb.shift(s, -1).is_err());
        assert!(qb.shift(s, 5).is_ok());
    }

    #[test]
    fn transform_requires_single_field() {
        let mut qb = QueryBuilder::new();
        let a = qb.source("a", StreamShape::new(0, 1));
        let b = qb.source("b", StreamShape::new(0, 1));
        let j = qb.join(a, b, JoinKind::Inner).unwrap();
        assert!(matches!(
            qb.transform(j, 4, |_| {}),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn executor_rejects_wrong_source_count() {
        let mut qb = QueryBuilder::new();
        let s = qb.source("s", StreamShape::new(0, 1));
        qb.sink(s);
        let compiled = qb.compile().unwrap();
        assert!(matches!(
            compiled.executor(vec![]),
            Err(Error::SourceCountMismatch { .. })
        ));
    }

    #[test]
    fn executor_rejects_wrong_shape() {
        let mut qb = QueryBuilder::new();
        let s = qb.source("s", StreamShape::new(0, 2));
        qb.sink(s);
        let compiled = qb.compile().unwrap();
        let data = SignalData::dense(StreamShape::new(0, 8), vec![0.0; 4]);
        assert!(matches!(
            compiled.executor(vec![data]),
            Err(Error::SourceShapeMismatch { .. })
        ));
    }
}
