//! Constrained dynamic time warping (DTW) for shape-based querying.
//!
//! The extended `Where` operator (§6.1, Fig. 4) lets users query visual
//! patterns — e.g. the line-zero calibration artifact in arterial blood
//! pressure (Fig. 7) — by providing a representative shape as a sequence of
//! signal values. We use DTW with a Sakoe–Chiba band (the "constrained DTW"
//! of the paper) so each comparison costs `O(m · band)` instead of `O(m²)`,
//! which is linear per event for a constant band — matching the paper's
//! "linear time" claim.

/// Computes the band-constrained DTW distance between `a` and `b`.
///
/// `band` is the Sakoe–Chiba radius: cell `(i, j)` is explored only when
/// `|i - j| <= band` (after diagonal normalization for unequal lengths).
/// Distance is the square root of the summed squared local costs along the
/// optimal warping path.
///
/// # Examples
/// ```
/// use lifestream_core::dtw::dtw_distance;
/// let a = [0.0, 1.0, 2.0, 1.0, 0.0];
/// assert_eq!(dtw_distance(&a, &a, 1), 0.0);
/// let shifted = [0.0, 0.0, 1.0, 2.0, 1.0];
/// let euclid = 2.0_f32.sqrt(); // element-wise distance
/// assert!(dtw_distance(&a, &shifted, 2) < euclid);
/// ```
pub fn dtw_distance(a: &[f32], b: &[f32], band: usize) -> f32 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() {
            0.0
        } else {
            f32::INFINITY
        };
    }
    let (n, m) = (a.len(), b.len());
    // Effective band must at least cover the length difference.
    let band = band.max(n.abs_diff(m));
    let inf = f32::INFINITY;
    // Two rolling rows of the DP matrix.
    let mut prev = vec![inf; m + 1];
    let mut cur = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(inf);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        // Keep the `j == 0` boundary unreachable except at the origin.
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m].sqrt()
}

/// Z-normalizes a window in place (zero mean, unit variance); windows with
/// near-zero variance become all-zero. Amplitude-invariant matching uses
/// this before [`dtw_distance`].
pub fn znormalize(w: &mut [f32]) {
    let n = w.len();
    if n == 0 {
        return;
    }
    let mean = w.iter().copied().map(f64::from).sum::<f64>() / n as f64;
    let var = w
        .iter()
        .copied()
        .map(|v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    let std = var.sqrt();
    if std < 1e-9 {
        w.fill(0.0);
    } else {
        for v in w.iter_mut() {
            *v = ((*v as f64 - mean) / std) as f32;
        }
    }
}

/// A streaming shape matcher: feeds one sample at a time and reports when
/// the trailing window matches the target pattern within a DTW distance
/// threshold.
///
/// Repurposes constrained DTW for the streaming scenario (§6.1): the ring
/// buffer holds the last `pattern.len()` samples, and one banded DTW is
/// evaluated per `stride` samples.
#[derive(Debug, Clone)]
pub struct StreamingMatcher {
    pattern: Vec<f32>,
    band: usize,
    threshold: f32,
    normalize: bool,
    stride: usize,
    ring: Vec<f32>,
    head: usize,
    filled: usize,
    since_eval: usize,
    window_buf: Vec<f32>,
}

impl StreamingMatcher {
    /// Creates a matcher for `pattern` with Sakoe–Chiba radius `band` and
    /// match `threshold` (distance below threshold ⇒ match).
    ///
    /// When `normalize` is true both pattern and trailing window are
    /// z-normalized before comparison (amplitude-invariant matching).
    ///
    /// # Panics
    /// Panics if the pattern is empty.
    pub fn new(pattern: Vec<f32>, band: usize, threshold: f32, normalize: bool) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        let mut pattern = pattern;
        if normalize {
            znormalize(&mut pattern);
        }
        let m = pattern.len();
        Self {
            pattern,
            band,
            threshold,
            normalize,
            stride: 1,
            ring: vec![0.0; m],
            head: 0,
            filled: 0,
            since_eval: 0,
            window_buf: vec![0.0; m],
        }
    }

    /// Evaluates the DTW only every `stride` samples (cheaper scanning;
    /// artifacts longer than `stride` samples are still caught).
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Pattern length in samples.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }

    /// Pushes one sample; returns `true` when the trailing window matches.
    pub fn push(&mut self, v: f32) -> bool {
        let m = self.pattern.len();
        self.ring[self.head] = v;
        self.head = (self.head + 1) % m;
        if self.filled < m {
            self.filled += 1;
            if self.filled < m {
                return false;
            }
        }
        self.since_eval += 1;
        if self.since_eval < self.stride {
            return false;
        }
        self.since_eval = 0;
        // Linearize the ring into window_buf (oldest first).
        for i in 0..m {
            self.window_buf[i] = self.ring[(self.head + i) % m];
        }
        if self.normalize {
            znormalize(&mut self.window_buf);
        }
        dtw_distance(&self.window_buf, &self.pattern, self.band) < self.threshold
    }

    /// Clears the trailing window (used across stream discontinuities).
    pub fn reset(&mut self) {
        self.filled = 0;
        self.head = 0;
        self.since_eval = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&a, &a, 0), 0.0);
    }

    #[test]
    fn warped_sequences_are_close() {
        let a = [0.0, 0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        let b = [0.0, 1.0, 2.0, 3.0, 3.0, 2.0, 1.0, 0.0]; // time-warped
        let euclid: f32 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        let dtw = dtw_distance(&a, &b, 2);
        assert!(dtw < euclid, "dtw {dtw} should beat euclidean {euclid}");
    }

    #[test]
    fn unequal_lengths_supported() {
        let a = [0.0, 1.0, 2.0, 1.0, 0.0];
        let b = [0.0, 1.0, 1.5, 2.0, 1.5, 1.0, 0.0];
        let d = dtw_distance(&a, &b, 1);
        assert!(d.is_finite());
        assert!(d < 2.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw_distance(&[], &[], 1), 0.0);
        assert!(dtw_distance(&[1.0], &[], 1).is_infinite());
    }

    #[test]
    fn band_zero_equals_euclidean() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.5, 2.0];
        let euclid: f32 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        assert!((dtw_distance(&a, &b, 0) - euclid).abs() < 1e-6);
    }

    #[test]
    fn znormalize_properties() {
        let mut w = [1.0, 2.0, 3.0, 4.0];
        znormalize(&mut w);
        let mean: f32 = w.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        let mut flat = [5.0; 4];
        znormalize(&mut flat);
        assert_eq!(flat, [0.0; 4]);
        znormalize(&mut []);
    }

    #[test]
    fn streaming_matcher_fires_on_embedded_pattern() {
        let pattern = vec![0.0, 5.0, 10.0, 5.0, 0.0];
        let mut m = StreamingMatcher::new(pattern.clone(), 1, 1.0, false);
        let mut signal = vec![20.0; 30];
        signal.extend_from_slice(&pattern);
        signal.extend(vec![20.0; 30]);
        let hits: Vec<usize> = signal
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| m.push(v).then_some(i))
            .collect();
        assert_eq!(hits, vec![34]); // pattern ends at index 34
    }

    #[test]
    fn streaming_matcher_normalized_is_amplitude_invariant() {
        let pattern = vec![0.0, 1.0, 2.0, 1.0, 0.0];
        let mut m = StreamingMatcher::new(pattern, 1, 0.5, true);
        // Same shape, 10x amplitude, offset by 100.
        let scaled = [100.0, 110.0, 120.0, 110.0, 100.0];
        let mut hit = false;
        for &v in &scaled {
            hit |= m.push(v);
        }
        assert!(hit);
    }

    #[test]
    fn streaming_matcher_reset_clears_window() {
        let mut m = StreamingMatcher::new(vec![1.0, 1.0, 1.0], 0, 0.1, false);
        m.push(1.0);
        m.push(1.0);
        m.reset();
        assert!(!m.push(1.0));
        assert!(!m.push(1.0));
        // The window refills on the third push and evaluates immediately.
        assert!(m.push(1.0));
    }

    #[test]
    fn stride_skips_evaluations() {
        let mut m = StreamingMatcher::new(vec![1.0, 1.0], 0, 0.1, false).with_stride(3);
        let mut hits = 0;
        for _ in 0..12 {
            if m.push(1.0) {
                hits += 1;
            }
        }
        // Evaluations happen every 3rd sample after the window fills.
        assert!((3..=4).contains(&hits), "hits = {hits}");
    }
}
