//! The fixed-interval sliding window (FWindow) — LifeStream's key construct.
//!
//! An FWindow is a view over a fixed-length interval of a periodic stream.
//! All operators read and write FWindows; an operator slides its windows
//! forward in time (never backward) to traverse the stream.
//!
//! Storage is columnar (§6): payload fields, per-event durations, and a
//! presence bitvector live in separate arrays so operators touch only the
//! fields they need. Event sync times are *not* stored — because the stream
//! is periodic, the sync time of slot `i` is `base + i * period`, computable
//! from the index without a memory read.

use crate::bitvec::BitVec;
use crate::time::{StreamShape, Tick};

/// Maximum payload arity (number of `f32` fields per event) supported by a
/// single stream. Joins concatenate payloads, so deep join trees widen the
/// payload; 8 covers every pipeline in the paper (CAP joins 6 signals).
pub const MAX_ARITY: usize = 8;

/// A fixed-interval window over a periodic stream.
///
/// The window covers the half-open interval `[sync, sync + dim)` of a stream
/// with shape `(offset, period)`. Slots correspond to grid points inside the
/// interval; `dim` must be a positive multiple of `period` so consecutive
/// windows tile the stream exactly.
///
/// # Examples
/// ```
/// use lifestream_core::fwindow::FWindow;
/// use lifestream_core::time::StreamShape;
///
/// let mut w = FWindow::new(StreamShape::new(0, 2), 10, 1);
/// w.slide_to(0);
/// assert_eq!(w.capacity(), 5);
/// assert_eq!(w.slot_time(3), 6);
/// w.write(3, &[42.0], 2);
/// assert!(w.is_present(3));
/// assert_eq!(w.field(0)[3], 42.0);
/// ```
#[derive(Debug, Clone)]
pub struct FWindow {
    shape: StreamShape,
    dim: Tick,
    sync: Tick,
    base: Tick,
    len: usize,
    arity: usize,
    cols: Vec<Vec<f32>>,
    durations: Vec<Tick>,
    present: BitVec,
}

impl FWindow {
    /// Allocates an FWindow of dimension `dim` over a stream of `shape`,
    /// with `arity` payload fields. This is the *only* allocating call;
    /// sliding reuses the buffers.
    ///
    /// # Panics
    /// Panics if `dim` is not a positive multiple of the period, or `arity`
    /// is zero or exceeds [`MAX_ARITY`].
    pub fn new(shape: StreamShape, dim: Tick, arity: usize) -> Self {
        assert!(
            dim > 0 && dim % shape.period() == 0,
            "FWindow dim {dim} must be a positive multiple of period {}",
            shape.period()
        );
        assert!(
            (1..=MAX_ARITY).contains(&arity),
            "arity {arity} out of range 1..={MAX_ARITY}"
        );
        let cap = (dim / shape.period()) as usize;
        Self {
            shape,
            dim,
            sync: 0,
            base: shape.offset(),
            len: 0,
            arity,
            cols: (0..arity).map(|_| vec![0.0; cap]).collect(),
            durations: vec![0; cap],
            present: BitVec::new(cap),
        }
    }

    /// The stream shape this window views.
    pub fn shape(&self) -> StreamShape {
        self.shape
    }

    /// The window dimension (interval length in ticks).
    pub fn dim(&self) -> Tick {
        self.dim
    }

    /// Start of the current interval.
    pub fn sync(&self) -> Tick {
        self.sync
    }

    /// End of the current interval (`sync + dim`).
    pub fn end(&self) -> Tick {
        self.sync + self.dim
    }

    /// Number of payload fields per event.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Maximum number of event slots (`dim / period`).
    pub fn capacity(&self) -> usize {
        self.cols[0].len()
    }

    /// Number of grid slots inside the current interval. Equals
    /// [`capacity`](Self::capacity) whenever `sync` is grid-aligned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the current interval contains no grid slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *present* events in the window.
    pub fn present_count(&self) -> usize {
        self.present.count_ones()
    }

    /// Repositions the window to the interval `[sync, sync + dim)`,
    /// clearing presence. Slots are the stream grid points in the interval.
    ///
    /// Windows may only move forward during execution; this is enforced by
    /// the executor, not here, so tests can reposition freely.
    pub fn slide_to(&mut self, sync: Tick) {
        self.sync = sync;
        // Clamp to the stream's first event: grid points before the offset
        // do not exist.
        self.base = self.shape.align_up(sync).max(self.shape.offset());
        let end = sync + self.dim;
        self.len = if self.base >= end {
            0
        } else {
            ((end - 1 - self.base) / self.shape.period() + 1) as usize
        };
        debug_assert!(self.len <= self.capacity());
        self.present.reset(self.len.max(1).min(self.capacity()));
        if self.len == 0 {
            self.present.reset(0);
        } else {
            self.present.reset(self.len);
        }
    }

    /// Sync time of slot `i` — computed from the index, never loaded from
    /// memory (the periodicity payoff described in §8.1).
    #[inline]
    pub fn slot_time(&self, i: usize) -> Tick {
        self.base + i as Tick * self.shape.period()
    }

    /// Slot index of the grid time `t`, if it falls inside the window.
    #[inline]
    pub fn slot_of(&self, t: Tick) -> Option<usize> {
        if t < self.base || t >= self.end() {
            return None;
        }
        let d = t - self.base;
        if d % self.shape.period() != 0 {
            return None;
        }
        let i = (d / self.shape.period()) as usize;
        (i < self.len).then_some(i)
    }

    /// Presence of slot `i`.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.present.get(i)
    }

    /// Marks slot `i` absent.
    #[inline]
    pub fn clear_slot(&mut self, i: usize) {
        self.present.set(i, false);
    }

    /// Duration of the event in slot `i` (meaningful only when present).
    #[inline]
    pub fn duration(&self, i: usize) -> Tick {
        self.durations[i]
    }

    /// Overwrites the duration of slot `i` without touching presence
    /// (used by `AlterDuration` and `Chop`).
    #[inline]
    pub fn set_duration(&mut self, i: usize, d: Tick) {
        self.durations[i] = d;
    }

    /// Read-only view of payload field `f` (length [`len`](Self::len)).
    #[inline]
    pub fn field(&self, f: usize) -> &[f32] {
        &self.cols[f][..self.len]
    }

    /// Mutable view of payload field `f`.
    #[inline]
    pub fn field_mut(&mut self, f: usize) -> &mut [f32] {
        let len = self.len;
        &mut self.cols[f][..len]
    }

    /// Writes a present event into slot `i`: payload (one value per field)
    /// and duration.
    ///
    /// # Panics
    /// Panics if `payload.len() != arity` or `i` is out of range.
    #[inline]
    pub fn write(&mut self, i: usize, payload: &[f32], duration: Tick) {
        debug_assert_eq!(payload.len(), self.arity, "payload arity mismatch");
        for (f, &v) in payload.iter().enumerate() {
            self.cols[f][i] = v;
        }
        self.durations[i] = duration;
        self.present.set(i, true);
    }

    /// Bulk-writes a contiguous run of present single-field events starting
    /// at `start_slot`, all with the same `duration`. Used by sources to
    /// ingest dense data ranges without per-event calls.
    ///
    /// # Panics
    /// Panics if the run exceeds the window or the window is multi-field.
    pub fn fill_from_slice(&mut self, start_slot: usize, values: &[f32], duration: Tick) {
        assert_eq!(self.arity, 1, "bulk fill requires single-field windows");
        let end = start_slot + values.len();
        assert!(end <= self.len, "bulk fill run exceeds window");
        self.cols[0][start_slot..end].copy_from_slice(values);
        self.durations[start_slot..end].fill(duration);
        self.present.set_range(start_slot, end);
    }

    /// Bulk-writes a contiguous run with per-slot durations (single-field
    /// windows only) — the fused-kernel output path for operator chains
    /// that pass input durations through unchanged.
    ///
    /// # Panics
    /// Panics for multi-field windows, mismatched slice lengths, or a run
    /// past the window's current length.
    pub fn fill_from_slice_with_durations(
        &mut self,
        start_slot: usize,
        values: &[f32],
        durations: &[Tick],
    ) {
        assert_eq!(self.arity, 1, "bulk fill requires single-field windows");
        assert_eq!(values.len(), durations.len(), "values/durations length");
        let end = start_slot + values.len();
        assert!(end <= self.len, "bulk fill run exceeds window");
        self.cols[0][start_slot..end].copy_from_slice(values);
        self.durations[start_slot..end].copy_from_slice(durations);
        self.present.set_range(start_slot, end);
    }

    /// Per-slot event durations for the window's current length.
    pub fn durations(&self) -> &[Tick] {
        &self.durations[..self.len]
    }

    /// Reads the payload of slot `i` into `out` (must be `arity` long).
    #[inline]
    pub fn read(&self, i: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.arity);
        for (f, o) in out.iter_mut().enumerate() {
            *o = self.cols[f][i];
        }
    }

    /// The presence bitvector.
    pub fn presence(&self) -> &BitVec {
        &self.present
    }

    /// Mutable access to the presence bitvector (for bulk operators).
    pub fn presence_mut(&mut self) -> &mut BitVec {
        &mut self.present
    }

    /// Copies the full contents (interval, payload, durations, presence)
    /// from another window with identical shape, dim, and arity.
    ///
    /// # Panics
    /// Panics on any layout mismatch.
    pub fn copy_from(&mut self, other: &FWindow) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        assert_eq!(self.dim, other.dim, "dim mismatch");
        assert_eq!(self.arity, other.arity, "arity mismatch");
        self.sync = other.sync;
        self.base = other.base;
        self.len = other.len;
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            dst[..other.len].copy_from_slice(&src[..other.len]);
        }
        self.durations[..other.len].copy_from_slice(&other.durations[..other.len]);
        self.present.reset(other.present.len());
        self.present.copy_from(&other.present);
    }

    /// Iterator over `(slot, sync_time, duration)` of present events.
    pub fn iter_present(&self) -> impl Iterator<Item = (usize, Tick, Tick)> + '_ {
        self.present
            .iter_ones()
            .map(move |i| (i, self.slot_time(i), self.durations[i]))
    }

    /// Total heap bytes held by this window's buffers — the statically
    /// bounded footprint used by the memory planner.
    pub fn footprint_bytes(&self) -> usize {
        let cap = self.capacity();
        self.arity * cap * std::mem::size_of::<f32>()
            + cap * std::mem::size_of::<Tick>()
            + cap.div_ceil(64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win() -> FWindow {
        let mut w = FWindow::new(StreamShape::new(0, 2), 10, 2);
        w.slide_to(0);
        w
    }

    #[test]
    fn capacity_is_dim_over_period() {
        let w = win();
        assert_eq!(w.capacity(), 5);
        assert_eq!(w.len(), 5);
        assert_eq!(w.arity(), 2);
    }

    #[test]
    fn slot_times_are_index_derived() {
        let mut w = win();
        w.slide_to(20);
        assert_eq!(w.sync(), 20);
        assert_eq!(w.end(), 30);
        assert_eq!(w.slot_time(0), 20);
        assert_eq!(w.slot_time(4), 28);
        assert_eq!(w.slot_of(24), Some(2));
        assert_eq!(w.slot_of(25), None); // off-grid
        assert_eq!(w.slot_of(30), None); // past end
        assert_eq!(w.slot_of(18), None); // before start
    }

    #[test]
    fn unaligned_sync_shrinks_len() {
        // Stream (3, 2): events at 3, 5, 7, ... Window [0, 10) holds 3,5,7,9.
        let mut w = FWindow::new(StreamShape::new(3, 2), 10, 1);
        w.slide_to(0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.slot_time(0), 3);
        // Window [10, 20) holds 11,13,15,17,19 -> 5 slots.
        w.slide_to(10);
        assert_eq!(w.len(), 5);
        assert_eq!(w.slot_time(0), 11);
    }

    #[test]
    fn write_read_present() {
        let mut w = win();
        w.write(2, &[1.5, -2.5], 2);
        assert!(w.is_present(2));
        assert!(!w.is_present(1));
        let mut buf = [0.0; 2];
        w.read(2, &mut buf);
        assert_eq!(buf, [1.5, -2.5]);
        assert_eq!(w.duration(2), 2);
        assert_eq!(w.present_count(), 1);
        w.clear_slot(2);
        assert_eq!(w.present_count(), 0);
    }

    #[test]
    fn slide_clears_presence_but_not_capacity() {
        let mut w = win();
        w.write(0, &[1.0, 1.0], 2);
        let cap = w.capacity();
        w.slide_to(10);
        assert_eq!(w.capacity(), cap);
        assert_eq!(w.present_count(), 0);
    }

    #[test]
    fn iter_present_yields_times() {
        let mut w = win();
        w.write(1, &[0.0, 0.0], 2);
        w.write(4, &[0.0, 0.0], 2);
        let v: Vec<_> = w.iter_present().collect();
        assert_eq!(v, vec![(1, 2, 2), (4, 8, 2)]);
    }

    #[test]
    fn copy_from_replicates() {
        let mut a = win();
        a.slide_to(10);
        a.write(3, &[7.0, 8.0], 2);
        let mut b = FWindow::new(StreamShape::new(0, 2), 10, 2);
        b.copy_from(&a);
        assert_eq!(b.sync(), 10);
        assert!(b.is_present(3));
        assert_eq!(b.field(0)[3], 7.0);
        assert_eq!(b.field(1)[3], 8.0);
    }

    #[test]
    fn footprint_is_static() {
        let w = win();
        // 2 fields * 5 slots * 4 bytes + 5 * 8 bytes durations + 1 word bits
        assert_eq!(w.footprint_bytes(), 2 * 5 * 4 + 5 * 8 + 8);
    }

    #[test]
    #[should_panic(expected = "multiple of period")]
    fn dim_must_be_multiple_of_period() {
        let _ = FWindow::new(StreamShape::new(0, 3), 10, 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_bounds_enforced() {
        let _ = FWindow::new(StreamShape::new(0, 1), 10, 0);
    }
}
