//! The fluent, typed query surface: [`Query`] scopes and chainable
//! [`Stream`]s.
//!
//! LifeStream queries have two layers:
//!
//! * **This module — the fluent surface.** A [`Query`] owns the plan
//!   under construction; [`Query::source`] hands out lightweight, `Copy`
//!   [`Stream`] values, and every Table-2 operator is a chainable method
//!   on [`Stream`]. All operator methods are *consistently fallible*
//!   (they return [`Result`]), unlike the low-level builder where
//!   convenience methods such as
//!   [`select_map`](crate::query::QueryBuilder::select_map) panic on bad
//!   handles.
//! * **The logical-plan layer** — [`QueryBuilder`](crate::query), which
//!   this module drives one-to-one. The builder remains the documented
//!   low-level API: compiler passes (locality tracing, and future
//!   profile-guided rewrites) operate on the graph it produces, and the
//!   fluent layer adds no nodes of its own, so both surfaces compile to
//!   identical plans.
//!
//! One plan, every execution mode: the [`CompiledQuery`] that
//! [`Query::compile`] produces is the *only* logical-plan artifact in
//! the system. The same compiled plan deploys live (a `LiveSession` or
//! sharded ingest), runs cold over recorded
//! [`SignalData`](crate::source::SignalData) (`executor_with`), and
//! replays retrospectively over the tiered
//! history store — the store crate's `HistoryQuery` hands exactly this
//! type (or a factory producing it) to its `pipeline(...)` builder.
//! There is no second query language for history: write the pipeline
//! once with this fluent surface, and range-bounded replays of durable
//! segments are byte-identical to what the live run produced over the
//! same window.
//!
//! The paper's Listing 1 in fluent form:
//!
//! ```
//! use lifestream_core::prelude::*;
//!
//! let q = Query::new();
//! let sig500 = q.source("sig500", StreamShape::new(0, 2));
//! let sig200 = q.source("sig200", StreamShape::new(0, 5));
//! sig500
//!     .aggregate(AggKind::Mean, 100, 100)?
//!     .join_map(sig500, JoinKind::Inner, 1, |m, v, out| out[0] = v[0] - m[0])?
//!     .join(sig200, JoinKind::Inner)?
//!     .sink();
//! let compiled = q.compile()?;
//! assert_eq!(compiled.global_dim(), 100); // Fig. 6's traced dimension
//! # Ok::<(), lifestream_core::Error>(())
//! ```

use std::cell::RefCell;

use crate::error::{Error, Result};
use crate::ops::aggregate::AggKind;
use crate::ops::join::JoinKind;
use crate::ops::transform::TransformCtx;
use crate::ops::where_shape::ShapeMode;
use crate::query::{CompiledQuery, QueryBuilder, StreamHandle};
use crate::time::{StreamShape, Tick};

/// A query under construction, owning the logical-plan builder that the
/// fluent [`Stream`] methods drive.
///
/// Interior mutability (a `RefCell` around the [`QueryBuilder`]) is what
/// lets multiple live `Stream`s — e.g. both sides of a join — share one
/// plan without threading `&mut` through every call.
#[derive(Debug, Default)]
pub struct Query {
    inner: RefCell<QueryBuilder>,
}

impl Query {
    /// Creates an empty query scope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing low-level builder so construction can continue
    /// fluently.
    pub fn from_builder(builder: QueryBuilder) -> Self {
        Self {
            inner: RefCell::new(builder),
        }
    }

    /// Declares a source stream. Datasets are later supplied to the
    /// executor in declaration order.
    pub fn source(&self, name: impl Into<String>, shape: StreamShape) -> Stream<'_> {
        let handle = self.inner.borrow_mut().source(name, shape);
        Stream {
            query: self,
            handle,
        }
    }

    /// Wraps a low-level [`StreamHandle`] (e.g. one created before
    /// [`Query::from_builder`]) as a fluent [`Stream`] — the
    /// builder-to-fluent direction of mixed construction.
    ///
    /// # Errors
    /// Returns an error for a handle that does not name a stream in this
    /// query.
    pub fn stream(&self, handle: StreamHandle) -> Result<Stream<'_>> {
        self.inner.borrow().shape_of(handle)?;
        Ok(Stream {
            query: self,
            handle,
        })
    }

    /// Unwraps back into the low-level builder (escape hatch for plan
    /// surgery the fluent surface does not expose).
    pub fn into_builder(self) -> QueryBuilder {
        self.inner.into_inner()
    }

    /// Compiles the query: validates the graph and runs locality tracing.
    ///
    /// # Errors
    /// Returns an error when the query has no sink or tracing diverges.
    pub fn compile(self) -> Result<CompiledQuery> {
        self.into_builder().compile()
    }
}

/// A stream inside a [`Query`], with every Table-2 operator as a
/// chainable method.
///
/// `Stream` is `Copy`: it is only a `(scope, node)` pair, so a stream can
/// be consumed by several operators — that is how fan-out is written (see
/// [`Stream::multicast`]).
#[must_use = "a Stream describes a sub-query; without reaching a sink() it computes nothing"]
#[derive(Debug, Clone, Copy)]
pub struct Stream<'q> {
    query: &'q Query,
    handle: StreamHandle,
}

impl<'q> Stream<'q> {
    /// The low-level handle this stream wraps (for mixing fluent and
    /// builder-level construction via [`Query::into_builder`]).
    pub fn handle(&self) -> StreamHandle {
        self.handle
    }

    /// Shape of this stream (offset and period).
    ///
    /// # Errors
    /// Returns an error for a stale handle.
    pub fn shape(&self) -> Result<StreamShape> {
        self.query.inner.borrow().shape_of(self.handle)
    }

    fn wrap(self, handle: Result<StreamHandle>) -> Result<Stream<'q>> {
        handle.map(|handle| Stream {
            query: self.query,
            handle,
        })
    }

    fn same_scope(&self, other: &Stream<'q>) -> Result<()> {
        if std::ptr::eq(self.query, other.query) {
            Ok(())
        } else {
            Err(Error::CrossQuery)
        }
    }

    /// `Select`: projects each event's payload through `f` (`out_arity`
    /// output fields).
    ///
    /// # Errors
    /// Returns an error for `out_arity` out of range.
    pub fn select<F>(self, out_arity: usize, f: F) -> Result<Stream<'q>>
    where
        F: FnMut(&[f32], &mut [f32]) + Send + 'static,
    {
        let h = self
            .query
            .inner
            .borrow_mut()
            .select(self.handle, out_arity, f);
        self.wrap(h)
    }

    /// Single-field `Select` mapping `f32 -> f32` — the fallible fluent
    /// counterpart of the builder's panicking
    /// [`select_map`](QueryBuilder::select_map).
    ///
    /// # Errors
    /// Returns an error for a stale handle.
    pub fn map<F>(self, mut f: F) -> Result<Stream<'q>>
    where
        F: FnMut(f32) -> f32 + Send + 'static,
    {
        self.select(1, move |i, o| o[0] = f(i[0]))
    }

    /// `Where`: keeps events satisfying `pred`.
    ///
    /// # Errors
    /// Returns an error for a stale handle.
    pub fn where_<F>(self, pred: F) -> Result<Stream<'q>>
    where
        F: FnMut(&[f32]) -> bool + Send + 'static,
    {
        let h = self.query.inner.borrow_mut().where_(self.handle, pred);
        self.wrap(h)
    }

    /// Extended `Where` (§6.1): filters by visual pattern using streaming
    /// constrained DTW.
    ///
    /// # Errors
    /// Returns an error for a multi-field input or an empty pattern.
    pub fn where_shape(
        self,
        pattern: Vec<f32>,
        band: usize,
        threshold: f32,
        normalize: bool,
        mode: ShapeMode,
    ) -> Result<Stream<'q>> {
        let h = self.query.inner.borrow_mut().where_shape(
            self.handle,
            pattern,
            band,
            threshold,
            normalize,
            mode,
        );
        self.wrap(h)
    }

    /// `Aggregate(w, p)`: applies `kind` to `window`-tick windows with
    /// stride `stride`.
    ///
    /// # Errors
    /// Returns an error for invalid window/stride parameters or a
    /// multi-field input.
    pub fn aggregate(self, kind: AggKind, window: Tick, stride: Tick) -> Result<Stream<'q>> {
        let h = self
            .query
            .inner
            .borrow_mut()
            .aggregate(self.handle, kind, window, stride);
        self.wrap(h)
    }

    /// Temporal equijoin with `other`, concatenating both payloads.
    ///
    /// # Errors
    /// Returns an error when the grids never align, the combined arity
    /// overflows, or `other` belongs to a different [`Query`].
    pub fn join(self, other: Stream<'q>, kind: JoinKind) -> Result<Stream<'q>> {
        self.same_scope(&other)?;
        let h = self
            .query
            .inner
            .borrow_mut()
            .join(self.handle, other.handle, kind);
        self.wrap(h)
    }

    /// Temporal equijoin with a payload projection: `f(left, right, out)`.
    ///
    /// # Errors
    /// Returns an error when the grids never align, `out_arity` is out of
    /// range, or `other` belongs to a different [`Query`].
    pub fn join_map<F>(
        self,
        other: Stream<'q>,
        kind: JoinKind,
        out_arity: usize,
        f: F,
    ) -> Result<Stream<'q>>
    where
        F: FnMut(&[f32], &[f32], &mut [f32]) + Send + 'static,
    {
        self.same_scope(&other)?;
        let h =
            self.query
                .inner
                .borrow_mut()
                .join_map(self.handle, other.handle, kind, out_arity, f);
        self.wrap(h)
    }

    /// `ClipJoin`: pairs each event of this stream with the most recent
    /// event of `other` at or before it (as-of join).
    ///
    /// # Errors
    /// Returns an error when the combined arity overflows or `other`
    /// belongs to a different [`Query`].
    pub fn clip_join(self, other: Stream<'q>) -> Result<Stream<'q>> {
        self.same_scope(&other)?;
        let h = self
            .query
            .inner
            .borrow_mut()
            .clip_join(self.handle, other.handle);
        self.wrap(h)
    }

    /// `Chop(b)`: splits event intervals on multiples of `boundary`.
    ///
    /// # Errors
    /// Returns an error for a non-positive boundary or an offset off the
    /// joint grid.
    pub fn chop(self, boundary: Tick) -> Result<Stream<'q>> {
        let h = self.query.inner.borrow_mut().chop(self.handle, boundary);
        self.wrap(h)
    }

    /// `Shift(k)`: moves every sync time forward by `delta` ticks.
    ///
    /// # Errors
    /// Returns an error for a negative `delta`.
    pub fn shift(self, delta: Tick) -> Result<Stream<'q>> {
        let h = self.query.inner.borrow_mut().shift(self.handle, delta);
        self.wrap(h)
    }

    /// `AlterPeriod(p)`: re-grids the stream to period `period`.
    ///
    /// # Errors
    /// Returns an error for a non-positive period.
    pub fn alter_period(self, period: Tick) -> Result<Stream<'q>> {
        let h = self
            .query
            .inner
            .borrow_mut()
            .alter_period(self.handle, period);
        self.wrap(h)
    }

    /// `AlterDuration(d)`: rewrites every event's active lifetime.
    ///
    /// # Errors
    /// Returns an error for a non-positive duration.
    pub fn alter_duration(self, duration: Tick) -> Result<Stream<'q>> {
        let h = self
            .query
            .inner
            .borrow_mut()
            .alter_duration(self.handle, duration);
        self.wrap(h)
    }

    /// `Transform(w)`: applies a user window-to-window function to
    /// `window`-tick sub-windows (single-field streams).
    ///
    /// # Errors
    /// Returns an error for a multi-field input or a window that is not a
    /// positive multiple of the period.
    pub fn transform<F>(self, window: Tick, f: F) -> Result<Stream<'q>>
    where
        F: FnMut(TransformCtx<'_>) + Send + 'static,
    {
        let h = self
            .query
            .inner
            .borrow_mut()
            .transform(self.handle, window, f);
        self.wrap(h)
    }

    /// `PassFilter`: FIR-filters the stream with `taps` coefficients
    /// (newest sample first). Gaps in the data reset the filter; presence
    /// passes through unchanged.
    ///
    /// # Errors
    /// Returns an error for a multi-field input or empty taps.
    pub fn pass_filter(self, taps: Vec<f32>) -> Result<Stream<'q>> {
        let h = self.query.inner.borrow_mut().pass_filter(self.handle, taps);
        self.wrap(h)
    }

    /// `Multicast`: forks the stream so multiple subqueries can read it.
    ///
    /// The engine's graph supports fan-out natively — every operator that
    /// consumes a stream adds an edge to the same node — so this returns
    /// two *aliases* of the same underlying stream rather than inserting
    /// copy nodes. It exists to mirror the paper's operator vocabulary
    /// (Listing 1); because `Stream` is `Copy`, simply using the value
    /// twice is equivalent.
    pub fn multicast(self) -> (Stream<'q>, Stream<'q>) {
        (self, self)
    }

    /// Marks this stream as a query output, ending the chain.
    pub fn sink(self) {
        self.query.inner.borrow_mut().sink(self.handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SignalData;

    #[test]
    fn listing1_fluent_compiles_to_dim_100() {
        let q = Query::new();
        let sig500 = q.source("sig500", StreamShape::new(0, 2));
        let sig200 = q.source("sig200", StreamShape::new(0, 5));
        let (a, b) = sig500.multicast();
        a.aggregate(AggKind::Mean, 100, 100)
            .unwrap()
            .join_map(b, JoinKind::Inner, 1, |m, v, o| o[0] = v[0] - m[0])
            .unwrap()
            .join(sig200, JoinKind::Inner)
            .unwrap()
            .sink();
        let compiled = q.compile().unwrap();
        assert_eq!(compiled.global_dim(), 100);
        assert_eq!(compiled.source_count(), 2);
    }

    #[test]
    fn cross_query_join_is_rejected() {
        let q1 = Query::new();
        let q2 = Query::new();
        let a = q1.source("a", StreamShape::new(0, 1));
        let b = q2.source("b", StreamShape::new(0, 1));
        assert_eq!(a.join(b, JoinKind::Inner).unwrap_err(), Error::CrossQuery);
        assert_eq!(
            a.join_map(b, JoinKind::Inner, 1, |_, _, _| {}).unwrap_err(),
            Error::CrossQuery
        );
        assert_eq!(a.clip_join(b).unwrap_err(), Error::CrossQuery);
    }

    #[test]
    fn fluent_map_is_fallible_not_panicking() {
        let q = Query::new();
        let s = q.source("s", StreamShape::new(0, 1));
        let mapped = s.map(|v| v * 2.0);
        assert!(mapped.is_ok());
    }

    #[test]
    fn compile_without_sink_fails() {
        let q = Query::new();
        let s = q.source("s", StreamShape::new(0, 1));
        let _ = s.map(|v| v).unwrap();
        assert_eq!(q.compile().unwrap_err(), Error::NoSink);
    }

    #[test]
    fn fluent_chain_runs_end_to_end() {
        let data = SignalData::dense(
            StreamShape::new(0, 100),
            (0..100).map(|i| i as f32).collect(),
        );
        let q = Query::new();
        q.source("sig", data.shape()).map(|v| v * v).unwrap().sink();
        let mut exec = q.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out.values(0)[3], 9.0);
    }

    #[test]
    fn from_builder_continues_fluently() {
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", StreamShape::new(0, 2));
        let q = Query::from_builder(qb);
        let s = q.stream(src).unwrap();
        s.aggregate(AggKind::Mean, 100, 100).unwrap().sink();
        assert_eq!(q.compile().unwrap().global_dim(), 100);
    }

    #[test]
    fn stream_rejects_foreign_handles() {
        // The foreign handle's node index (0) is in range in `q` too —
        // builder identity, not bounds, must reject it.
        let mut other = QueryBuilder::new();
        let foreign = other.source("a", StreamShape::new(0, 1));
        let q = Query::new();
        let _ = q.source("s", StreamShape::new(0, 1));
        assert!(q.stream(foreign).is_err());
    }

    #[test]
    fn shape_tracks_operators() {
        let q = Query::new();
        let s = q.source("s", StreamShape::new(0, 2));
        assert_eq!(s.shape().unwrap(), StreamShape::new(0, 2));
        let agg = s.aggregate(AggKind::Mean, 100, 100).unwrap();
        assert_eq!(agg.shape().unwrap().period(), 100);
        let shifted = agg.shift(10).unwrap();
        assert_eq!(shifted.shape().unwrap().offset(), 10);
    }
}
