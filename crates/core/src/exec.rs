//! The executor: lock-step rounds, targeted query processing, and the
//! static-memory steady state.
//!
//! After locality tracing every FWindow in the plan shares one dimension
//! `D`; execution proceeds in *rounds*, sliding every window to the same
//! absolute interval `[r·D, (r+1)·D)` and invoking the kernels in
//! topological order. Intermediate results are therefore consumed
//! immediately, while still cache-resident — the end-to-end locality the
//! paper's locality tracing is designed to produce.
//!
//! **Targeted query processing** (§5.3): before running a round, the
//! executor maps the candidate output interval backward through the event
//! lineage to the source streams and asks their presence maps whether this
//! round can produce output at all (inner joins require *both* sides).
//! Rounds that cannot are skipped wholesale — on gap-riddled physiological
//! data this prunes the bulk of the compute-heavy transformations.
//!
//! **Operator fusion** ([`fuse`](crate::fuse)): at executor construction,
//! maximal chains of unit-scale single-consumer operators (select / where /
//! transform / FIR / sliding aggregates on the input grid) are collapsed
//! into one [`FusedKernel`](crate::fuse::FusedKernel) placed at the chain's
//! tail. Interior nodes lose their FWindows (the memory plan skips them, so
//! [`planned_bytes`](Executor::planned_bytes) shrinks) and are skipped by
//! the round loop; intermediates live in two flat scratch columns that stay
//! cache-resident across the whole chain. Fusion is a pure execution-plan
//! rewrite — the graph, lineage maps, targeted skipping, and
//! [`history_margins`](Executor::history_margins) are untouched, and fused
//! output is bit-identical to staged output (see the [`fuse`](crate::fuse)
//! module docs for the eligibility rules and what breaks a group).
//! [`ExecOptions::without_fusion`] disables the pass for A/B comparison.

use crate::error::{Error, Result};
use crate::fuse::{self, FusionGroup, FusionPlan, Role};
use crate::fwindow::FWindow;
use crate::graph::{Graph, JoinKindTag, NodeId, OpKind};
use crate::memory::MemoryPlan;
use crate::ops::Kernel;
use crate::source::SignalData;
use crate::stats::RunStats;
use crate::time::Tick;

/// Executor knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Enable targeted query processing (round skipping). Default true.
    pub targeted: bool,
    /// Preallocate all FWindows once (the static-memory-allocation
    /// optimization). When false, every round allocates fresh buffers —
    /// the dynamic-allocation behaviour of conventional engines, kept for
    /// the ablation benchmark. Default true.
    pub static_memory: bool,
    /// Processing window (round) length in ticks; rounded up to a multiple
    /// of the traced dimension. The paper's evaluation default is one
    /// minute (60 000 ticks). `None` uses the minimal traced dimension.
    pub round_ticks: Option<Tick>,
    /// Fuse chains of unit-scale operators into single-pass kernels (see
    /// [`fuse`](crate::fuse)). Output is bit-identical either way; staged
    /// execution is kept for A/B comparison and benchmarks. Default true.
    pub fuse: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            targeted: true,
            static_memory: true,
            round_ticks: None,
            fuse: true,
        }
    }
}

impl ExecOptions {
    /// Options with targeted processing disabled (eager execution).
    pub fn eager() -> Self {
        Self {
            targeted: false,
            ..Self::default()
        }
    }

    /// Sets the processing window length in ticks.
    pub fn with_round_ticks(mut self, t: Tick) -> Self {
        self.round_ticks = Some(t);
        self
    }

    /// Disables static memory (per-round allocation; ablation mode).
    pub fn with_dynamic_memory(mut self) -> Self {
        self.static_memory = false;
        self
    }

    /// Disables targeted query processing.
    pub fn without_targeting(mut self) -> Self {
        self.targeted = false;
        self
    }

    /// Disables operator fusion (every node keeps its own window and
    /// kernel — the staged execution model).
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }
}

/// Collects sink output into dense arrays.
#[derive(Debug, Clone, Default)]
pub struct OutputCollector {
    arity: usize,
    times: Vec<Tick>,
    durations: Vec<Tick>,
    fields: Vec<Vec<f32>>,
}

impl OutputCollector {
    /// Creates a collector for `arity`-wide events.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            times: Vec::new(),
            durations: Vec::new(),
            fields: vec![Vec::new(); arity],
        }
    }

    /// Absorbs every present event of a window.
    pub fn absorb(&mut self, w: &FWindow) {
        debug_assert_eq!(w.arity(), self.arity);
        for (i, t, d) in w.iter_present() {
            self.times.push(t);
            self.durations.push(d);
            for f in 0..self.arity {
                self.fields[f].push(w.field(f)[i]);
            }
        }
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sync times of the collected events.
    pub fn times(&self) -> &[Tick] {
        &self.times
    }

    /// Durations of the collected events.
    pub fn durations(&self) -> &[Tick] {
        &self.durations
    }

    /// Values of field `f` across all collected events.
    pub fn values(&self, f: usize) -> &[f32] {
        &self.fields[f]
    }

    /// Payload arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Appends one event directly (time, duration, payload fields).
    ///
    /// Lets harnesses build a collector from events that did not come out
    /// of a LifeStream sink — e.g. a baseline engine's collected output —
    /// so [`checksum`](Self::checksum) can compare engines uniformly.
    ///
    /// # Panics
    /// Panics when `values.len()` differs from the collector's arity.
    pub fn push(&mut self, t: Tick, d: Tick, values: &[f32]) {
        assert_eq!(values.len(), self.arity, "payload arity mismatch");
        self.times.push(t);
        self.durations.push(d);
        for (f, &v) in values.iter().enumerate() {
            self.fields[f].push(v);
        }
    }

    /// A copy restricted to events whose sync time lies in `[t0, t1)`,
    /// preserving order — the output-side counterpart of
    /// [`SignalData::clipped`](crate::source::SignalData::clipped) for
    /// range-bounded retrospective queries: run the pipeline over a
    /// margin-padded input window, then clip the collected output to the
    /// requested range.
    pub fn clipped(&self, t0: Tick, t1: Tick) -> Self {
        let mut out = Self::new(self.arity);
        for (i, &t) in self.times.iter().enumerate() {
            if t >= t0 && t < t1 {
                out.times.push(t);
                out.durations.push(self.durations[i]);
                for f in 0..self.arity {
                    out.fields[f].push(self.fields[f][i]);
                }
            }
        }
        out
    }

    /// Order-sensitive checksum over times and values — used by tests to
    /// compare targeted and untargeted runs bit-for-bit.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (i, &t) in self.times.iter().enumerate() {
            mix(t as u64);
            for f in 0..self.arity {
                mix(self.fields[f][i].to_bits() as u64);
            }
        }
        h
    }
}

/// Executes a compiled query over a set of source datasets.
pub struct Executor {
    graph: Graph,
    kernels: Vec<Option<Box<dyn Kernel>>>,
    windows: Vec<Option<FWindow>>,
    sources: Vec<SignalData>,
    opts: ExecOptions,
    fusion: FusionPlan,
    round_dim: Tick,
    start: Tick,
    end: Tick,
    plan_bytes: usize,
}

impl Executor {
    pub(crate) fn new(
        graph: Graph,
        mut kernels: Vec<Option<Box<dyn Kernel>>>,
        sources: Vec<SignalData>,
        opts: ExecOptions,
        round_dim: Tick,
    ) -> Result<Self> {
        let fusion = if opts.fuse {
            fuse::install(&graph, &mut kernels)
        } else {
            FusionPlan::unfused(&graph)
        };
        // Fused interiors need no FWindow — the whole point of fusion's
        // footprint reduction — so the memory plan skips them.
        let skip: Vec<bool> = fusion
            .roles
            .iter()
            .map(|r| matches!(r, Role::FusedInterior))
            .collect();
        let plan = MemoryPlan::allocate_skipping(&graph, &skip);
        let plan_bytes = plan.total_bytes();
        let start = sources
            .iter()
            .filter_map(|s| s.presence().start())
            .min()
            .unwrap_or(0);
        let end = sources
            .iter()
            .filter_map(|s| s.presence().end())
            .max()
            .unwrap_or(0);
        let start = start.div_euclid(round_dim) * round_dim;
        if round_dim <= 0 {
            return Err(Error::InvalidParameter {
                message: "round dimension must be positive".into(),
            });
        }
        Ok(Self {
            graph,
            kernels,
            windows: plan.windows,
            sources,
            opts,
            fusion,
            round_dim,
            start,
            end,
            plan_bytes,
        })
    }

    /// The fused chains of this plan (empty when fusion is disabled or
    /// nothing qualified). Introspection for tests and diagnostics.
    pub fn fusion_groups(&self) -> &[FusionGroup] {
        &self.fusion.groups
    }

    /// The round (processing window) length in ticks.
    pub fn round_dim(&self) -> Tick {
        self.round_dim
    }

    /// Total preallocated intermediate-buffer bytes (the static memory
    /// plan's footprint).
    pub fn planned_bytes(&self) -> usize {
        self.plan_bytes
    }

    /// The traced computation graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Runs the query, discarding output payloads (events are counted in
    /// the returned stats).
    ///
    /// # Errors
    /// Propagates execution errors (none in the current kernel set, kept
    /// for forward compatibility).
    pub fn run(&mut self) -> Result<RunStats> {
        self.run_with(|_| {})
    }

    /// Runs the query, collecting the single sink's output.
    ///
    /// # Errors
    /// Returns an error when the query has more than one sink.
    pub fn run_collect(&mut self) -> Result<OutputCollector> {
        if self.graph.sinks.len() != 1 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "run_collect requires exactly one sink, query has {}",
                    self.graph.sinks.len()
                ),
            });
        }
        let sink = self.graph.sinks[0];
        let arity = self.graph.nodes[sink].arity;
        let mut collector = OutputCollector::new(arity);
        self.run_with(|w| collector.absorb(w))?;
        Ok(collector)
    }

    /// Runs the query, invoking `on_output` with each sink's input window
    /// after every executed round.
    ///
    /// # Errors
    /// Propagates execution errors.
    pub fn run_with<F: FnMut(&FWindow)>(&mut self, mut on_output: F) -> Result<RunStats> {
        // Drain margin: lineage lookahead (aggregates) means a round can
        // need source data slightly past `end`; shift spill means pending
        // events can flush after the last data round.
        let hard_end = self.end + self.round_dim;
        let mut stats = self.run_span(self.start, hard_end, &mut on_output)?;
        // Spill drain: keep running while stateful kernels hold pending
        // events (bounded by a safety margin).
        let mut a = hard_end.max(self.start);
        let drain_bound = hard_end + 64 * self.round_dim;
        while self.any_pending() && a < drain_bound {
            let s = self.run_span(a, a + self.round_dim, &mut on_output)?;
            stats.merge(&s);
            a += self.round_dim;
        }
        Ok(stats)
    }

    /// Runs the rounds covering `[from, to)` (both aligned to the round
    /// grid), invoking `on_output` per executed round. Used by both
    /// retrospective runs and the live session's incremental polls;
    /// kernel state carries across calls.
    ///
    /// # Errors
    /// Propagates execution errors.
    pub fn run_span<F: FnMut(&FWindow)>(
        &mut self,
        from: Tick,
        to: Tick,
        on_output: &mut F,
    ) -> Result<RunStats> {
        let mut stats = RunStats::new();
        let mut a = from.div_euclid(self.round_dim) * self.round_dim;
        while a < to {
            let b = a + self.round_dim;
            let pending = self.any_pending();
            if self.opts.targeted && !pending && !self.round_active(a, b) {
                stats.windows_skipped += 1;
                for k in self.kernels.iter_mut().flatten() {
                    k.on_skip();
                }
                a = b;
                continue;
            }
            if !self.opts.static_memory {
                // Ablation mode: conventional per-round allocation. Fused
                // interiors have no window in either mode.
                for n in &self.graph.nodes {
                    if !matches!(n.kind, OpKind::Sink)
                        && !matches!(self.fusion.roles[n.id], Role::FusedInterior)
                    {
                        self.windows[n.id] = Some(FWindow::new(n.shape, n.dim, n.arity));
                        stats.steady_state_allocs += 1;
                    }
                }
            }
            self.execute_round(a, b, &mut stats, on_output);
            stats.windows_executed += 1;
            a = b;
        }
        Ok(stats)
    }

    /// Swaps the source datasets. Shapes must match the originals.
    ///
    /// Two callers rely on this: the live session grows its sources
    /// between polls, and pooled executors (the sharded runtime) are
    /// recycled across patients so locality tracing, memory planning, and
    /// static allocation happen once per pool slot instead of once per
    /// dataset. The run span is recomputed from the new presence maps.
    ///
    /// # Errors
    /// Returns a descriptive error — never panics — on a source-count or
    /// per-source shape mismatch; the executor is left untouched so the
    /// caller can retry with corrected inputs.
    pub fn replace_sources(&mut self, sources: Vec<SignalData>) -> Result<()> {
        if sources.len() != self.sources.len() {
            return Err(Error::SourceCountMismatch {
                expected: self.sources.len(),
                actual: sources.len(),
            });
        }
        for (slot, (old, new)) in self.sources.iter().zip(&sources).enumerate() {
            if old.shape() != new.shape() {
                // Name lookup only on the error path — recycle calls this
                // per patient and must not pay for it on success.
                let name = self.graph.source_ids().get(slot).map_or_else(
                    || format!("source {slot}"),
                    |&id| self.graph.nodes[id].name.clone(),
                );
                return Err(Error::SourceShapeMismatch {
                    name,
                    declared: old.shape(),
                    supplied: new.shape(),
                });
            }
        }
        let start = sources
            .iter()
            .filter_map(|s| s.presence().start())
            .min()
            .unwrap_or(0);
        self.start = start.div_euclid(self.round_dim) * self.round_dim;
        self.end = sources
            .iter()
            .filter_map(|s| s.presence().end())
            .max()
            .unwrap_or(0);
        self.sources = sources;
        Ok(())
    }

    /// Releases the executor's hold on the current source datasets,
    /// swapping in empty same-shape placeholders. Incremental callers
    /// (live sessions) hand in a fresh `Arc`-shared snapshot via
    /// [`replace_sources`](Self::replace_sources) before every span and
    /// compact their buffers between spans; releasing here makes the
    /// session's buffer the *unique* owner again, so compaction and
    /// appends mutate in place instead of paying a copy-on-write clone
    /// against the executor's stale reference.
    pub fn release_sources(&mut self) {
        for s in &mut self.sources {
            *s = SignalData::dense(s.shape(), Vec::new());
        }
        self.start = 0;
        self.end = 0;
    }

    /// Clears every kernel's carried state, returning the executor to the
    /// condition it was in right after construction. Preallocated windows
    /// and the memory plan are kept — that is the point: a pool can hand
    /// the same executor a new patient without re-tracing or reallocating.
    pub fn reset(&mut self) {
        for k in self.kernels.iter_mut().flatten() {
            k.reset();
        }
    }

    /// Recycles the executor for a fresh, unrelated dataset:
    /// [`reset`](Self::reset) + [`replace_sources`](Self::replace_sources).
    /// This is the hot path of the sharded runtime's executor pools —
    /// per-patient cost is a state wipe and a span recomputation, not a
    /// compile.
    ///
    /// # Errors
    /// Propagates [`replace_sources`](Self::replace_sources) errors; the
    /// kernel reset still happens, so a failed recycle leaves the executor
    /// clean for the next attempt.
    pub fn recycle(&mut self, sources: Vec<SignalData>) -> Result<()> {
        self.reset();
        self.replace_sources(sources)
    }

    /// Payload arity of the single sink.
    ///
    /// # Errors
    /// Returns an error when the query has more than one sink.
    pub fn sink_arity(&self) -> Result<usize> {
        if self.graph.sinks.len() != 1 {
            return Err(Error::InvalidParameter {
                message: format!("query has {} sinks", self.graph.sinks.len()),
            });
        }
        Ok(self.graph.nodes[self.graph.sinks[0]].arity)
    }

    /// True while any stateful kernel holds events that must flush into a
    /// future round (live sessions drain on this).
    pub fn has_pending(&self) -> bool {
        self.any_pending()
    }

    fn any_pending(&self) -> bool {
        self.kernels.iter().flatten().any(|k| k.has_pending())
    }

    fn execute_round<F: FnMut(&FWindow)>(
        &mut self,
        a: Tick,
        b: Tick,
        stats: &mut RunStats,
        on_output: &mut F,
    ) {
        for id in 0..self.graph.nodes.len() {
            match self.graph.nodes[id].kind {
                OpKind::Source { index } => {
                    let w = self.windows[id].as_mut().expect("source window");
                    w.slide_to(a);
                    stats.input_events += fill_source(w, &self.sources[index], b) as u64;
                }
                OpKind::Sink => {
                    let input = self.graph.nodes[id].inputs[0];
                    let w = self.windows[input].as_ref().expect("sink input window");
                    stats.output_events += w.present_count() as u64;
                    on_output(w);
                }
                _ => {
                    // Fused interiors have no window and no kernel; the
                    // group's FusedKernel runs at the tail node, reading
                    // the group head's producer window directly.
                    let fused_input = match self.fusion.roles[id] {
                        Role::FusedInterior => continue,
                        Role::FusedTail { input } => Some(input),
                        Role::Normal => None,
                    };
                    let (before, after) = self.windows.split_at_mut(id);
                    let out = after[0].as_mut().expect("operator window");
                    out.slide_to(a);
                    let node = &self.graph.nodes[id];
                    let kernel = self.kernels[id].as_mut().expect("operator kernel");
                    stats.kernel_invocations += 1;
                    match (fused_input, node.inputs.len()) {
                        (Some(inp), _) => {
                            let i0 = before[inp].as_ref().expect("fused input window");
                            kernel.process(&[i0], out);
                        }
                        (None, 1) => {
                            let i0 = before[node.inputs[0]].as_ref().expect("input window");
                            kernel.process(&[i0], out);
                        }
                        (None, 2) => {
                            let i0 = before[node.inputs[0]].as_ref().expect("input window");
                            let i1 = before[node.inputs[1]].as_ref().expect("input window");
                            kernel.process(&[i0, i1], out);
                        }
                        (None, n) => unreachable!("operators take 1 or 2 inputs, got {n}"),
                    }
                }
            }
        }
    }

    /// Targeted query processing: can the round `[a, b)` produce output at
    /// any sink? Walks the lineage backward to the source presence maps.
    ///
    /// A round is also kept alive when data arrives at a `Shift` operator's
    /// input: the shifted events belong to a *future* round, so the current
    /// one must run to absorb them into the spill queue even though no sink
    /// output is due yet.
    fn round_active(&self, a: Tick, b: Tick) -> bool {
        if self.graph.sinks.iter().any(|&s| self.node_active(s, a, b)) {
            return true;
        }
        self.graph
            .nodes
            .iter()
            .any(|n| matches!(n.kind, OpKind::Shift { .. }) && self.node_active(n.inputs[0], a, b))
    }

    /// Per-source retirement margins for incremental (live) execution.
    ///
    /// For source `i`, the returned margin is the number of ticks *below*
    /// a round's start tick that deciding or filling any round at-or-after
    /// that start can still consult; source data older than
    /// `round_start - margin` is dead history a live session may retire.
    ///
    /// The margin is derived from the same composed lineage maps targeted
    /// processing walks: shifts carry their input lookback down to the
    /// sources, while window lookaheads only ever look *forward*.
    /// Kernel-internal history (FIR taps, shift spill, sliding-aggregate
    /// rings) is carried in kernel state across rounds, never re-read from
    /// source buffers, so it contributes nothing here. Margins are rounded
    /// up to whole source periods; a non-unit-scale lineage map (possible
    /// only through the generic [`LineageMap::scaled`] constructor, which
    /// no built-in operator uses) makes the margin effectively unbounded,
    /// disabling compaction rather than risking it.
    ///
    /// [`LineageMap::scaled`]: crate::lineage::LineageMap::scaled
    pub fn history_margins(&self) -> Vec<Tick> {
        /// Sentinel "keep everything" low for non-unit-scale lineage.
        const UNBOUNDED: Tick = -(1 << 40);
        let mut node_lows: Vec<Option<Tick>> = vec![None; self.graph.nodes.len()];
        // Mirror round_active's roots: every sink, plus every Shift input
        // (rounds stay alive to absorb shifted events into the spill).
        for &s in &self.graph.sinks {
            self.min_source_lows(s, 0, &mut node_lows, UNBOUNDED);
        }
        for n in &self.graph.nodes {
            if matches!(n.kind, OpKind::Shift { .. }) {
                self.min_source_lows(n.inputs[0], 0, &mut node_lows, UNBOUNDED);
            }
        }
        let mut lows: Vec<Tick> = vec![0; self.sources.len()];
        for n in &self.graph.nodes {
            if let OpKind::Source { index } = n.kind {
                lows[index] = node_lows[n.id].unwrap_or(0).min(0);
            }
        }
        lows.iter()
            .zip(&self.sources)
            .map(|(&lo, src)| {
                let p = src.shape().period();
                // Signed div_ceil is unstable; operands are non-negative.
                ((-lo).max(0) + p - 1) / p * p
            })
            .collect()
    }

    /// Per-source *forward* margins — the mirror of
    /// [`history_margins`](Self::history_margins) on the high side of the
    /// lineage maps.
    ///
    /// For source `i`, the returned margin is the number of ticks *at or
    /// above* a query range's end tick `t1` that producing every sink
    /// event strictly below `t1` can still consult: window lookaheads
    /// (tumbling/sliding aggregates read `[t, t+w)` to emit at `t`) and
    /// negative shifts pull future input into past output. A
    /// range-bounded retrospective query must therefore feed the pipeline
    /// input up to `t1 + margin` before clipping output to `[t0, t1)`.
    /// Margins are rounded up to whole source periods; a non-unit-scale
    /// lineage map makes the margin effectively unbounded (read to the
    /// end of history rather than risk truncation).
    pub fn future_margins(&self) -> Vec<Tick> {
        /// Sentinel "read everything" high for non-unit-scale lineage.
        const UNBOUNDED: Tick = 1 << 40;
        let mut node_his: Vec<Option<Tick>> = vec![None; self.graph.nodes.len()];
        // Only sinks root this walk: shift-spill events absorbed from
        // inputs below `t1` surface at-or-after `t1`, outside the clip
        // window, so they cannot affect the clipped output.
        for &s in &self.graph.sinks {
            self.max_source_his(s, 1, &mut node_his, UNBOUNDED);
        }
        let mut his: Vec<Tick> = vec![1; self.sources.len()];
        for n in &self.graph.nodes {
            if let OpKind::Source { index } = n.kind {
                his[index] = node_his[n.id].unwrap_or(1).max(1);
            }
        }
        his.iter()
            .zip(&self.sources)
            .map(|(&hi, src)| {
                let p = src.shape().period();
                // Signed div_ceil is unstable; operands are non-negative.
                ((hi - 1).max(0) + p - 1) / p * p
            })
            .collect()
    }

    /// Walks lineage edges from `id` down to the sources, recording per
    /// node the highest input tick (exclusive, relative to a round ending
    /// at 1) it can be asked about — the forward mirror of
    /// [`min_source_lows`](Self::min_source_lows). For unit-scale maps
    /// the high side of `map_interval` depends only on the interval end,
    /// so mapping `[hi-1, hi)` composes exactly.
    fn max_source_his(&self, id: NodeId, hi: Tick, node_his: &mut [Option<Tick>], unbounded: Tick) {
        match node_his[id] {
            Some(prev) if prev >= hi => return,
            _ => node_his[id] = Some(hi),
        }
        let node = &self.graph.nodes[id];
        for (&inp, lin) in node.inputs.iter().zip(&node.lineage) {
            let ib = if lin.is_unit_scale() {
                lin.map_interval(hi - 1, hi).1
            } else {
                unbounded
            };
            self.max_source_his(inp, ib, node_his, unbounded);
        }
    }

    /// Walks lineage edges from `id` down to the sources, recording per
    /// node the lowest input tick (relative to a round starting at 0) it
    /// can be asked about. A node is only re-expanded when a strictly
    /// lower value arrives, so reconvergent (multicast/join) DAGs cost
    /// linear work instead of one walk per path.
    fn min_source_lows(
        &self,
        id: NodeId,
        lo: Tick,
        node_lows: &mut [Option<Tick>],
        unbounded: Tick,
    ) {
        match node_lows[id] {
            Some(prev) if prev <= lo => return,
            _ => node_lows[id] = Some(lo),
        }
        let node = &self.graph.nodes[id];
        for (&inp, lin) in node.inputs.iter().zip(&node.lineage) {
            let ia = if lin.is_unit_scale() {
                lin.map_interval(lo, lo + 1).0
            } else {
                unbounded
            };
            self.min_source_lows(inp, ia, node_lows, unbounded);
        }
    }

    fn node_active(&self, id: NodeId, a: Tick, b: Tick) -> bool {
        let node = &self.graph.nodes[id];
        match node.kind {
            OpKind::Source { index } => self.sources[index].presence().overlaps(a, b),
            OpKind::Join { kind } => {
                let (la, lb) = node.lineage[0].map_interval(a, b);
                let (ra, rb) = node.lineage[1].map_interval(a, b);
                let l = self.node_active(node.inputs[0], la, lb);
                let r = self.node_active(node.inputs[1], ra, rb);
                match kind {
                    JoinKindTag::Inner => l && r,
                    JoinKindTag::Left => l,
                    JoinKindTag::Outer => l || r,
                }
            }
            OpKind::ClipJoin => {
                // Right-side data updates as-of state even without left
                // events, so either side keeps the round live.
                let (la, lb) = node.lineage[0].map_interval(a, b);
                let (ra, rb) = node.lineage[1].map_interval(a, b);
                self.node_active(node.inputs[0], la, lb) || self.node_active(node.inputs[1], ra, rb)
            }
            _ => node.inputs.iter().zip(&node.lineage).all(|(&inp, lin)| {
                let (ia, ib) = lin.map_interval(a, b);
                self.node_active(inp, ia, ib)
            }),
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("nodes", &self.graph.nodes.len())
            .field("round_dim", &self.round_dim)
            .field("span", &(self.start, self.end))
            .finish()
    }
}

/// Fills a source window from the dataset; returns the number of events
/// written. Uses bulk range copies over the presence map's kept intervals.
/// Sample indices are relative to the dataset's retained base, so compacted
/// live snapshots (non-zero [`SignalData::base_slot`]) fill correctly.
fn fill_source(w: &mut FWindow, data: &SignalData, round_end: Tick) -> usize {
    let sh = data.shape();
    let p = sh.period();
    let base = data.base_time();
    let mut written = 0usize;
    for &(rs, re) in data.presence().ranges() {
        if rs >= round_end {
            break;
        }
        let s = sh.align_up(rs.max(w.sync()).max(base));
        let e = re.min(round_end).min(data.end_time());
        if s >= e {
            continue;
        }
        let n = ((e - 1 - s) / p + 1) as usize;
        let src_lo = ((s - base) / p) as usize;
        let dst_lo = match w.slot_of(s) {
            Some(i) => i,
            None => continue,
        };
        let n = n.min(w.len() - dst_lo).min(data.values().len() - src_lo);
        w.fill_from_slice(dst_lo, &data.values()[src_lo..src_lo + n], p);
        written += n;
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate::AggKind;
    use crate::ops::join::JoinKind;
    use crate::query::QueryBuilder;
    use crate::source::SignalData;
    use crate::time::StreamShape;

    fn ramp(shape: StreamShape, n: usize) -> SignalData {
        SignalData::dense(shape, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn identity_pipeline_roundtrips() {
        let s = StreamShape::new(0, 2);
        let data = ramp(s, 100);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        qb.sink(src);
        let mut exec = qb.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out.values(0)[99], 99.0);
        assert_eq!(out.times()[1], 2);
    }

    #[test]
    fn select_pipeline_end_to_end() {
        let s = StreamShape::new(0, 1);
        let data = ramp(s, 50);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        let sel = qb.select_map(src, |v| v + 1.0);
        qb.sink(sel);
        let mut exec = qb.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.values(0)[0], 1.0);
        assert_eq!(out.values(0)[49], 50.0);
    }

    #[test]
    fn listing1_end_to_end_produces_joined_stream() {
        // Listing 1 over dense data: output at every joint grid point.
        let s500 = StreamShape::new(0, 2);
        let s200 = StreamShape::new(0, 5);
        let d500 = ramp(s500, 500); // [0, 1000)
        let d200 = ramp(s200, 200); // [0, 1000)
        let mut qb = QueryBuilder::new();
        let a = qb.source("sig500", s500);
        let b = qb.source("sig200", s200);
        let mean = qb.aggregate(a, AggKind::Mean, 100, 100).unwrap();
        let adj = qb
            .join_map(a, mean, JoinKind::Inner, 1, |v, m, o| o[0] = v[0] - m[0])
            .unwrap();
        let out = qb.join(adj, b, JoinKind::Inner).unwrap();
        qb.sink(out);
        let mut exec = qb.compile().unwrap().executor(vec![d500, d200]).unwrap();
        let res = exec.run_collect().unwrap();
        // Joint grid (0,1) but events exist where covering events overlap:
        // every tick in [0, 1000) is covered by both streams.
        assert_eq!(res.len(), 1000);
        // At t=0: sig500 value 0, window mean of values 0..49 = 24.5.
        assert_eq!(res.values(0)[0], -24.5);
    }

    #[test]
    fn targeted_skips_gap_rounds() {
        let s = StreamShape::new(0, 1);
        let mut data = ramp(s, 10_000);
        data.punch_gap(1000, 9000);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        let sel = qb.select_map(src, |v| v * 2.0);
        qb.sink(sel);
        let mut exec = qb
            .compile()
            .unwrap()
            .executor_with(vec![data], ExecOptions::default().with_round_ticks(100))
            .unwrap();
        let stats = exec.run().unwrap();
        assert!(
            stats.windows_skipped >= 75,
            "skipped {}",
            stats.windows_skipped
        );
        assert_eq!(stats.output_events, 2000);
    }

    #[test]
    fn targeted_and_eager_agree_bitwise() {
        let s500 = StreamShape::new(0, 2);
        let s125 = StreamShape::new(0, 8);
        let mk = |gaps: bool| {
            let mut a = ramp(s500, 5000);
            let mut b = ramp(s125, 1250);
            if gaps {
                a.punch_gap(1000, 3000);
                b.punch_gap(5000, 8000);
            }
            (a, b)
        };
        let build = || {
            let mut qb = QueryBuilder::new();
            let a = qb.source("ecg", s500);
            let b = qb.source("abp", s125);
            let mean = qb.aggregate(a, AggKind::Mean, 200, 200).unwrap();
            let adj = qb
                .join_map(a, mean, JoinKind::Inner, 1, |v, m, o| o[0] = v[0] - m[0])
                .unwrap();
            let j = qb.join(adj, b, JoinKind::Inner).unwrap();
            qb.sink(j);
            qb.compile().unwrap()
        };
        for gaps in [false, true] {
            let (a1, b1) = mk(gaps);
            let (a2, b2) = mk(gaps);
            let mut e1 = build()
                .executor_with(vec![a1, b1], ExecOptions::default().with_round_ticks(400))
                .unwrap();
            let mut e2 = build()
                .executor_with(vec![a2, b2], ExecOptions::eager().with_round_ticks(400))
                .unwrap();
            let o1 = e1.run_collect().unwrap();
            let o2 = e2.run_collect().unwrap();
            assert_eq!(o1.len(), o2.len(), "gaps={gaps}");
            assert_eq!(o1.checksum(), o2.checksum(), "gaps={gaps}");
        }
    }

    #[test]
    fn targeted_join_skips_non_overlapping_regions() {
        let s = StreamShape::new(0, 1);
        // Left has data in [0, 1000), right only in [5000, 6000): no
        // overlap, so an inner join should skip everything.
        let mut l = ramp(s, 10_000);
        l.punch_gap(1000, 10_000);
        let mut r = ramp(s, 10_000);
        r.punch_gap(0, 5000);
        r.punch_gap(6000, 10_000);
        let mut qb = QueryBuilder::new();
        let a = qb.source("l", s);
        let b = qb.source("r", s);
        let j = qb.join(a, b, JoinKind::Inner).unwrap();
        qb.sink(j);
        let mut exec = qb
            .compile()
            .unwrap()
            .executor_with(vec![l, r], ExecOptions::default().with_round_ticks(100))
            .unwrap();
        let stats = exec.run().unwrap();
        assert_eq!(stats.output_events, 0);
        assert_eq!(stats.windows_executed, 0);
        // Data spans [0, 6000) with round 100 -> ~61 rounds, all skipped.
        assert!(
            stats.windows_skipped >= 60,
            "skipped {}",
            stats.windows_skipped
        );
    }

    #[test]
    fn dynamic_memory_mode_counts_allocations() {
        let s = StreamShape::new(0, 1);
        let data = ramp(s, 1000);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        let sel = qb.select_map(src, |v| v);
        qb.sink(sel);
        let mut exec = qb
            .compile()
            .unwrap()
            .executor_with(
                vec![data],
                ExecOptions::default()
                    .with_round_ticks(100)
                    .with_dynamic_memory(),
            )
            .unwrap();
        let stats = exec.run().unwrap();
        assert!(stats.steady_state_allocs > 0);
    }

    #[test]
    fn static_memory_mode_has_zero_steady_state_allocs() {
        let s = StreamShape::new(0, 1);
        let data = ramp(s, 1000);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        let sel = qb.select_map(src, |v| v);
        qb.sink(sel);
        let mut exec = qb
            .compile()
            .unwrap()
            .executor_with(vec![data], ExecOptions::default().with_round_ticks(100))
            .unwrap();
        let stats = exec.run().unwrap();
        assert_eq!(stats.steady_state_allocs, 0);
    }

    /// select → select → where chain over gappy data; fusible end to end.
    fn fusible_chain() -> (crate::query::CompiledQuery, SignalData) {
        let s = StreamShape::new(0, 1);
        let mut data = ramp(s, 4000);
        data.punch_gap(500, 700);
        data.punch_gap(1203, 1207);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        let a = qb.select_map(src, |v| v * 2.0);
        let b = qb.select_map(a, |v| v + 1.0);
        let c = qb.where_(b, |v| v[0] as i64 % 3 != 0).unwrap();
        qb.sink(c);
        (qb.compile().unwrap(), data)
    }

    #[test]
    fn fusion_collapses_chain_and_matches_staged() {
        let (q1, d1) = fusible_chain();
        let (q2, d2) = fusible_chain();
        let mut fused = q1
            .executor_with(vec![d1], ExecOptions::default().with_round_ticks(256))
            .unwrap();
        let mut staged = q2
            .executor_with(
                vec![d2],
                ExecOptions::default()
                    .with_round_ticks(256)
                    .without_fusion(),
            )
            .unwrap();
        assert_eq!(fused.fusion_groups().len(), 1);
        assert_eq!(fused.fusion_groups()[0].members.len(), 3);
        assert!(staged.fusion_groups().is_empty());
        let of = fused.run_collect().unwrap();
        let os = staged.run_collect().unwrap();
        assert_eq!(of.len(), os.len());
        assert_eq!(of.checksum(), os.checksum());
        assert_eq!(of.durations(), os.durations());
    }

    #[test]
    fn fused_plan_allocates_strictly_fewer_bytes() {
        let (q1, d1) = fusible_chain();
        let (q2, d2) = fusible_chain();
        let fused = q1.executor(vec![d1]).unwrap();
        let staged = q2
            .executor_with(vec![d2], ExecOptions::default().without_fusion())
            .unwrap();
        // Two interior windows disappear: head's and middle's. With the
        // uniform dim and arity 1 each interior window costs the same, so
        // the fused footprint is the staged one minus two windows.
        assert!(
            fused.planned_bytes() < staged.planned_bytes(),
            "fused {} !< staged {}",
            fused.planned_bytes(),
            staged.planned_bytes()
        );
        let per_window = staged.planned_bytes() / 4; // src + 3 ops, same shape
        assert_eq!(
            staged.planned_bytes() - fused.planned_bytes(),
            2 * per_window
        );
    }

    #[test]
    fn fusion_with_dynamic_memory_allocates_fewer_windows() {
        let (q1, d1) = fusible_chain();
        let (q2, d2) = fusible_chain();
        let opts = ExecOptions::default()
            .with_round_ticks(256)
            .with_dynamic_memory();
        let mut fused = q1.executor_with(vec![d1], opts).unwrap();
        let mut staged = q2.executor_with(vec![d2], opts.without_fusion()).unwrap();
        let sf = fused.run().unwrap();
        let ss = staged.run().unwrap();
        assert_eq!(sf.output_events, ss.output_events);
        assert!(sf.steady_state_allocs < ss.steady_state_allocs);
    }

    #[test]
    fn multicast_fan_out_breaks_fusion_group() {
        let s = StreamShape::new(0, 1);
        let mk = || {
            let mut qb = QueryBuilder::new();
            let src = qb.source("s", s);
            let a = qb.select_map(src, |v| v * 2.0);
            let b = qb.select_map(a, |v| v + 1.0);
            // `a` feeds both `b` and the join: its window must survive.
            let j = qb.join(b, a, crate::ops::join::JoinKind::Inner).unwrap();
            qb.sink(j);
            qb.compile().unwrap()
        };
        let fused = mk().executor(vec![ramp(s, 100)]).unwrap();
        // No chain of >= 2 exclusive members exists, so nothing fuses.
        assert!(fused.fusion_groups().is_empty());
        let out = mk()
            .executor(vec![ramp(s, 100)])
            .unwrap()
            .run_collect()
            .unwrap();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn shift_pipeline_drains_spill() {
        let s = StreamShape::new(0, 1);
        let data = ramp(s, 100);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        let sh = qb.shift(src, 250).unwrap();
        qb.sink(sh);
        let mut exec = qb
            .compile()
            .unwrap()
            .executor_with(vec![data], ExecOptions::default().with_round_ticks(50))
            .unwrap();
        let out = exec.run_collect().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out.times()[0], 250);
        assert_eq!(out.times()[99], 349);
    }

    #[test]
    fn empty_sources_produce_no_output() {
        let s = StreamShape::new(0, 1);
        let data = SignalData::dense(s, vec![]);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        qb.sink(src);
        let mut exec = qb.compile().unwrap().executor(vec![data]).unwrap();
        let out = exec.run_collect().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn window_size_option_round_up() {
        let s = StreamShape::new(0, 2);
        let data = ramp(s, 10);
        let mut qb = QueryBuilder::new();
        let src = qb.source("s", s);
        qb.sink(src);
        let exec = qb
            .compile()
            .unwrap()
            .executor_with(vec![data], ExecOptions::default().with_round_ticks(7))
            .unwrap();
        assert_eq!(exec.round_dim(), 8); // 7 rounded up to a multiple of 2
    }
}
