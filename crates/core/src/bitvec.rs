//! Packed presence bitvector.
//!
//! FWindows mark absent events (discontinuities in the signal, events
//! filtered by `Where`) with a bitvector rather than compacting the columnar
//! buffers, preserving the index-position ↔ sync-time alignment that lets
//! operators compute timestamps without memory reads (§6 of the paper).

/// A fixed-capacity, heap-backed bitvector.
///
/// # Examples
/// ```
/// use lifestream_core::bitvec::BitVec;
/// let mut b = BitVec::new(10);
/// b.set(3, true);
/// assert!(b.get(3));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bitvector of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitvector of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.trim_tail();
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitvector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` in debug builds; release builds skip the
    /// check (this sits on the per-slot presence hot path) and may read
    /// a stale bit from the backing word instead.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if v {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Clears all bits without changing the length.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets all bits.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.trim_tail();
    }

    /// Resizes in place, clearing all bits (used when an FWindow is reused
    /// for a new interval).
    pub fn reset(&mut self, len: usize) {
        let needed = len.div_ceil(64);
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
        self.len = len;
        // Clear everything, including words beyond the new length, so
        // count_ones over the backing store stays exact.
        self.words.fill(0);
    }

    /// Sets bits `lo..hi` (half-open).
    ///
    /// # Panics
    /// Panics if `hi > len`.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        assert!(hi <= self.len, "range end {hi} out of range {}", self.len);
        for i in lo..hi {
            let w = &mut self.words[i / 64];
            *w |= 1u64 << (i % 64);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// True if every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// In-place intersection with another bitvector of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with another bitvector of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Copies all bits from `other` (lengths must match).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Iterator over maximal runs of consecutive set bits, as
    /// half-open `(lo, hi)` index ranges.
    ///
    /// This is the presence-run walk the fused executor is built
    /// around: one `(lo, hi)` per contiguous present range, so inner
    /// loops can iterate flat slices with no per-slot presence branch.
    pub fn iter_runs(&self) -> IterRuns<'_> {
        IterRuns { bv: self, pos: 0 }
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bv: self,
            word_idx: 0,
            cur: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit indices, produced by [`BitVec::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bv: &'a BitVec,
    word_idx: usize,
    cur: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.bv.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.bv.words.len() {
                return None;
            }
            self.cur = self.bv.words[self.word_idx];
        }
    }
}

/// Iterator over `(lo, hi)` runs of set bits, produced by
/// [`BitVec::iter_runs`].
#[derive(Debug)]
pub struct IterRuns<'a> {
    bv: &'a BitVec,
    pos: usize,
}

impl Iterator for IterRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let words = &self.bv.words;
        let len = self.bv.len;
        // Scan word-wise for the next set bit at or after `pos`.
        let mut lo = self.pos;
        loop {
            if lo >= len {
                return None;
            }
            let w = words[lo / 64] >> (lo % 64);
            if w == 0 {
                lo = (lo / 64 + 1) * 64;
                continue;
            }
            lo += w.trailing_zeros() as usize;
            break;
        }
        if lo >= len {
            return None;
        }
        // Scan for the end of the run: the next clear bit after `lo`.
        let mut hi = lo;
        loop {
            if hi >= len {
                hi = len;
                break;
            }
            // Invert so clear bits become set; shift out bits below hi.
            let w = !(words[hi / 64]) >> (hi % 64);
            if w == 0 {
                hi = (hi / 64 + 1) * 64;
                continue;
            }
            hi += w.trailing_zeros() as usize;
            break;
        }
        let hi = hi.min(len);
        self.pos = hi + 1; // hi is clear (or == len); resume past it
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitVec::new(130);
        for i in [0, 1, 63, 64, 65, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 7);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn all_set_respects_tail() {
        let b = BitVec::all_set(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.all());
        let b2 = BitVec::all_set(64);
        assert_eq!(b2.count_ones(), 64);
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut b = BitVec::all_set(100);
        b.reset(50);
        assert_eq!(b.len(), 50);
        assert_eq!(b.count_ones(), 0);
        b.reset(200);
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn boolean_ops() {
        let mut a = BitVec::new(10);
        let mut b = BitVec::new(10);
        a.set(1, true);
        a.set(2, true);
        b.set(2, true);
        b.set(3, true);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![2]);
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        a.set_all();
        assert!(a.all());
        a.clear();
        assert!(!a.any());
    }

    #[test]
    fn iter_ones_spans_words() {
        let mut b = BitVec::new(200);
        let idxs = [0usize, 5, 63, 64, 127, 128, 199];
        for &i in &idxs {
            b.set(i, true);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), idxs.to_vec());
    }

    #[test]
    fn empty_bitvec() {
        let b = BitVec::new(0);
        assert!(b.is_empty());
        assert!(!b.any());
        assert_eq!(b.iter_ones().count(), 0);
        assert_eq!(b.iter_runs().count(), 0);
    }

    #[test]
    fn iter_runs_matches_iter_ones() {
        // Runs across word boundaries, at both ends, and singletons.
        let mut b = BitVec::new(200);
        for (lo, hi) in [(0, 3), (62, 66), (127, 128), (130, 193), (199, 200)] {
            b.set_range(lo, hi);
        }
        let runs: Vec<(usize, usize)> = b.iter_runs().collect();
        assert_eq!(
            runs,
            vec![(0, 3), (62, 66), (127, 128), (130, 193), (199, 200)]
        );
        let from_runs: Vec<usize> = runs.iter().flat_map(|&(lo, hi)| lo..hi).collect();
        assert_eq!(from_runs, b.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn iter_runs_all_set_and_all_clear() {
        let b = BitVec::all_set(130);
        assert_eq!(b.iter_runs().collect::<Vec<_>>(), vec![(0, 130)]);
        let c = BitVec::new(130);
        assert_eq!(c.iter_runs().count(), 0);
    }

    // debug_assert-backed: the bounds check (and therefore the panic)
    // only exists in debug builds.
    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn out_of_range_get_panics() {
        let b = BitVec::new(4);
        b.get(4);
    }
}
