//! Operator fusion: single-pass execution of element-wise / unit-scale
//! operator chains over presence runs.
//!
//! # What fuses
//!
//! A *fusion group* is a maximal straight-line chain of nodes that all
//! satisfy, per node:
//!
//! * **Unit-scale, same-grid**: exactly one input, and the node's
//!   [`StreamShape`](crate::time::StreamShape) equals its input's shape —
//!   slot `i` of the output window corresponds to slot `i` of the input
//!   window. `Select`, `Where`, `Transform`, `Fir` (the first-class FIR
//!   `pass_filter`), and *sliding* aggregates whose stride equals the
//!   input period all qualify.
//! * **Single-field**: arity 1 in and out. The fused scratch carries one
//!   `f32` column; multi-field selects stay staged.
//! * **Interior exclusivity**: every member except the tail has exactly
//!   one consumer. A multicast fan-out (two consumers of the same node)
//!   or a join reading the node keeps it materialized, because some other
//!   part of the plan needs its `FWindow`.
//!
//! # What breaks a group
//!
//! Anything that changes the time grid or reads more than one stream:
//! tumbling aggregates (`window == stride` re-grids output to the stride),
//! `AlterPeriod` / resample, `Chop`, `Shift`, joins, `WhereShape` (carries
//! cross-round DTW state against the raw window layout), multi-field
//! selects, and fan-out as above. The chain simply ends at the offending
//! node; fusion never reorders operators.
//!
//! # Execution model
//!
//! At plan time ([`install`]) each group's member kernels are converted
//! into [`FusedStage`]s and replaced by a single [`FusedKernel`] placed at
//! the group's *tail* node. Interior nodes get **no FWindow at all** — the
//! memory plan skips them, which is where the reduced
//! [`planned_bytes`](crate::exec::Executor::planned_bytes) footprint comes
//! from — and the executor skips them in the round loop. The fused kernel
//! reads the group head's input window and writes the tail's window; the
//! intermediate values live in two flat scratch columns that ping-pong
//! between stages, staying cache-resident for the whole chain.
//!
//! Stage inner loops iterate contiguous presence runs as flat slices
//! (`(lo, hi)` ranges from [`BitVec::iter_runs`](
//! crate::bitvec::BitVec::iter_runs)) with no per-slot presence branch
//! inside a run, so the compiler can unroll and autovectorize the dense
//! interiors — the FIR stage in particular keeps a fixed-trip-count tap
//! loop over independent output positions.
//!
//! # Lineage and margins
//!
//! Fusion is a pure execution-plan rewrite: the graph, its per-node
//! [`LineageMap`](crate::lineage::LineageMap)s, targeted round skipping
//! ([`round_active`]-style walks), and
//! [`history_margins`](crate::exec::Executor::history_margins) all operate
//! on the *unfused* node list, unchanged. That is sound because every
//! fusible stage is unit-scale — lineage margins compose across a fused
//! group exactly as they composed across the staged chain (lookbacks and
//! lookaheads add), and stage-internal history (FIR taps, sliding rings)
//! is carried in stage state across rounds, never re-read from buffers,
//! exactly like the staged kernels it replaces. The executor's skip path
//! forwards `on_skip` to every stage, so gap-driven state resets are
//! byte-identical to staged execution.
//!
//! # Bit-identity
//!
//! Fused execution must be *bit-identical* to staged execution (the
//! differential battery diffs the two). Stages therefore replicate the
//! staged kernels' exact arithmetic: the same closure invocation order
//! over present slots, the same [`AggKind::fold`] accumulation order over
//! the same item sequence, and one shared FIR accumulation helper
//! ([`ops::fir`](crate::ops::fir)) used by both the staged kernel and the
//! fused stage. Fast paths are only taken where they provably execute the
//! same floating-point operation sequence.
//!
//! [`round_active`]: crate::exec::Executor
//! [`AggKind::fold`]: crate::ops::aggregate::AggKind::fold

use crate::fwindow::FWindow;
use crate::graph::{Graph, NodeId, OpKind};
use crate::ops::Kernel;
use crate::time::Tick;

/// One stage's view of the round during fused execution.
///
/// Slot `i` of every slice corresponds to sync time `base + i * period`;
/// all slices share one length (the round's slot count on the group's
/// grid). `out_present` arrives pre-cleared; `out_vals` holds stale bytes
/// at slots the stage does not write (the same contract staged kernels
/// have against their output windows — absent slots are garbage).
#[derive(Debug)]
pub struct StageIo<'a> {
    /// Sync time of slot 0.
    pub base: Tick,
    /// Grid period shared by input and output.
    pub period: Tick,
    /// Input values (including stale bytes at absent slots).
    pub vals: &'a [f32],
    /// Input presence flags.
    pub present: &'a [bool],
    /// Output values to fill.
    pub out_vals: &'a mut [f32],
    /// Output presence to fill (pre-cleared).
    pub out_present: &'a mut [bool],
}

/// One operator of a fused chain, converted from its staged kernel by
/// [`Kernel::take_stage`].
pub trait FusedStage: Send {
    /// Processes one round: reads `io.vals`/`io.present`, fills
    /// `io.out_vals`/`io.out_present`. Must not allocate.
    fn apply(&mut self, io: StageIo<'_>);

    /// Skipped-round notification; mirrors [`Kernel::on_skip`].
    fn on_skip(&mut self) {}

    /// Full state reset; mirrors [`Kernel::reset`].
    fn reset(&mut self) {}

    /// True when the stage rewrites event durations to the grid period
    /// (transforms, aggregates, FIR); false for pass-through stages
    /// (select, where). Decides how the fused kernel writes the tail
    /// window's durations.
    fn resets_durations(&self) -> bool {
        false
    }
}

/// Calls `f(lo, hi)` for each maximal run of `true` flags — the stage-side
/// counterpart of [`BitVec::iter_runs`](crate::bitvec::BitVec::iter_runs).
#[inline]
pub fn for_each_run(flags: &[bool], mut f: impl FnMut(usize, usize)) {
    let mut i = 0usize;
    while i < flags.len() {
        if !flags[i] {
            i += 1;
            continue;
        }
        let lo = i;
        while i < flags.len() && flags[i] {
            i += 1;
        }
        f(lo, i);
    }
}

/// A fusion group: the member node ids of one fused chain, in topological
/// (head-to-tail) order. `members.last()` is the tail whose window stays
/// materialized; all earlier members lose their windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Chain members, head first.
    pub members: Vec<NodeId>,
}

impl FusionGroup {
    /// The node whose window receives the fused output.
    pub fn tail(&self) -> NodeId {
        *self.members.last().expect("groups have >= 2 members")
    }

    /// The node the fused kernel reads: the head member's single input.
    pub fn input(&self, graph: &Graph) -> NodeId {
        graph.nodes[self.members[0]].inputs[0]
    }
}

/// Is `id` fusible as a chain stage, purely by graph shape?
fn eligible(graph: &Graph, id: NodeId) -> bool {
    let n = &graph.nodes[id];
    if n.inputs.len() != 1 || n.arity != 1 {
        return false;
    }
    let input = &graph.nodes[n.inputs[0]];
    if input.arity != 1 || n.shape != input.shape {
        return false;
    }
    match n.kind {
        OpKind::Select | OpKind::Where | OpKind::Transform { .. } | OpKind::Fir { .. } => true,
        // Sliding aggregates are unit-scale only when the output grid is
        // the input grid; tumbling windows (w == stride) re-grid.
        OpKind::Aggregate { window, stride } => window > stride && stride == input.shape.period(),
        _ => false,
    }
}

/// Finds all fusion groups in `graph` (see module docs for the rules).
/// Pure analysis — no kernel state is touched, so this is also the
/// introspection surface tests use to assert what fused.
pub fn find_groups(graph: &Graph) -> Vec<FusionGroup> {
    let consumers = graph.consumers();
    let mut grouped = vec![false; graph.nodes.len()];
    let mut groups = Vec::new();
    for id in 0..graph.nodes.len() {
        if grouped[id] || !eligible(graph, id) {
            continue;
        }
        let mut members = vec![id];
        let mut tail = id;
        loop {
            // Extend only through exclusive edges: a second consumer
            // (multicast alias, join, second sink) pins `tail`'s window.
            let cons = &consumers[tail];
            if cons.len() != 1 {
                break;
            }
            let next = cons[0];
            if grouped[next] || !eligible(graph, next) || graph.nodes[next].inputs != [tail] {
                break;
            }
            members.push(next);
            tail = next;
        }
        if members.len() >= 2 {
            for &m in &members {
                grouped[m] = true;
            }
            groups.push(FusionGroup { members });
        }
    }
    groups
}

/// Per-node execution role after fusion planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Runs its own kernel against its own window (or is a source/sink).
    Normal,
    /// Interior member of a fused group: no window, no kernel invocation.
    FusedInterior,
    /// Tail of a fused group: runs the group's [`FusedKernel`], reading
    /// the window of node `input` (the group head's producer).
    FusedTail {
        /// The materialized window the fused kernel reads.
        input: NodeId,
    },
}

/// The fusion plan for one executor: groups plus per-node roles.
#[derive(Debug)]
pub struct FusionPlan {
    /// All fused chains, in discovery (topological) order.
    pub groups: Vec<FusionGroup>,
    /// Role of every node, indexed by [`NodeId`].
    pub roles: Vec<Role>,
}

impl FusionPlan {
    /// A plan with no fusion (every node [`Role::Normal`]).
    pub fn unfused(graph: &Graph) -> Self {
        Self {
            groups: Vec::new(),
            roles: vec![Role::Normal; graph.nodes.len()],
        }
    }
}

/// Plans fusion for `graph` and rewrites `kernels` in place: each group's
/// member kernels are converted to stages and replaced by one
/// [`FusedKernel`] stored at the tail slot (interior slots become `None`).
///
/// A group is only converted when *every* member kernel reports
/// [`Kernel::supports_fusion`]; a probe failure (e.g. a multi-field select
/// that slipped past the graph check) leaves the whole chain staged rather
/// than half-converted.
pub fn install(graph: &Graph, kernels: &mut [Option<Box<dyn Kernel>>]) -> FusionPlan {
    let mut plan = FusionPlan::unfused(graph);
    let groups = find_groups(graph);
    for group in groups {
        let convertible = group
            .members
            .iter()
            .all(|&m| kernels[m].as_ref().is_some_and(|k| k.supports_fusion()));
        if !convertible {
            continue;
        }
        let stages: Vec<Box<dyn FusedStage>> = group
            .members
            .iter()
            .map(|&m| {
                let mut k = kernels[m].take().expect("probed kernel present");
                k.take_stage()
                    .expect("supports_fusion implies take_stage succeeds")
            })
            .collect();
        let tail = group.tail();
        let capacity = graph.nodes[tail].capacity();
        kernels[tail] = Some(Box::new(FusedKernel::new(stages, capacity)));
        for &m in &group.members {
            plan.roles[m] = Role::FusedInterior;
        }
        plan.roles[tail] = Role::FusedTail {
            input: group.input(graph),
        };
        plan.groups.push(group);
    }
    plan
}

/// A whole fused chain as one [`Kernel`]: reads the group head's input
/// window, runs every stage over flat scratch columns, writes the tail
/// window. All scratch is sized at construction — `process` never
/// allocates, preserving the static-memory guarantee.
pub struct FusedKernel {
    stages: Vec<Box<dyn FusedStage>>,
    /// Input presence unpacked to flags (stage boundary representation).
    in_flags: Vec<bool>,
    /// Ping-pong scratch: stages read `a`, write `b`, then the pair swaps.
    a_vals: Vec<f32>,
    a_flags: Vec<bool>,
    b_vals: Vec<f32>,
    b_flags: Vec<bool>,
    /// True when no stage resets durations: the tail copies the input
    /// window's per-slot durations through.
    pass_through_durations: bool,
}

impl FusedKernel {
    /// Builds a fused kernel over `stages` with scratch for `capacity`
    /// slots per round.
    pub fn new(stages: Vec<Box<dyn FusedStage>>, capacity: usize) -> Self {
        let pass_through = stages.iter().all(|s| !s.resets_durations());
        Self {
            stages,
            in_flags: vec![false; capacity],
            a_vals: vec![0.0; capacity],
            a_flags: vec![false; capacity],
            b_vals: vec![0.0; capacity],
            b_flags: vec![false; capacity],
            pass_through_durations: pass_through,
        }
    }

    /// Number of stages in the chain.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

impl Kernel for FusedKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        let len = input.len();
        debug_assert_eq!(len, out.len(), "fused group grids must align");
        if len == 0 {
            return;
        }
        let base = input.slot_time(0);
        let period = input.shape().period();

        // Unpack input presence into flags and values into scratch `a` —
        // run-wise, so dense inputs are two bulk copies.
        self.in_flags[..len].fill(false);
        for (lo, hi) in input.presence().iter_runs() {
            self.in_flags[lo..hi].fill(true);
        }
        self.a_vals[..len].copy_from_slice(&input.field(0)[..len]);
        self.a_flags[..len].copy_from_slice(&self.in_flags[..len]);

        for stage in &mut self.stages {
            self.b_flags[..len].fill(false);
            stage.apply(StageIo {
                base,
                period,
                vals: &self.a_vals[..len],
                present: &self.a_flags[..len],
                out_vals: &mut self.b_vals[..len],
                out_present: &mut self.b_flags[..len],
            });
            std::mem::swap(&mut self.a_vals, &mut self.b_vals);
            std::mem::swap(&mut self.a_flags, &mut self.b_flags);
        }

        // Bulk-write surviving runs into the tail window.
        for_each_run(&self.a_flags[..len], |lo, hi| {
            if self.pass_through_durations {
                out.fill_from_slice_with_durations(
                    lo,
                    &self.a_vals[lo..hi],
                    &input.durations()[lo..hi],
                );
            } else {
                out.fill_from_slice(lo, &self.a_vals[lo..hi], period);
            }
        });
    }

    fn on_skip(&mut self) {
        for s in &mut self.stages {
            s.on_skip();
        }
    }

    fn reset(&mut self) {
        for s in &mut self.stages {
            s.reset();
        }
    }
}

impl std::fmt::Debug for FusedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedKernel")
            .field("stages", &self.stages.len())
            .field("pass_through_durations", &self.pass_through_durations)
            .finish()
    }
}
