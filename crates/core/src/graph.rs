//! The logical computation graph.
//!
//! A compiled query is a DAG of [`Node`]s. Each node produces one output
//! stream, described by a [`StreamShape`], into one preallocated
//! [`FWindow`](crate::fwindow::FWindow); edges are implicit in `inputs`.
//! The graph carries only *metadata* (shapes, dimensions, lineage); the
//! executable kernels live alongside it in the compiled query so the graph
//! itself stays inspectable and `Debug`-printable.

use std::fmt;

use crate::lineage::LineageMap;
use crate::time::{StreamShape, Tick};

/// Identifier of a node within its graph (index into [`Graph::nodes`]).
pub type NodeId = usize;

/// Temporal join flavours supported by the `Join` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKindTag {
    /// Emit only where both sides have overlapping events.
    Inner,
    /// Emit wherever the left side has an event; absent right payloads are
    /// NaN-padded.
    Left,
    /// Emit wherever either side has an event; absent payloads NaN-padded.
    Outer,
}

/// The operator vocabulary of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Stream ingestion; `index` identifies the dataset slot.
    Source {
        /// Position in the executor's dataset vector.
        index: usize,
    },
    /// Stateless payload projection.
    Select,
    /// Predicate filter (marks events absent).
    Where,
    /// Shape/pattern filter using constrained DTW (the extended `Where` of
    /// §6.1).
    WhereShape,
    /// Windowed aggregation: window `w`, stride `p`. Tumbling (`w == p`) is
    /// stateless; sliding (`w > p`) carries a constant-size ring of inputs.
    Aggregate {
        /// Aggregation window length in ticks.
        window: Tick,
        /// Output stride in ticks (output stream period).
        stride: Tick,
    },
    /// Temporal equijoin of two streams on overlapping event intervals.
    Join {
        /// Inner / left / outer flavour.
        kind: JoinKindTag,
    },
    /// As-of join: pairs each left event with the most recent right event
    /// at or before it.
    ClipJoin,
    /// Splits event intervals on `boundary`-aligned period boundaries.
    Chop {
        /// Boundary grid the durations are split on.
        boundary: Tick,
    },
    /// Shifts every sync time forward by `delta` ticks.
    Shift {
        /// Shift amount (non-negative).
        delta: Tick,
    },
    /// Re-grids the stream to a new period, leaving sync times intact.
    AlterPeriod {
        /// New period.
        period: Tick,
    },
    /// Overwrites every event's duration.
    AlterDuration {
        /// New duration.
        duration: Tick,
    },
    /// User transformation over fixed `window`-sized intervals
    /// (`w`-in → `w`-out).
    Transform {
        /// Sub-window size in ticks.
        window: Tick,
    },
    /// FIR filter over present runs (`taps` coefficients, newest-first);
    /// the first-class form of `pass_filter`. Gaps reset the filter.
    Fir {
        /// Number of filter coefficients.
        taps: usize,
    },
    /// Query output.
    Sink,
}

impl OpKind {
    /// Short operator name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Source { .. } => "Source",
            OpKind::Select => "Select",
            OpKind::Where => "Where",
            OpKind::WhereShape => "WhereShape",
            OpKind::Aggregate { .. } => "Aggregate",
            OpKind::Join { .. } => "Join",
            OpKind::ClipJoin => "ClipJoin",
            OpKind::Chop { .. } => "Chop",
            OpKind::Shift { .. } => "Shift",
            OpKind::AlterPeriod { .. } => "AlterPeriod",
            OpKind::AlterDuration { .. } => "AlterDuration",
            OpKind::Transform { .. } => "Transform",
            OpKind::Fir { .. } => "Fir",
            OpKind::Sink => "Sink",
        }
    }

    /// The dimension-divisibility constraint this operator imposes on its
    /// FWindow (Table 2's *Dimension* column): the FWindow dimension must be
    /// a multiple of this value.
    pub fn dim_constraint(&self, out_shape: StreamShape) -> Tick {
        match self {
            OpKind::Aggregate { window, stride } => {
                // Tumbling windows must align with FWindow boundaries so the
                // stateless path applies; sliding windows only need stride
                // alignment (the ring state handles the rest).
                if window == stride {
                    crate::time::lcm(*window, out_shape.period())
                } else {
                    crate::time::lcm(*stride, out_shape.period())
                }
            }
            OpKind::Transform { window } => crate::time::lcm(*window, out_shape.period()),
            OpKind::Chop { boundary } => crate::time::lcm(*boundary, out_shape.period()),
            _ => out_shape.period(),
        }
    }
}

/// One operator instance in the computation graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id (its index in the graph).
    pub id: NodeId,
    /// Human-readable name (source name or operator name).
    pub name: String,
    /// Operator kind and parameters.
    pub kind: OpKind,
    /// Producer nodes, in operator-argument order.
    pub inputs: Vec<NodeId>,
    /// Shape of the output stream — a linear transformation of the input
    /// shapes (the linearity property).
    pub shape: StreamShape,
    /// Payload arity of the output stream.
    pub arity: usize,
    /// FWindow dimension; set by locality tracing
    /// ([`trace`](crate::trace)). Zero until traced.
    pub dim: Tick,
    /// Per-input lineage maps (output interval → required input interval).
    pub lineage: Vec<LineageMap>,
}

impl Node {
    /// FWindow slot capacity implied by the traced dimension
    /// (the bounded-memory-footprint property: `dim / period`).
    pub fn capacity(&self) -> usize {
        (self.dim / self.shape.period()) as usize
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {}[{}] arity={}",
            self.id, self.name, self.shape, self.dim, self.arity
        )
    }
}

/// The computation graph: nodes in topological order (construction via
/// [`QueryBuilder`](crate::query::QueryBuilder) guarantees producers precede
/// consumers), plus the sink set.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// All nodes, index == id, topologically ordered.
    pub nodes: Vec<Node>,
    /// Sink node ids.
    pub sinks: Vec<NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all source nodes, in dataset-slot order.
    pub fn source_ids(&self) -> Vec<NodeId> {
        let mut v: Vec<(usize, NodeId)> = self
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                OpKind::Source { index } => Some((index, n.id)),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Consumers of each node (inverse adjacency).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                out[i].push(n.id);
            }
        }
        out
    }

    /// Renders the graph one node per line — the textual analogue of the
    /// paper's Fig. 6 computation-graph drawings.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            s.push_str(&format!("{} <- {:?}\n", n, n.inputs));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: NodeId, kind: OpKind, inputs: Vec<NodeId>, shape: StreamShape) -> Node {
        Node {
            id,
            name: kind.name().to_string(),
            kind,
            inputs,
            shape,
            arity: 1,
            dim: shape.period(),
            lineage: vec![],
        }
    }

    #[test]
    fn source_ids_ordered_by_slot() {
        let mut g = Graph::new();
        g.nodes.push(node(
            0,
            OpKind::Source { index: 1 },
            vec![],
            StreamShape::new(0, 2),
        ));
        g.nodes.push(node(
            1,
            OpKind::Source { index: 0 },
            vec![],
            StreamShape::new(0, 5),
        ));
        assert_eq!(g.source_ids(), vec![1, 0]);
    }

    #[test]
    fn consumers_inverts_edges() {
        let mut g = Graph::new();
        g.nodes.push(node(
            0,
            OpKind::Source { index: 0 },
            vec![],
            StreamShape::new(0, 1),
        ));
        g.nodes
            .push(node(1, OpKind::Select, vec![0], StreamShape::new(0, 1)));
        g.nodes.push(node(
            2,
            OpKind::Join {
                kind: JoinKindTag::Inner,
            },
            vec![0, 1],
            StreamShape::new(0, 1),
        ));
        let c = g.consumers();
        assert_eq!(c[0], vec![1, 2]);
        assert_eq!(c[1], vec![2]);
        assert!(c[2].is_empty());
    }

    #[test]
    fn dim_constraints_follow_table2() {
        let s = StreamShape::new(0, 2);
        assert_eq!(OpKind::Select.dim_constraint(s), 2);
        assert_eq!(
            OpKind::Aggregate {
                window: 100,
                stride: 100
            }
            .dim_constraint(StreamShape::new(0, 100)),
            100
        );
        // Sliding aggregate only constrains to the stride grid.
        assert_eq!(
            OpKind::Aggregate {
                window: 100,
                stride: 10
            }
            .dim_constraint(StreamShape::new(0, 10)),
            10
        );
        assert_eq!(OpKind::Transform { window: 40 }.dim_constraint(s), 40);
        assert_eq!(OpKind::Chop { boundary: 6 }.dim_constraint(s), 6);
    }

    #[test]
    fn node_capacity_is_dim_over_period() {
        let mut n = node(0, OpKind::Select, vec![], StreamShape::new(0, 2));
        n.dim = 100;
        assert_eq!(n.capacity(), 50);
    }

    #[test]
    fn render_is_nonempty() {
        let mut g = Graph::new();
        g.nodes.push(node(
            0,
            OpKind::Source { index: 0 },
            vec![],
            StreamShape::new(0, 2),
        ));
        assert!(g.render().contains("Source"));
    }
}
