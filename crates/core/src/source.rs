//! Source datasets: in-memory columnar signal data with presence maps.
//!
//! Retrospective (historical) data is the primary evaluation mode in the
//! paper; a [`SignalData`] holds one signal's samples in a flat array
//! indexed by grid position, plus a [`PresenceMap`] describing the
//! discontinuities. Live ingestion can append to the same structure.

use std::sync::Arc;

use crate::presence::PresenceMap;
use crate::time::{StreamShape, Tick};

/// One signal's retrospective data: values on the periodic grid plus the
/// presence map of data-bearing intervals.
///
/// Samples are stored densely by grid index: slot `k` holds the value of
/// the event at `offset + k * period`, whether or not that event is present.
/// Absent slots hold a filler value and are excluded by the presence map.
///
/// # Examples
/// ```
/// use lifestream_core::source::SignalData;
/// use lifestream_core::time::StreamShape;
///
/// let mut d = SignalData::dense(StreamShape::new(0, 2), vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(d.len(), 4);
/// assert_eq!(d.end_time(), 8);
/// d.punch_gap(2, 6); // drop events at t=2 and t=4
/// assert_eq!(d.present_events(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SignalData {
    shape: StreamShape,
    values: Arc<Vec<f32>>,
    presence: PresenceMap,
}

impl SignalData {
    /// Creates a gap-free signal from dense samples. Event `k` is at
    /// `shape.offset() + k * shape.period()`.
    pub fn dense(shape: StreamShape, values: Vec<f32>) -> Self {
        let end = shape.offset() + values.len() as Tick * shape.period();
        let presence = if values.is_empty() {
            PresenceMap::new()
        } else {
            PresenceMap::full(shape.offset(), end)
        };
        Self {
            shape,
            values: Arc::new(values),
            presence,
        }
    }

    /// Creates a signal with an explicit presence map. Values must still be
    /// dense (one slot per grid point from the offset).
    pub fn with_presence(shape: StreamShape, values: Vec<f32>, presence: PresenceMap) -> Self {
        Self {
            shape,
            values: Arc::new(values),
            presence,
        }
    }

    /// The stream's symbolic shape.
    pub fn shape(&self) -> StreamShape {
        self.shape
    }

    /// Total grid slots (present or absent).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the signal holds no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// One past the last grid point.
    pub fn end_time(&self) -> Tick {
        self.shape.offset() + self.values.len() as Tick * self.shape.period()
    }

    /// The dense sample array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The presence map.
    pub fn presence(&self) -> &PresenceMap {
        &self.presence
    }

    /// Number of events actually present (grid points inside kept ranges,
    /// clipped to the sample array).
    pub fn present_events(&self) -> usize {
        let end = self.end_time();
        self.presence
            .ranges()
            .iter()
            .map(|&(s, e)| self.shape.events_in(s.max(self.shape.offset()), e.min(end)))
            .sum()
    }

    /// Removes `[start, end)` from the presence map (introduces a
    /// discontinuity without touching the sample array).
    pub fn punch_gap(&mut self, start: Tick, end: Tick) {
        self.presence.remove(start, end);
    }

    /// Grid slot index of time `t`, if on-grid and in range.
    pub fn slot_of(&self, t: Tick) -> Option<usize> {
        if t < self.shape.offset() || t >= self.end_time() {
            return None;
        }
        let d = t - self.shape.offset();
        (d % self.shape.period() == 0).then(|| (d / self.shape.period()) as usize)
    }

    /// Value at grid time `t` if the event is present.
    pub fn value_at(&self, t: Tick) -> Option<f32> {
        let slot = self.slot_of(t)?;
        self.presence.contains(t).then(|| self.values[slot])
    }

    /// Cheap clone of the underlying sample buffer (Arc-shared) restricted
    /// to a new presence map — used to derive overlap-controlled variants of
    /// one dataset without copying samples.
    pub fn with_new_presence(&self, presence: PresenceMap) -> Self {
        Self {
            shape: self.shape,
            values: Arc::clone(&self.values),
            presence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_signal_full_presence() {
        let d = SignalData::dense(StreamShape::new(0, 2), vec![1.0; 10]);
        assert_eq!(d.len(), 10);
        assert_eq!(d.end_time(), 20);
        assert!(d.presence().covers(0, 20));
        assert_eq!(d.present_events(), 10);
    }

    #[test]
    fn empty_signal() {
        let d = SignalData::dense(StreamShape::new(0, 2), vec![]);
        assert!(d.is_empty());
        assert!(d.presence().is_empty());
        assert_eq!(d.present_events(), 0);
    }

    #[test]
    fn punch_gap_reduces_presence() {
        let mut d = SignalData::dense(StreamShape::new(0, 1), (0..100).map(|i| i as f32).collect());
        d.punch_gap(10, 20);
        assert_eq!(d.present_events(), 90);
        assert_eq!(d.value_at(5), Some(5.0));
        assert_eq!(d.value_at(15), None);
        assert_eq!(d.value_at(20), Some(20.0));
    }

    #[test]
    fn slot_and_value_queries() {
        let d = SignalData::dense(StreamShape::new(4, 4), vec![10.0, 20.0, 30.0]);
        assert_eq!(d.slot_of(4), Some(0));
        assert_eq!(d.slot_of(8), Some(1));
        assert_eq!(d.slot_of(6), None);
        assert_eq!(d.slot_of(16), None);
        assert_eq!(d.value_at(12), Some(30.0));
    }

    #[test]
    fn with_new_presence_shares_samples() {
        let d = SignalData::dense(StreamShape::new(0, 1), vec![1.0; 1000]);
        let half = d.with_new_presence(PresenceMap::full(0, 500));
        assert_eq!(half.present_events(), 500);
        assert_eq!(half.values().len(), 1000);
    }

    #[test]
    fn offset_stream_present_events() {
        let mut d = SignalData::dense(StreamShape::new(3, 2), vec![0.0; 5]); // t=3,5,7,9,11
        assert_eq!(d.present_events(), 5);
        d.punch_gap(5, 8); // drops 5 and 7
        assert_eq!(d.present_events(), 3);
    }
}
