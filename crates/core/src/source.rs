//! Source datasets: in-memory columnar signal data with presence maps.
//!
//! Retrospective (historical) data is the primary evaluation mode in the
//! paper; a [`SignalData`] holds one signal's samples in a flat array
//! indexed by grid position, plus a [`PresenceMap`] describing the
//! discontinuities. Live ingestion can append to the same structure.

use std::sync::Arc;

use crate::presence::PresenceMap;
use crate::time::{StreamShape, Tick};

/// One signal's retrospective data: values on the periodic grid plus the
/// presence map of data-bearing intervals.
///
/// Samples are stored densely by grid index: slot `k` of the *retained*
/// array holds the value of the event at `base_time() + k * period`,
/// whether or not that event is present. Absent slots hold a filler value
/// and are excluded by the presence map.
///
/// Retrospective datasets start at the stream offset (`base_time() ==
/// shape.offset()`), so the retained array covers the whole signal. Live
/// sessions, by contrast, *retire* processed history: their snapshots
/// keep only a suffix of the grid, recorded by a non-zero
/// [`base_slot`](Self::base_slot), and share the sample buffer with the
/// growing ingest tail via `Arc` — cloning a `SignalData` never copies
/// samples, and a snapshot stays bounded by the retained suffix.
///
/// # Examples
/// ```
/// use lifestream_core::source::SignalData;
/// use lifestream_core::time::StreamShape;
///
/// let mut d = SignalData::dense(StreamShape::new(0, 2), vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(d.len(), 4);
/// assert_eq!(d.end_time(), 8);
/// d.punch_gap(2, 6); // drop events at t=2 and t=4
/// assert_eq!(d.present_events(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SignalData {
    shape: StreamShape,
    /// Grid-slot index of `values[0]`; slots below it are retired history
    /// no longer backed by samples. Zero for retrospective datasets.
    base_slot: usize,
    values: Arc<Vec<f32>>,
    presence: PresenceMap,
}

impl SignalData {
    /// Creates a gap-free signal from dense samples. Event `k` is at
    /// `shape.offset() + k * shape.period()`.
    pub fn dense(shape: StreamShape, values: Vec<f32>) -> Self {
        let end = shape.offset() + values.len() as Tick * shape.period();
        let presence = if values.is_empty() {
            PresenceMap::new()
        } else {
            PresenceMap::full(shape.offset(), end)
        };
        Self {
            shape,
            base_slot: 0,
            values: Arc::new(values),
            presence,
        }
    }

    /// Creates a signal with an explicit presence map. Values must still be
    /// dense (one slot per grid point from the offset).
    pub fn with_presence(shape: StreamShape, values: Vec<f32>, presence: PresenceMap) -> Self {
        Self {
            shape,
            base_slot: 0,
            values: Arc::new(values),
            presence,
        }
    }

    /// Creates a signal from an already-shared sample buffer whose first
    /// slot is grid index `base_slot` (the retained suffix of a longer
    /// stream). This is the zero-copy snapshot path of live ingestion: the
    /// buffer is shared, not copied, and the presence map must not claim
    /// data below `base_time` or at/after `end_time`.
    pub fn from_shared(
        shape: StreamShape,
        base_slot: usize,
        values: Arc<Vec<f32>>,
        presence: PresenceMap,
    ) -> Self {
        let d = Self {
            shape,
            base_slot,
            values,
            presence,
        };
        debug_assert!(d.presence.start().is_none_or(|s| s >= d.base_time()));
        debug_assert!(d.presence.end().is_none_or(|e| e <= d.end_time()));
        d
    }

    /// The stream's symbolic shape.
    pub fn shape(&self) -> StreamShape {
        self.shape
    }

    /// Retained grid slots (present or absent).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the signal holds no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Grid-slot index of the first retained sample (`values()[0]`).
    /// Zero unless this is the retired-history suffix of a live stream.
    pub fn base_slot(&self) -> usize {
        self.base_slot
    }

    /// Sync time of the first retained sample slot.
    pub fn base_time(&self) -> Tick {
        self.shape.offset() + self.base_slot as Tick * self.shape.period()
    }

    /// One past the last retained grid point.
    pub fn end_time(&self) -> Tick {
        self.base_time() + self.values.len() as Tick * self.shape.period()
    }

    /// The dense retained sample array; index `k` holds the event at
    /// `base_time() + k * period`. Use [`slot_of`](Self::slot_of) to map
    /// absolute times to indices rather than assuming a zero base.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The presence map.
    pub fn presence(&self) -> &PresenceMap {
        &self.presence
    }

    /// Number of events actually present (grid points inside kept ranges,
    /// clipped to the retained sample array).
    pub fn present_events(&self) -> usize {
        let base = self.base_time();
        let end = self.end_time();
        self.presence
            .ranges()
            .iter()
            .map(|&(s, e)| self.shape.events_in(s.max(base), e.min(end)))
            .sum()
    }

    /// Removes `[start, end)` from the presence map (introduces a
    /// discontinuity without touching the sample array).
    pub fn punch_gap(&mut self, start: Tick, end: Tick) {
        self.presence.remove(start, end);
    }

    /// Index into [`values`](Self::values) of time `t`, if on-grid and
    /// inside the retained suffix.
    pub fn slot_of(&self, t: Tick) -> Option<usize> {
        if t < self.base_time() || t >= self.end_time() {
            return None;
        }
        let d = t - self.base_time();
        (d % self.shape.period() == 0).then(|| (d / self.shape.period()) as usize)
    }

    /// Value at grid time `t` if the event is present.
    pub fn value_at(&self, t: Tick) -> Option<f32> {
        let slot = self.slot_of(t)?;
        self.presence.contains(t).then(|| self.values[slot])
    }

    /// Iterates `(index, time, value)` over the present grid points of
    /// the retained suffix, in time order; `index` addresses
    /// [`values`](Self::values). This is *the* way to walk present
    /// events — hand-rolled `(t - offset) / period` indexing silently
    /// misreads compacted live snapshots (non-zero base).
    pub fn present_samples(&self) -> impl Iterator<Item = (usize, Tick, f32)> + '_ {
        let base = self.base_time();
        let end = self.end_time();
        let p = self.shape.period();
        self.presence.ranges().iter().flat_map(move |&(rs, re)| {
            let s = self.shape.align_up(rs.max(base));
            let e = re.min(end);
            let n = if s >= e {
                0
            } else {
                ((e - 1 - s) / p + 1) as usize
            };
            let lo = if n == 0 { 0 } else { ((s - base) / p) as usize };
            (0..n).map(move |k| (lo + k, s + k as Tick * p, self.values[lo + k]))
        })
    }

    /// Cheap clone of the underlying sample buffer (Arc-shared) restricted
    /// to a new presence map — used to derive overlap-controlled variants of
    /// one dataset without copying samples.
    pub fn with_new_presence(&self, presence: PresenceMap) -> Self {
        Self {
            shape: self.shape,
            base_slot: self.base_slot,
            values: Arc::clone(&self.values),
            presence,
        }
    }

    /// Zero-copy restriction of this signal to the time range `[t0, t1)`:
    /// the sample buffer stays Arc-shared, only the presence map is
    /// intersected with the window. Events outside the range become
    /// absent exactly as if they were never recorded, which is what a
    /// range-bounded retrospective query needs. An empty or inverted
    /// range yields an all-absent signal.
    pub fn clipped(&self, t0: Tick, t1: Tick) -> Self {
        let window = if t1 > t0 {
            PresenceMap::full(t0, t1)
        } else {
            PresenceMap::new()
        };
        self.with_new_presence(self.presence.intersect(&window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_signal_full_presence() {
        let d = SignalData::dense(StreamShape::new(0, 2), vec![1.0; 10]);
        assert_eq!(d.len(), 10);
        assert_eq!(d.end_time(), 20);
        assert!(d.presence().covers(0, 20));
        assert_eq!(d.present_events(), 10);
    }

    #[test]
    fn empty_signal() {
        let d = SignalData::dense(StreamShape::new(0, 2), vec![]);
        assert!(d.is_empty());
        assert!(d.presence().is_empty());
        assert_eq!(d.present_events(), 0);
    }

    #[test]
    fn punch_gap_reduces_presence() {
        let mut d = SignalData::dense(StreamShape::new(0, 1), (0..100).map(|i| i as f32).collect());
        d.punch_gap(10, 20);
        assert_eq!(d.present_events(), 90);
        assert_eq!(d.value_at(5), Some(5.0));
        assert_eq!(d.value_at(15), None);
        assert_eq!(d.value_at(20), Some(20.0));
    }

    #[test]
    fn slot_and_value_queries() {
        let d = SignalData::dense(StreamShape::new(4, 4), vec![10.0, 20.0, 30.0]);
        assert_eq!(d.slot_of(4), Some(0));
        assert_eq!(d.slot_of(8), Some(1));
        assert_eq!(d.slot_of(6), None);
        assert_eq!(d.slot_of(16), None);
        assert_eq!(d.value_at(12), Some(30.0));
    }

    #[test]
    fn with_new_presence_shares_samples() {
        let d = SignalData::dense(StreamShape::new(0, 1), vec![1.0; 1000]);
        let half = d.with_new_presence(PresenceMap::full(0, 500));
        assert_eq!(half.present_events(), 500);
        assert_eq!(half.values().len(), 1000);
    }

    #[test]
    fn shared_suffix_is_base_offset_aware() {
        // Retained suffix: slots 100.. of a period-2 stream (t = 200..).
        let values = Arc::new((100..150).map(|i| i as f32).collect::<Vec<_>>());
        let d = SignalData::from_shared(
            StreamShape::new(0, 2),
            100,
            Arc::clone(&values),
            PresenceMap::full(200, 300),
        );
        assert_eq!(d.base_slot(), 100);
        assert_eq!(d.base_time(), 200);
        assert_eq!(d.end_time(), 300);
        assert_eq!(d.len(), 50);
        assert_eq!(d.present_events(), 50);
        assert_eq!(d.slot_of(198), None); // retired
        assert_eq!(d.slot_of(200), Some(0));
        assert_eq!(d.slot_of(298), Some(49));
        assert_eq!(d.value_at(210), Some(105.0));
        // The buffer is shared, not copied.
        assert_eq!(Arc::strong_count(&values), 2);
        let clone = d.clone();
        assert_eq!(Arc::strong_count(&values), 3);
        assert_eq!(clone.value_at(210), Some(105.0));
    }

    #[test]
    fn clipped_restricts_presence_without_copying() {
        let d = SignalData::dense(StreamShape::new(0, 2), (0..100).map(|i| i as f32).collect());
        let mid = d.clipped(20, 60);
        assert_eq!(mid.values().len(), 100, "samples stay shared");
        assert_eq!(mid.present_events(), 20);
        assert_eq!(mid.value_at(18), None);
        assert_eq!(mid.value_at(20), Some(10.0));
        assert_eq!(mid.value_at(58), Some(29.0));
        assert_eq!(mid.value_at(60), None);
        // Inverted and empty ranges yield an all-absent signal.
        assert_eq!(d.clipped(60, 20).present_events(), 0);
        assert_eq!(d.clipped(30, 30).present_events(), 0);
    }

    #[test]
    fn offset_stream_present_events() {
        let mut d = SignalData::dense(StreamShape::new(3, 2), vec![0.0; 5]); // t=3,5,7,9,11
        assert_eq!(d.present_events(), 5);
        d.punch_gap(5, 8); // drops 5 and 7
        assert_eq!(d.present_events(), 3);
    }
}
