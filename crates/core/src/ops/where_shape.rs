//! Shape-based `Where` (§6.1): filter events by visual pattern using the
//! streaming constrained-DTW matcher.

use crate::dtw::StreamingMatcher;
use crate::fwindow::FWindow;
use crate::ops::Kernel;

/// What to do with pattern matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeMode {
    /// Remove matched regions from the stream (artifact scrubbing — the
    /// paper's primary use).
    Remove,
    /// Keep *only* matched regions (artifact detection; used by the Fig. 7
    /// accuracy experiment to extract detections).
    Keep,
}

/// `Where(shape)` kernel: slides the streaming matcher along present
/// events; on a match, the trailing `pattern_len` slots are flagged.
///
/// The matcher state is a constant-size ring — bounded memory. Suppression
/// of slots already emitted in *previous* rounds is impossible (windows
/// only move forward), so a matched region is flagged from the earliest
/// slot still inside the current round; with FWindow dimensions from
/// locality tracing (≥ the pattern length in all our pipelines) this covers
/// the full artifact.
pub struct WhereShapeKernel {
    matcher: StreamingMatcher,
    mode: ShapeMode,
    /// Number of matches seen (exposed for diagnostics/tests).
    matches: u64,
}

impl WhereShapeKernel {
    /// Creates a shape-filter kernel.
    pub fn new(matcher: StreamingMatcher, mode: ShapeMode) -> Self {
        Self {
            matcher,
            mode,
            matches: 0,
        }
    }

    /// Total matches observed so far.
    pub fn matches(&self) -> u64 {
        self.matches
    }
}

impl Kernel for WhereShapeKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        let m = self.matcher.pattern_len();
        // First pass: copy according to mode's default, tracking matches.
        let keep_default = matches!(self.mode, ShapeMode::Remove);
        for i in 0..input.len() {
            if !input.is_present(i) {
                // A discontinuity breaks the trailing window.
                self.matcher.reset();
                continue;
            }
            let v = input.field(0)[i];
            if keep_default {
                out.write(i, &[v], input.duration(i));
            }
            if self.matcher.push(v) {
                self.matches += 1;
                // Flag the trailing window [i+1-m, i] (clamped to round).
                let lo = i.saturating_sub(m - 1);
                for j in lo..=i {
                    match self.mode {
                        ShapeMode::Remove => out.clear_slot(j),
                        ShapeMode::Keep => {
                            if input.is_present(j) {
                                out.write(j, &[input.field(0)[j]], input.duration(j));
                            }
                        }
                    }
                }
            }
        }
    }

    fn on_skip(&mut self) {
        self.matcher.reset();
    }

    fn reset(&mut self) {
        self.matcher.reset();
        self.matches = 0;
    }
}

impl std::fmt::Debug for WhereShapeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WhereShapeKernel")
            .field("mode", &self.mode)
            .field("matches", &self.matches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, filled};
    use crate::time::StreamShape;

    fn signal_with_artifact() -> Vec<f32> {
        let mut v = vec![50.0; 20];
        v.extend_from_slice(&[0.0, 0.0, 0.0, 0.0]); // line-zero style drop
        v.extend(vec![50.0; 20]);
        v
    }

    #[test]
    fn remove_mode_scrubs_matched_region() {
        let s = StreamShape::new(0, 1);
        let sig = signal_with_artifact();
        let input = filled(s, sig.len() as i64, 0, &sig);
        let mut out = empty(s, sig.len() as i64, 0, 1);
        let matcher = StreamingMatcher::new(vec![0.0; 4], 1, 5.0, false);
        let mut k = WhereShapeKernel::new(matcher, ShapeMode::Remove);
        k.process(&[&input], &mut out);
        assert!(k.matches() >= 1);
        // The artifact slots (20..24) must be gone.
        for i in 20..24 {
            assert!(!out.is_present(i), "slot {i} should be scrubbed");
        }
        // Clean slots survive.
        assert!(out.is_present(5));
        assert!(out.is_present(30));
    }

    #[test]
    fn keep_mode_extracts_only_matches() {
        let s = StreamShape::new(0, 1);
        let sig = signal_with_artifact();
        let input = filled(s, sig.len() as i64, 0, &sig);
        let mut out = empty(s, sig.len() as i64, 0, 1);
        let matcher = StreamingMatcher::new(vec![0.0; 4], 1, 5.0, false);
        let mut k = WhereShapeKernel::new(matcher, ShapeMode::Keep);
        k.process(&[&input], &mut out);
        assert!(out.present_count() >= 4);
        assert!(!out.is_present(5));
        assert!(out.is_present(22));
    }

    #[test]
    fn gaps_reset_the_matcher() {
        let s = StreamShape::new(0, 1);
        let mut input = filled(s, 10, 0, &[0.0; 10]);
        // Gap right before would-be match completion.
        input.clear_slot(4);
        let mut out = empty(s, 10, 0, 1);
        let matcher = StreamingMatcher::new(vec![0.0; 5], 1, 0.5, false);
        let mut k = WhereShapeKernel::new(matcher, ShapeMode::Keep);
        k.process(&[&input], &mut out);
        // Window refills after the gap: match possible only at slot 9.
        assert!(out.is_present(9) || out.present_count() <= 5);
    }

    #[test]
    fn no_match_means_identity_in_remove_mode() {
        let s = StreamShape::new(0, 1);
        let input = filled(s, 10, 0, &[50.0; 10]);
        let mut out = empty(s, 10, 0, 1);
        let matcher = StreamingMatcher::new(vec![0.0; 4], 1, 5.0, false);
        let mut k = WhereShapeKernel::new(matcher, ShapeMode::Remove);
        k.process(&[&input], &mut out);
        assert_eq!(out.present_count(), 10);
        assert_eq!(k.matches(), 0);
    }
}
