//! First-class FIR filtering: the `pass_filter` hot path as its own
//! operator instead of a `Transform` closure.
//!
//! Semantics are *clean run convolution*: within each maximal run of
//! present samples, `y[t] = Σₖ taps[k] · x[t − k·period]`, where samples
//! before the run's start contribute nothing — any gap resets the filter
//! (on dense data this is exactly the textbook convolution with warm-up
//! partials, matching the old closure-based `pass_filter`). Output is
//! present exactly where input is present. Up to `taps − 1` trailing
//! samples of a run carry across round boundaries in kernel state
//! ([`FirState`]), so a run spanning rounds filters identically to the
//! same run inside one round; a skipped round clears the carry, which is
//! consistent because a skipped round is an all-absent round.
//!
//! Both the staged [`FirKernel`] and the fused stage it converts into run
//! the *same* accumulation code ([`FirState::apply_run`]): a per-sample
//! history-aware head for the first `taps − 1` positions of a run, then a
//! branch-free dense interior — a fixed-trip tap loop over independent
//! output positions, the autovectorization-friendly shape the fusion pass
//! is built around. Identical code ⟹ bit-identical output, which the
//! differential battery's fused-vs-staged arm checks.

use crate::fuse::{for_each_run, FusedStage, StageIo};
use crate::fwindow::FWindow;
use crate::ops::Kernel;

/// FIR filter state shared by the staged kernel and the fused stage: the
/// taps plus the carried tail (up to `taps − 1` most recent samples of a
/// present run still in progress).
#[derive(Debug, Clone)]
pub(crate) struct FirState {
    taps: Vec<f32>,
    /// Carried run tail, oldest first; `len <= taps.len() - 1`.
    hist: Vec<f32>,
}

/// One output sample with history reach-back: `y = Σₖ taps[k] · x[j−k]`,
/// where `x` is `run` for in-run offsets and `hist` (most recent last)
/// for samples before the run start. f32 accumulation in ascending-k
/// order — the single op sequence every FIR path in the crate executes.
#[inline]
fn dot_with_history(taps: &[f32], run: &[f32], j: usize, hist: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (k, &tap) in taps.iter().enumerate() {
        let x = if k <= j {
            run[j - k]
        } else {
            let back = k - j;
            if back > hist.len() {
                // Older taps reach even further back; nothing contributes.
                break;
            }
            hist[hist.len() - back]
        };
        acc += tap * x;
    }
    acc
}

impl FirState {
    pub(crate) fn new(taps: Vec<f32>) -> Self {
        let m = taps.len().saturating_sub(1);
        Self {
            taps,
            hist: Vec::with_capacity(m),
        }
    }

    /// Drops the carried tail (gap in the data / skipped round / reset).
    pub(crate) fn clear(&mut self) {
        self.hist.clear();
    }

    /// Filters one contiguous present run into `out` (same length).
    /// History carries in from the previous run fragment and is updated
    /// to this run's tail on exit. Never allocates (`hist` stays within
    /// its construction capacity).
    pub(crate) fn apply_run(&mut self, run: &[f32], out: &mut [f32]) {
        debug_assert_eq!(run.len(), out.len());
        let taps = &self.taps;
        let m = taps.len() - 1;
        // Head: output positions whose window reaches before the run.
        let head_end = run.len().min(m);
        for (j, o) in out.iter_mut().enumerate().take(head_end) {
            *o = dot_with_history(taps, run, j, &self.hist);
        }
        // Dense interior: every tap reads inside the run. Fixed-trip tap
        // loop, independent output positions — flat and vectorizable.
        // Ascending-k accumulation matches `dot_with_history` exactly.
        for j in head_end..run.len() {
            let win = &run[j - m..=j];
            let mut acc = 0.0f32;
            for (k, &tap) in taps.iter().enumerate() {
                acc += tap * win[m - k];
            }
            out[j] = acc;
        }
        // Carry the run tail: the last `m` samples of (hist ++ run).
        if m > 0 {
            if run.len() >= m {
                self.hist.clear();
                self.hist.extend_from_slice(&run[run.len() - m..]);
            } else {
                let keep = m - run.len();
                let drop = self.hist.len().saturating_sub(keep);
                self.hist.drain(..drop);
                self.hist.extend_from_slice(run);
            }
        }
    }
}

/// Staged FIR kernel: walks the input window's presence runs, filtering
/// each through [`FirState::apply_run`]. Output durations are rewritten
/// to the grid period (like `Transform`, whose closure-based
/// `pass_filter` this operator replaces).
pub struct FirKernel {
    state: FirState,
    /// Per-run output staging, sized to one round.
    out_buf: Vec<f32>,
}

impl FirKernel {
    /// Creates a FIR kernel. `capacity` bounds one round's slots.
    ///
    /// # Panics
    /// Panics on empty taps (the builder validates first).
    pub fn new(taps: Vec<f32>, capacity: usize) -> Self {
        assert!(!taps.is_empty(), "FIR requires at least one tap");
        Self {
            state: FirState::new(taps),
            out_buf: vec![0.0; capacity],
        }
    }
}

impl Kernel for FirKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        debug_assert_eq!(input.len(), out.len());
        let period = input.shape().period();
        let len = input.len();
        let col = input.field(0);
        let mut last_hi = 0usize;
        for (lo, hi) in input.presence().iter_runs() {
            if lo > last_hi {
                // A gap precedes this run (also covers an absent round
                // start, since last_hi begins at 0).
                self.state.clear();
            }
            let buf = &mut self.out_buf[..hi - lo];
            self.state.apply_run(&col[lo..hi], buf);
            for (j, &y) in buf.iter().enumerate() {
                out.write(lo + j, &[y], period);
            }
            last_hi = hi;
        }
        if last_hi < len {
            // Trailing gap (or fully absent round): the carry dies here.
            self.state.clear();
        }
    }

    fn on_skip(&mut self) {
        self.state.clear();
    }

    fn reset(&mut self) {
        self.state.clear();
    }

    fn supports_fusion(&self) -> bool {
        true
    }

    fn take_stage(&mut self) -> Option<Box<dyn FusedStage>> {
        Some(Box::new(FusedFirStage {
            state: std::mem::replace(&mut self.state, FirState::new(vec![0.0])),
        }))
    }
}

impl std::fmt::Debug for FirKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FirKernel")
            .field("taps", &self.state.taps.len())
            .finish()
    }
}

/// Fused-stage form of [`FirKernel`]: the same run walk and the same
/// [`FirState::apply_run`], writing straight into the chain's flat output
/// column (no per-slot window writes at all).
struct FusedFirStage {
    state: FirState,
}

impl FusedStage for FusedFirStage {
    fn apply(&mut self, io: StageIo<'_>) {
        let StageIo {
            vals,
            present,
            out_vals,
            out_present,
            ..
        } = io;
        let len = vals.len();
        let mut last_hi = 0usize;
        for_each_run(present, |lo, hi| {
            if lo > last_hi {
                self.state.clear();
            }
            self.state.apply_run(&vals[lo..hi], &mut out_vals[lo..hi]);
            out_present[lo..hi].fill(true);
            last_hi = hi;
        });
        if last_hi < len {
            self.state.clear();
        }
    }

    fn on_skip(&mut self) {
        self.state.clear();
    }

    fn reset(&mut self) {
        self.state.clear();
    }

    fn resets_durations(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, events, filled};
    use crate::time::StreamShape;

    #[test]
    fn dense_fir_matches_direct_convolution() {
        let s = StreamShape::new(0, 1);
        let taps = vec![0.5f32, 0.3, 0.2];
        let x: Vec<f32> = (0..10).map(|i| (i * i) as f32 * 0.25).collect();
        let input = filled(s, 10, 0, &x);
        let mut out = empty(s, 10, 0, 1);
        let mut k = FirKernel::new(taps.clone(), 10);
        k.process(&[&input], &mut out);
        for (j, &(t, y)) in events(&out).iter().enumerate() {
            assert_eq!(t, j as i64);
            let mut want = 0.0f32;
            for (kk, &tap) in taps.iter().enumerate() {
                if kk <= j {
                    want += tap * x[j - kk];
                }
            }
            assert_eq!(y, want, "slot {j}");
        }
    }

    #[test]
    fn gap_resets_the_filter() {
        let s = StreamShape::new(0, 1);
        let taps = vec![0.5f32, 0.5];
        let mut input = filled(s, 6, 0, &[8.0, 8.0, 8.0, 0.0, 2.0, 2.0]);
        input.clear_slot(3);
        let mut out = empty(s, 6, 0, 1);
        let mut k = FirKernel::new(taps, 6);
        k.process(&[&input], &mut out);
        let ev = events(&out);
        assert_eq!(ev.len(), 5);
        // First slot after the gap must not see pre-gap samples.
        assert_eq!(ev[3], (4, 1.0)); // 0.5 * 2.0, no history
        assert_eq!(ev[4], (5, 2.0));
    }

    #[test]
    fn history_carries_across_rounds_when_run_continues() {
        let s = StreamShape::new(0, 1);
        let taps = vec![0.25f32, 0.25, 0.25, 0.25];
        let mut k = FirKernel::new(taps, 4);
        let in1 = filled(s, 4, 0, &[4.0, 4.0, 4.0, 4.0]);
        let mut out1 = empty(s, 4, 0, 1);
        k.process(&[&in1], &mut out1);
        let in2 = filled(s, 4, 4, &[4.0, 4.0, 4.0, 4.0]);
        let mut out2 = empty(s, 4, 4, 1);
        k.process(&[&in2], &mut out2);
        // Slot 4's window covers slots 1..=4 — all 4.0 — so a broken
        // carry would show up as a warm-up dip.
        assert_eq!(events(&out2)[0], (4, 4.0));
    }

    #[test]
    fn skip_clears_carry() {
        let s = StreamShape::new(0, 1);
        let mut k = FirKernel::new(vec![0.5, 0.5], 2);
        let in1 = filled(s, 2, 0, &[10.0, 10.0]);
        let mut out1 = empty(s, 2, 0, 1);
        k.process(&[&in1], &mut out1);
        k.on_skip();
        let in2 = filled(s, 2, 4, &[2.0, 2.0]);
        let mut out2 = empty(s, 2, 4, 1);
        k.process(&[&in2], &mut out2);
        assert_eq!(events(&out2)[0], (4, 1.0)); // no stale history
    }

    #[test]
    fn single_tap_is_pure_scaling() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 8, 0, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = empty(s, 8, 0, 1);
        let mut k = FirKernel::new(vec![3.0], 4);
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(0, 3.0), (2, 6.0), (4, 9.0), (6, 12.0)]);
    }
}
