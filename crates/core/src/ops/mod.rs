//! Operator kernels.
//!
//! Every temporal operator compiles to a [`Kernel`]: a unit that reads one
//! or two input [`FWindow`]s and fills one output FWindow, all covering the
//! same absolute time interval (the executor slides every window in
//! lock-step rounds after locality tracing has equalized the dimensions).
//!
//! Stateful kernels (`Shift`, `Chop`, `ClipJoin`, sliding `Aggregate`, the
//! boundary-crossing case of `Join` shown in Fig. 8) carry *constant-size*
//! state across rounds — the bounded-memory-footprint property guarantees
//! the state never grows with the data.

use crate::fuse::FusedStage;
use crate::fwindow::FWindow;

pub mod aggregate;
pub mod fir;
pub mod join;
pub mod reshape;
pub mod select;
pub mod transform;
pub mod where_shape;

/// A compiled operator.
///
/// `process` is invoked once per execution round with the input windows and
/// the output window already slid to the round's interval. Implementations
/// must not allocate in `process` (the static-memory-allocation guarantee);
/// any buffers they need are created in their constructor.
pub trait Kernel: Send {
    /// Fills `out` from `inputs`. Windows cover the same absolute interval.
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow);

    /// Called instead of `process` when targeted query processing skips a
    /// round; stateful kernels drop carried state that the gap invalidated.
    fn on_skip(&mut self) {}

    /// True if the kernel holds carried state that must be flushed into a
    /// future round (prevents the executor from skipping that round).
    fn has_pending(&self) -> bool {
        false
    }

    /// Clears all state, returning the kernel to its initial condition.
    fn reset(&mut self) {}

    /// True when [`take_stage`](Kernel::take_stage) will succeed: the
    /// kernel can run as one stage of a fused chain (unit-scale, single
    /// field in and out). The fusion pass probes every member of a
    /// candidate group before converting any of them.
    fn supports_fusion(&self) -> bool {
        false
    }

    /// Moves the kernel's internals into a [`FusedStage`] for single-pass
    /// fused execution, leaving this kernel an unusable husk (the planner
    /// discards it). Returns `None` for kernels that do not fuse; must
    /// return `Some` whenever [`supports_fusion`](Kernel::supports_fusion)
    /// is true.
    fn take_stage(&mut self) -> Option<Box<dyn FusedStage>> {
        None
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by kernel unit tests.
    use crate::fwindow::FWindow;
    use crate::time::{StreamShape, Tick};

    /// Builds a window over `[sync, sync+dim)` with the given values all
    /// present (duration = period).
    pub fn filled(shape: StreamShape, dim: Tick, sync: Tick, vals: &[f32]) -> FWindow {
        let mut w = FWindow::new(shape, dim, 1);
        w.slide_to(sync);
        assert_eq!(w.len(), vals.len(), "test window slot mismatch");
        for (i, &v) in vals.iter().enumerate() {
            w.write(i, &[v], shape.period());
        }
        w
    }

    /// Builds an empty (all-absent) window over `[sync, sync+dim)`.
    pub fn empty(shape: StreamShape, dim: Tick, sync: Tick, arity: usize) -> FWindow {
        let mut w = FWindow::new(shape, dim, arity);
        w.slide_to(sync);
        w
    }

    /// Extracts `(time, value_of_field0)` pairs of present events.
    pub fn events(w: &FWindow) -> Vec<(Tick, f32)> {
        w.iter_present()
            .map(|(i, t, _)| (t, w.field(0)[i]))
            .collect()
    }
}
