//! `Transform(w)`: user-defined window-to-window transformations — the
//! escape hatch that lets third-party numeric code (FIR filters,
//! interpolation, imputation) run inside the streaming pipeline (§6.1).

use crate::fuse::{FusedStage, StageIo};
use crate::fwindow::FWindow;
use crate::ops::Kernel;
use crate::time::Tick;

/// Borrowed view of one transform sub-window: input values with presence,
/// and output values with presence to fill.
///
/// Slot `i` of both sides corresponds to sync time `base + i * period`.
#[derive(Debug)]
pub struct TransformCtx<'a> {
    /// Sync time of slot 0.
    pub base: Tick,
    /// Event period.
    pub period: Tick,
    /// True on the first sub-window after the kernel was constructed,
    /// [`reset`](crate::ops::Kernel::reset) (executor recycled onto a new
    /// dataset), or a skipped round (targeted processing jumped a gap).
    /// Stateful closures must drop carried history when this is set — the
    /// time axis is not continuous with whatever they saw last.
    pub fresh: bool,
    /// Input values (slot-indexed, including absent slots' stale values).
    pub input: &'a [f32],
    /// Input presence, one flag per slot.
    pub present: &'a [bool],
    /// Output values to fill.
    pub output: &'a mut [f32],
    /// Output presence to fill (pre-cleared).
    pub out_present: &'a mut [bool],
}

/// The user transformation. Called once per `w`-sized sub-window.
pub type TransformFn = Box<dyn FnMut(TransformCtx<'_>) + Send>;

/// `Transform(w)` kernel: slices the round into `w`-tick sub-windows and
/// applies the user function to each. Input and output must share the same
/// grid and be single-field (arity 1).
pub struct TransformKernel {
    window: Tick,
    f: TransformFn,
    in_flags: Vec<bool>,
    out_vals: Vec<f32>,
    out_flags: Vec<bool>,
    fresh: bool,
}

impl TransformKernel {
    /// Creates a transform kernel over `window`-tick sub-windows for a
    /// stream of period `period`. `capacity` bounds one round's slots.
    pub fn new(window: Tick, period: Tick, capacity: usize, f: TransformFn) -> Self {
        let sub = (window / period) as usize;
        Self {
            window,
            f,
            in_flags: vec![false; sub.max(capacity)],
            out_vals: vec![0.0; sub.max(capacity)],
            out_flags: vec![false; sub.max(capacity)],
            fresh: true,
        }
    }
}

impl Kernel for TransformKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        let period = input.shape().period();
        let sub = (self.window / period) as usize;
        debug_assert!(sub > 0);
        let mut start = 0usize;
        while start < input.len() {
            let end = (start + sub).min(input.len());
            let n = end - start;
            for i in 0..n {
                self.in_flags[i] = input.is_present(start + i);
                self.out_flags[i] = false;
                self.out_vals[i] = 0.0;
            }
            (self.f)(TransformCtx {
                base: input.slot_time(start),
                period,
                fresh: self.fresh,
                input: &input.field(0)[start..end],
                present: &self.in_flags[..n],
                output: &mut self.out_vals[..n],
                out_present: &mut self.out_flags[..n],
            });
            self.fresh = false;
            for i in 0..n {
                if self.out_flags[i] {
                    out.write(start + i, &[self.out_vals[i]], period);
                }
            }
            start = end;
        }
    }

    fn on_skip(&mut self) {
        // A skipped round breaks time continuity for the closure.
        self.fresh = true;
    }

    fn reset(&mut self) {
        self.fresh = true;
    }

    fn supports_fusion(&self) -> bool {
        true
    }

    fn take_stage(&mut self) -> Option<Box<dyn FusedStage>> {
        Some(Box::new(FusedTransformStage {
            window: self.window,
            f: std::mem::replace(&mut self.f, Box::new(|_| {})),
            fresh: self.fresh,
        }))
    }
}

/// Fused-stage form of [`TransformKernel`]: the identical sub-window loop
/// (same `TransformCtx` slices, same zeroed output scratch, same `fresh`
/// transitions), but reading/writing the fused chain's flat columns
/// instead of copying into kernel-private scratch.
struct FusedTransformStage {
    window: Tick,
    f: TransformFn,
    fresh: bool,
}

impl FusedStage for FusedTransformStage {
    fn apply(&mut self, io: StageIo<'_>) {
        let StageIo {
            base,
            period,
            vals,
            present,
            out_vals,
            out_present,
        } = io;
        let sub = (self.window / period) as usize;
        debug_assert!(sub > 0);
        let len = vals.len();
        let mut start = 0usize;
        while start < len {
            let end = (start + sub).min(len);
            // Staged kernels zero their output scratch per sub-window;
            // closures that set presence without writing must see 0.0.
            out_vals[start..end].fill(0.0);
            (self.f)(TransformCtx {
                base: base + start as Tick * period,
                period,
                fresh: self.fresh,
                input: &vals[start..end],
                present: &present[start..end],
                output: &mut out_vals[start..end],
                out_present: &mut out_present[start..end],
            });
            self.fresh = false;
            start = end;
        }
    }

    fn on_skip(&mut self) {
        self.fresh = true;
    }

    fn reset(&mut self) {
        self.fresh = true;
    }

    fn resets_durations(&self) -> bool {
        true
    }
}

impl std::fmt::Debug for TransformKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformKernel")
            .field("window", &self.window)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, events, filled};
    use crate::time::StreamShape;

    #[test]
    fn identity_transform_passes_through() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 8, 0, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = empty(s, 8, 0, 1);
        let mut k = TransformKernel::new(
            4,
            2,
            4,
            Box::new(|ctx: TransformCtx<'_>| {
                for i in 0..ctx.input.len() {
                    ctx.output[i] = ctx.input[i];
                    ctx.out_present[i] = ctx.present[i];
                }
            }),
        );
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(0, 1.0), (2, 2.0), (4, 3.0), (6, 4.0)]);
    }

    #[test]
    fn windowed_reverse_respects_subwindow_boundaries() {
        let s = StreamShape::new(0, 1);
        let input = filled(s, 4, 0, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = empty(s, 4, 0, 1);
        let mut k = TransformKernel::new(
            2,
            1,
            4,
            Box::new(|ctx: TransformCtx<'_>| {
                let n = ctx.input.len();
                for i in 0..n {
                    ctx.output[i] = ctx.input[n - 1 - i];
                    ctx.out_present[i] = true;
                }
            }),
        );
        k.process(&[&input], &mut out);
        assert_eq!(out.field(0), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn transform_can_fill_gaps() {
        // Linear fill of absent slots from neighbours — the Resample /
        // FillMean building block.
        let s = StreamShape::new(0, 1);
        let mut input = filled(s, 4, 0, &[1.0, 0.0, 0.0, 4.0]);
        input.clear_slot(1);
        input.clear_slot(2);
        let mut out = empty(s, 4, 0, 1);
        let mut k = TransformKernel::new(
            4,
            1,
            4,
            Box::new(|ctx: TransformCtx<'_>| {
                // Fill absent slots by linear interpolation between the
                // nearest present neighbours.
                let n = ctx.input.len();
                for i in 0..n {
                    if ctx.present[i] {
                        ctx.output[i] = ctx.input[i];
                        ctx.out_present[i] = true;
                        continue;
                    }
                    let prev = (0..i).rev().find(|&j| ctx.present[j]);
                    let next = (i + 1..n).find(|&j| ctx.present[j]);
                    if let (Some(a), Some(b)) = (prev, next) {
                        let frac = (i - a) as f32 / (b - a) as f32;
                        ctx.output[i] = ctx.input[a] + frac * (ctx.input[b] - ctx.input[a]);
                        ctx.out_present[i] = true;
                    }
                }
            }),
        );
        k.process(&[&input], &mut out);
        assert_eq!(out.present_count(), 4);
        assert_eq!(out.field(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn partial_tail_window_is_processed() {
        let s = StreamShape::new(0, 1);
        let input = filled(s, 3, 0, &[1.0, 2.0, 3.0]);
        let mut out = empty(s, 3, 0, 1);
        let mut k = TransformKernel::new(
            2,
            1,
            3,
            Box::new(|ctx: TransformCtx<'_>| {
                for i in 0..ctx.input.len() {
                    ctx.output[i] = ctx.input[i] * 2.0;
                    ctx.out_present[i] = ctx.present[i];
                }
            }),
        );
        k.process(&[&input], &mut out);
        assert_eq!(out.field(0), &[2.0, 4.0, 6.0]);
    }
}
