//! `Select` (payload projection) and `Where` (predicate filter) kernels —
//! the stateless elementwise operators.

use crate::fuse::{for_each_run, FusedStage, StageIo};
use crate::fwindow::{FWindow, MAX_ARITY};
use crate::ops::Kernel;

/// Projection function applied to each present event's payload.
pub type SelectFn = Box<dyn FnMut(&[f32], &mut [f32]) + Send>;

/// `Select`: applies a user projection to every present event. Grid,
/// presence, and durations pass through unchanged; only the payload (and
/// possibly its arity) changes.
pub struct SelectKernel {
    f: SelectFn,
    in_arity: usize,
    out_arity: usize,
    in_buf: [f32; MAX_ARITY],
    out_buf: [f32; MAX_ARITY],
}

impl SelectKernel {
    /// Creates a select kernel with the given in/out arity and projection.
    pub fn new(in_arity: usize, out_arity: usize, f: SelectFn) -> Self {
        Self {
            f,
            in_arity,
            out_arity,
            in_buf: [0.0; MAX_ARITY],
            out_buf: [0.0; MAX_ARITY],
        }
    }
}

impl Kernel for SelectKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        debug_assert_eq!(input.len(), out.len());
        for i in 0..input.len() {
            if !input.is_present(i) {
                continue;
            }
            input.read(i, &mut self.in_buf[..self.in_arity]);
            (self.f)(
                &self.in_buf[..self.in_arity],
                &mut self.out_buf[..self.out_arity],
            );
            out.write(i, &self.out_buf[..self.out_arity], input.duration(i));
        }
    }

    fn supports_fusion(&self) -> bool {
        // The fused scratch is single-field; arity-changing selects stay
        // staged.
        self.in_arity == 1 && self.out_arity == 1
    }

    fn take_stage(&mut self) -> Option<Box<dyn FusedStage>> {
        if !self.supports_fusion() {
            return None;
        }
        Some(Box::new(FusedSelectStage {
            f: std::mem::replace(&mut self.f, Box::new(|_, _| {})),
            in_buf: self.in_buf,
            out_buf: self.out_buf,
        }))
    }
}

/// Fused-stage form of a single-field [`SelectKernel`]: same closure, same
/// per-present-slot invocation order, but over flat scratch runs. The
/// `out_buf` persists across calls exactly like the staged kernel's, so
/// closures that leave outputs unwritten observe identical values.
struct FusedSelectStage {
    f: SelectFn,
    in_buf: [f32; MAX_ARITY],
    out_buf: [f32; MAX_ARITY],
}

impl FusedStage for FusedSelectStage {
    fn apply(&mut self, io: StageIo<'_>) {
        let StageIo {
            vals,
            present,
            out_vals,
            out_present,
            ..
        } = io;
        for_each_run(present, |lo, hi| {
            for i in lo..hi {
                self.in_buf[0] = vals[i];
                (self.f)(&self.in_buf[..1], &mut self.out_buf[..1]);
                out_vals[i] = self.out_buf[0];
            }
            out_present[lo..hi].fill(true);
        });
    }
}

impl std::fmt::Debug for SelectKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectKernel")
            .field("in_arity", &self.in_arity)
            .field("out_arity", &self.out_arity)
            .finish()
    }
}

/// Predicate applied to each present event's payload.
pub type WhereFn = Box<dyn FnMut(&[f32]) -> bool + Send>;

/// `Where`: copies events through, marking those failing the predicate
/// absent. Absence is recorded in the bitvector — the columnar buffers are
/// not compacted, preserving index ↔ sync-time alignment (§6.2).
pub struct WhereKernel {
    pred: WhereFn,
    arity: usize,
    buf: [f32; MAX_ARITY],
}

impl WhereKernel {
    /// Creates a where kernel over `arity`-wide payloads.
    pub fn new(arity: usize, pred: WhereFn) -> Self {
        Self {
            pred,
            arity,
            buf: [0.0; MAX_ARITY],
        }
    }
}

impl Kernel for WhereKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        debug_assert_eq!(input.len(), out.len());
        for i in 0..input.len() {
            if !input.is_present(i) {
                continue;
            }
            input.read(i, &mut self.buf[..self.arity]);
            if (self.pred)(&self.buf[..self.arity]) {
                out.write(i, &self.buf[..self.arity], input.duration(i));
            }
        }
    }

    fn supports_fusion(&self) -> bool {
        self.arity == 1
    }

    fn take_stage(&mut self) -> Option<Box<dyn FusedStage>> {
        if !self.supports_fusion() {
            return None;
        }
        Some(Box::new(FusedWhereStage {
            pred: std::mem::replace(&mut self.pred, Box::new(|_| false)),
            buf: self.buf,
        }))
    }
}

/// Fused-stage form of a single-field [`WhereKernel`]: the same predicate
/// called in the same order, with surviving values copied through the same
/// staging buffer.
struct FusedWhereStage {
    pred: WhereFn,
    buf: [f32; MAX_ARITY],
}

impl FusedStage for FusedWhereStage {
    fn apply(&mut self, io: StageIo<'_>) {
        let StageIo {
            vals,
            present,
            out_vals,
            out_present,
            ..
        } = io;
        for_each_run(present, |lo, hi| {
            for i in lo..hi {
                self.buf[0] = vals[i];
                if (self.pred)(&self.buf[..1]) {
                    out_vals[i] = self.buf[0];
                    out_present[i] = true;
                }
            }
        });
    }
}

impl std::fmt::Debug for WhereKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WhereKernel")
            .field("arity", &self.arity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, events, filled};
    use crate::time::StreamShape;

    #[test]
    fn select_projects_payload() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 10, 0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut out = empty(s, 10, 0, 1);
        let mut k = SelectKernel::new(1, 1, Box::new(|i, o| o[0] = i[0] * 10.0));
        k.process(&[&input], &mut out);
        assert_eq!(
            events(&out),
            vec![(0, 10.0), (2, 20.0), (4, 30.0), (6, 40.0), (8, 50.0)]
        );
    }

    #[test]
    fn select_skips_absent_events() {
        let s = StreamShape::new(0, 2);
        let mut input = filled(s, 10, 0, &[1.0; 5]);
        input.clear_slot(2);
        let mut out = empty(s, 10, 0, 1);
        let mut k = SelectKernel::new(1, 1, Box::new(|i, o| o[0] = i[0]));
        k.process(&[&input], &mut out);
        assert_eq!(out.present_count(), 4);
        assert!(!out.is_present(2));
    }

    #[test]
    fn select_can_widen_arity() {
        let s = StreamShape::new(0, 1);
        let input = filled(s, 3, 0, &[1.0, 2.0, 3.0]);
        let mut out = empty(s, 3, 0, 2);
        let mut k = SelectKernel::new(
            1,
            2,
            Box::new(|i, o| {
                o[0] = i[0];
                o[1] = -i[0];
            }),
        );
        k.process(&[&input], &mut out);
        assert_eq!(out.field(1), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn where_filters_by_predicate() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 10, 0, &[1.0, -2.0, 3.0, -4.0, 5.0]);
        let mut out = empty(s, 10, 0, 1);
        let mut k = WhereKernel::new(1, Box::new(|v| v[0] > 0.0));
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(0, 1.0), (4, 3.0), (8, 5.0)]);
    }

    #[test]
    fn where_preserves_durations() {
        let s = StreamShape::new(0, 2);
        let mut input = filled(s, 10, 0, &[1.0; 5]);
        input.set_duration(0, 6);
        let mut out = empty(s, 10, 0, 1);
        let mut k = WhereKernel::new(1, Box::new(|_| true));
        k.process(&[&input], &mut out);
        assert_eq!(out.duration(0), 6);
    }
}
