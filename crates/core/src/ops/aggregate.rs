//! Windowed aggregation: `Aggregate(w, p)` applies an aggregate function to
//! `w`-sized windows with stride `p`.
//!
//! *Tumbling* windows (`w == p`) are stateless: locality tracing guarantees
//! the FWindow dimension is a multiple of `w`, so every aggregation window
//! lies inside one round. Output events sit at each window's start and
//! aggregate input events in `[t, t + w)` — exactly the
//! `TumblingWindow(100).Mean()` of Listing 1.
//!
//! *Sliding* windows (`w > p`, `SlidingWindow` in the query language) are
//! stateful: the kernel carries a constant-size ring of the last `w / p_in`
//! input slots across rounds and emits, at every output grid point `t`, the
//! aggregate of input events in `(t - w, t]` — trailing-window semantics.

use crate::fuse::{FusedStage, StageIo};
use crate::fwindow::FWindow;
use crate::ops::Kernel;
use crate::time::Tick;

/// Built-in aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of present values.
    Sum,
    /// Arithmetic mean of present values.
    Mean,
    /// Maximum present value.
    Max,
    /// Minimum present value.
    Min,
    /// Number of present events.
    Count,
    /// Population standard deviation of present values.
    Std,
}

impl AggKind {
    /// Folds a slice of `(value, present)` pairs into the aggregate, or
    /// `None` when no event is present.
    pub fn fold(self, items: impl Iterator<Item = f32> + Clone) -> Option<f32> {
        let mut n = 0u32;
        match self {
            AggKind::Sum | AggKind::Mean | AggKind::Count | AggKind::Std => {
                let mut sum = 0.0f64;
                let mut sumsq = 0.0f64;
                for v in items {
                    sum += v as f64;
                    sumsq += (v as f64) * (v as f64);
                    n += 1;
                }
                if n == 0 {
                    return None;
                }
                Some(match self {
                    AggKind::Sum => sum as f32,
                    AggKind::Count => n as f32,
                    AggKind::Mean => (sum / n as f64) as f32,
                    AggKind::Std => {
                        let mean = sum / n as f64;
                        ((sumsq / n as f64 - mean * mean).max(0.0)).sqrt() as f32
                    }
                    _ => unreachable!(),
                })
            }
            AggKind::Max => {
                let mut m = f32::NEG_INFINITY;
                for v in items {
                    m = m.max(v);
                    n += 1;
                }
                (n > 0).then_some(m)
            }
            AggKind::Min => {
                let mut m = f32::INFINITY;
                for v in items {
                    m = m.min(v);
                    n += 1;
                }
                (n > 0).then_some(m)
            }
        }
    }
}

/// Tumbling-window aggregate kernel (`w == p`): stateless.
#[derive(Debug)]
pub struct TumblingAggKernel {
    kind: AggKind,
    window: Tick,
}

impl TumblingAggKernel {
    /// Creates a tumbling aggregate over `window`-tick windows.
    pub fn new(kind: AggKind, window: Tick) -> Self {
        Self { kind, window }
    }
}

impl Kernel for TumblingAggKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        for o in 0..out.len() {
            let t = out.slot_time(o);
            // Aggregate input events in [t, t + window).
            let lo = match input.slot_of(input.shape().align_up(t)) {
                Some(i) => i,
                None => continue,
            };
            let period = input.shape().period();
            let count = ((self.window + period - 1) / period) as usize;
            let hi = (lo + count).min(input.len());
            let vals = (lo..hi)
                .filter(|&i| input.is_present(i) && input.slot_time(i) < t + self.window)
                .map(|i| input.field(0)[i]);
            if let Some(v) = self.kind.fold(vals) {
                out.write(o, &[v], self.window.min(out.dim()));
            }
        }
    }
}

/// Sliding-window aggregate kernel (`w > p`): carries a constant-size ring
/// of recent input slots across rounds (trailing `(t - w, t]` windows).
#[derive(Debug)]
pub struct SlidingAggKernel {
    kind: AggKind,
    window: Tick,
    /// Ring of the most recent `ring_len` input slots: `(time, value,
    /// present)`. Capacity fixed at construction — bounded memory.
    ring: std::collections::VecDeque<(Tick, f32, bool)>,
    ring_len: usize,
}

impl SlidingAggKernel {
    /// Creates a sliding aggregate with trailing window `window` over an
    /// input stream of period `in_period`.
    pub fn new(kind: AggKind, window: Tick, in_period: Tick) -> Self {
        let ring_len = (window / in_period).max(1) as usize;
        Self {
            kind,
            window,
            ring: std::collections::VecDeque::with_capacity(ring_len + 1),
            ring_len,
        }
    }

    fn push(&mut self, t: Tick, v: f32, present: bool) {
        if self.ring.len() == self.ring_len {
            self.ring.pop_front();
        }
        self.ring.push_back((t, v, present));
    }
}

impl Kernel for SlidingAggKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        let mut next_in = 0usize;
        for o in 0..out.len() {
            let t = out.slot_time(o);
            // Feed the ring all input slots with time <= t.
            while next_in < input.len() && input.slot_time(next_in) <= t {
                self.push(
                    input.slot_time(next_in),
                    input.field(0)[next_in],
                    input.is_present(next_in),
                );
                next_in += 1;
            }
            let lo = t - self.window;
            let vals = self
                .ring
                .iter()
                .filter(|&&(ti, _, p)| p && ti > lo && ti <= t)
                .map(|&(_, v, _)| v);
            if let Some(v) = self.kind.fold(vals) {
                out.write(o, &[v], out.shape().period());
            }
        }
        // Absorb the input tail past the last output slot.
        while next_in < input.len() {
            self.push(
                input.slot_time(next_in),
                input.field(0)[next_in],
                input.is_present(next_in),
            );
            next_in += 1;
        }
    }

    fn on_skip(&mut self) {
        self.ring.clear();
    }

    fn reset(&mut self) {
        self.ring.clear();
    }

    fn supports_fusion(&self) -> bool {
        // Fusion eligibility (stride == input period, same grid) is
        // decided graph-side; any sliding kernel can run as a stage.
        true
    }

    fn take_stage(&mut self) -> Option<Box<dyn FusedStage>> {
        let mut ring = std::collections::VecDeque::with_capacity(self.ring_len + 1);
        ring.extend(self.ring.drain(..));
        Some(Box::new(FusedSlidingStage {
            kind: self.kind,
            window: self.window,
            ring,
            ring_len: self.ring_len,
        }))
    }
}

/// Fused-stage form of [`SlidingAggKernel`], valid only on same-grid
/// chains (output stride == input period), which the fusion pass
/// guarantees. Steady-state slots — where the whole trailing window lies
/// inside the current round — fold a flat slice directly, skipping the
/// ring entirely; the item sequence and [`AggKind::fold`] accumulation
/// order are identical to the staged ring walk, so results are
/// bit-identical. Only the first `ring_len - 1` slots of a round (window
/// reaching back into the previous round) go through the carried ring.
struct FusedSlidingStage {
    kind: AggKind,
    window: Tick,
    ring: std::collections::VecDeque<(Tick, f32, bool)>,
    ring_len: usize,
}

impl FusedSlidingStage {
    fn push(&mut self, t: Tick, v: f32, present: bool) {
        if self.ring.len() == self.ring_len {
            self.ring.pop_front();
        }
        self.ring.push_back((t, v, present));
    }
}

impl FusedStage for FusedSlidingStage {
    fn apply(&mut self, io: StageIo<'_>) {
        let StageIo {
            base,
            period,
            vals,
            present,
            out_vals,
            out_present,
            ..
        } = io;
        let len = vals.len();
        let rl = self.ring_len;
        let kind = self.kind;
        // Present-slot count of the trailing window, maintained in O(1)
        // per slot; picks a branch-free fold over the flat value slice
        // when the window is fully present (the overwhelmingly common
        // case on dense stretches). `fold` visits the same items in the
        // same order either way, so results stay bit-identical.
        let mut live = 0usize;
        for o in 0..len {
            live += usize::from(present[o]);
            if o >= rl {
                live -= usize::from(present[o - rl]);
            }
            let t = base + o as Tick * period;
            let folded = if o + 1 >= rl {
                // Flat path: the trailing window (t - w, t] is exactly
                // input slots (o - rl, o]; carried ring items are all at
                // or before t - w, so the staged filter would drop them.
                let lo = o + 1 - rl;
                if live == rl {
                    kind.fold(vals[lo..=o].iter().copied())
                } else if live == 0 {
                    None
                } else {
                    kind.fold((lo..=o).filter(|&i| present[i]).map(|i| vals[i]))
                }
            } else {
                // Round head: the window reaches into the carried ring.
                // Same push-then-filter walk as the staged kernel.
                self.push(t, vals[o], present[o]);
                let w = self.window;
                kind.fold(
                    self.ring
                        .iter()
                        .filter(|&&(ti, _, p)| p && ti > t - w && ti <= t)
                        .map(|&(_, v, _)| v),
                )
            };
            if let Some(v) = folded {
                out_vals[o] = v;
                out_present[o] = true;
            }
        }
        // Carry the last `ring_len` slots into the next round. When the
        // round was shorter than the ring, the head path above already
        // pushed every slot on top of the older carried items.
        if len >= rl {
            self.ring.clear();
            for i in len - rl..len {
                self.ring
                    .push_back((base + i as Tick * period, vals[i], present[i]));
            }
        }
    }

    fn on_skip(&mut self) {
        self.ring.clear();
    }

    fn reset(&mut self) {
        self.ring.clear();
    }

    fn resets_durations(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, events, filled};
    use crate::time::StreamShape;

    #[test]
    fn agg_kind_folds() {
        let v = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(AggKind::Sum.fold(v.iter().copied()), Some(10.0));
        assert_eq!(AggKind::Mean.fold(v.iter().copied()), Some(2.5));
        assert_eq!(AggKind::Max.fold(v.iter().copied()), Some(4.0));
        assert_eq!(AggKind::Min.fold(v.iter().copied()), Some(1.0));
        assert_eq!(AggKind::Count.fold(v.iter().copied()), Some(4.0));
        let std = AggKind::Std.fold(v.iter().copied()).unwrap();
        assert!((std - 1.118034).abs() < 1e-5);
        assert_eq!(AggKind::Sum.fold(std::iter::empty()), None);
        assert_eq!(AggKind::Max.fold(std::iter::empty()), None);
    }

    #[test]
    fn tumbling_mean_matches_listing1_shape() {
        // Input (0,2), window 10 -> output (0,10): one mean per 10 ticks.
        let s_in = StreamShape::new(0, 2);
        let s_out = StreamShape::new(0, 10);
        let input = filled(
            s_in,
            20,
            0,
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
        );
        let mut out = empty(s_out, 20, 0, 1);
        let mut k = TumblingAggKernel::new(AggKind::Mean, 10);
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(0, 3.0), (10, 8.0)]);
    }

    #[test]
    fn tumbling_ignores_absent_and_goes_absent_when_empty() {
        let s_in = StreamShape::new(0, 2);
        let s_out = StreamShape::new(0, 10);
        let mut input = filled(s_in, 20, 0, &[1.0; 10]);
        for i in 0..5 {
            input.clear_slot(i); // first window fully absent
        }
        input.clear_slot(5);
        let mut out = empty(s_out, 20, 0, 1);
        let mut k = TumblingAggKernel::new(AggKind::Sum, 10);
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(10, 4.0)]); // 4 present events remain
    }

    #[test]
    fn sliding_mean_trails_across_rounds() {
        let s = StreamShape::new(0, 1);
        let mut k = SlidingAggKernel::new(AggKind::Mean, 4, 1);
        // Round 1: [0, 4) values 1..4
        let in1 = filled(s, 4, 0, &[1.0, 2.0, 3.0, 4.0]);
        let mut out1 = empty(s, 4, 0, 1);
        k.process(&[&in1], &mut out1);
        // t=3 window (-1,3] -> values at 0..3 -> mean of 1,2,3,4 = 2.5
        assert_eq!(events(&out1)[3], (3, 2.5));
        // Round 2: [4, 8) values 5..8; t=4 window (0,4] -> 2,3,4,5 = 3.5
        let in2 = filled(s, 4, 4, &[5.0, 6.0, 7.0, 8.0]);
        let mut out2 = empty(s, 4, 4, 1);
        k.process(&[&in2], &mut out2);
        assert_eq!(events(&out2)[0], (4, 3.5));
    }

    #[test]
    fn sliding_ring_is_bounded() {
        let mut k = SlidingAggKernel::new(AggKind::Sum, 8, 1);
        let s = StreamShape::new(0, 1);
        for r in 0..10 {
            let input = filled(s, 16, r * 16, &[1.0; 16]);
            let mut out = empty(s, 16, r * 16, 1);
            k.process(&[&input], &mut out);
            assert!(k.ring.len() <= 8);
        }
    }

    #[test]
    fn sliding_skip_clears_state() {
        let s = StreamShape::new(0, 1);
        let mut k = SlidingAggKernel::new(AggKind::Sum, 4, 1);
        let in1 = filled(s, 4, 0, &[10.0; 4]);
        let mut out1 = empty(s, 4, 0, 1);
        k.process(&[&in1], &mut out1);
        k.on_skip();
        let in2 = filled(s, 4, 8, &[1.0; 4]);
        let mut out2 = empty(s, 4, 8, 1);
        k.process(&[&in2], &mut out2);
        // First output only sees the new round's first value.
        assert_eq!(events(&out2)[0], (8, 1.0));
    }
}
