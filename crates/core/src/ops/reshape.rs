//! Grid-reshaping operators: `Shift`, `Chop`, `AlterPeriod`,
//! `AlterDuration`.

use std::collections::VecDeque;

use crate::fwindow::{FWindow, MAX_ARITY};
use crate::ops::Kernel;
use crate::time::{align_up, Tick};

/// `Shift(k)`: moves every event's sync time forward by `k` ticks.
///
/// Stateful (Table 2): events whose shifted time lands beyond the current
/// round spill into a queue bounded by `ceil(k / period)` entries — a
/// statically known constant, preserving the bounded-memory property.
pub struct ShiftKernel {
    delta: Tick,
    arity: usize,
    /// Spilled events: (shifted_time, duration, payload).
    pending: VecDeque<(Tick, Tick, [f32; MAX_ARITY])>,
    buf: [f32; MAX_ARITY],
}

impl ShiftKernel {
    /// Creates a shift kernel. `delta` must be non-negative; `in_period`
    /// sizes the spill queue.
    pub fn new(delta: Tick, arity: usize, in_period: Tick) -> Self {
        let cap = (delta / in_period + 2) as usize;
        Self {
            delta,
            arity,
            pending: VecDeque::with_capacity(cap),
            buf: [0.0; MAX_ARITY],
        }
    }
}

impl Kernel for ShiftKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        // Drain spilled events that now fall inside the round.
        while let Some(&(t, d, payload)) = self.pending.front() {
            match out.slot_of(t) {
                Some(j) => {
                    out.write(j, &payload[..self.arity], d);
                    self.pending.pop_front();
                }
                None if t >= out.end() => break,
                None => {
                    // The skipped rounds passed this event by; drop it.
                    self.pending.pop_front();
                }
            }
        }
        let input = inputs[0];
        for (i, t, d) in input.iter_present() {
            let shifted = t + self.delta;
            input.read(i, &mut self.buf[..self.arity]);
            match out.slot_of(shifted) {
                Some(j) => out.write(j, &self.buf[..self.arity], d),
                None => {
                    let mut payload = [0.0; MAX_ARITY];
                    payload[..self.arity].copy_from_slice(&self.buf[..self.arity]);
                    self.pending.push_back((shifted, d, payload));
                }
            }
        }
    }

    fn on_skip(&mut self) {
        self.pending.clear();
    }

    fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    fn reset(&mut self) {
        self.pending.clear();
    }
}

impl std::fmt::Debug for ShiftKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShiftKernel")
            .field("delta", &self.delta)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// `Chop(b)`: splits each event's active interval on `b`-aligned boundary
/// grid points, emitting one event per segment.
///
/// Stateful: a segment starting beyond the current round is carried
/// (at most one event — constant state).
pub struct ChopKernel {
    boundary: Tick,
    arity: usize,
    /// Carried remainder: (next_segment_start, event_end, payload).
    pending: Option<(Tick, Tick, [f32; MAX_ARITY])>,
    buf: [f32; MAX_ARITY],
}

impl ChopKernel {
    /// Creates a chop kernel splitting on multiples of `boundary`.
    pub fn new(boundary: Tick, arity: usize) -> Self {
        Self {
            boundary,
            arity,
            pending: None,
            buf: [0.0; MAX_ARITY],
        }
    }

    /// Emits segments of `[start, end)` into `out`; returns the carried
    /// remainder if the segments extend past the round.
    fn emit_segments(
        &self,
        out: &mut FWindow,
        mut start: Tick,
        end: Tick,
        payload: &[f32],
    ) -> Option<Tick> {
        while start < end {
            let seg_end = (align_up(start + 1, 0, self.boundary)).min(end);
            match out.slot_of(start) {
                Some(j) => out.write(j, payload, seg_end - start),
                None if start >= out.end() => return Some(start),
                None => {} // off-grid start cannot happen: starts lie on gcd grid
            }
            start = seg_end;
        }
        None
    }
}

impl Kernel for ChopKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        if let Some((start, end, payload)) = self.pending.take() {
            let p = payload;
            if let Some(rem) = self.emit_segments(out, start, end, &p[..self.arity]) {
                self.pending = Some((rem, end, p));
            }
        }
        let input = inputs[0];
        for (i, t, d) in input.iter_present() {
            input.read(i, &mut self.buf[..self.arity]);
            let mut payload = [0.0; MAX_ARITY];
            payload[..self.arity].copy_from_slice(&self.buf[..self.arity]);
            if let Some(rem) = self.emit_segments(out, t, t + d, &payload[..self.arity]) {
                self.pending = Some((rem, t + d, payload));
            }
        }
    }

    fn on_skip(&mut self) {
        self.pending = None;
    }

    fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    fn reset(&mut self) {
        self.pending = None;
    }
}

impl std::fmt::Debug for ChopKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChopKernel")
            .field("boundary", &self.boundary)
            .finish()
    }
}

/// `AlterPeriod(p)`: re-grids the stream to a new period. Sync times are
/// unchanged; output slots with no input grid point are absent (upsampling
/// leaves holes a later `Transform`/fill interpolates; downsampling keeps
/// only aligned events).
#[derive(Debug)]
pub struct AlterPeriodKernel {
    arity: usize,
}

impl AlterPeriodKernel {
    /// Creates an alter-period kernel.
    pub fn new(arity: usize) -> Self {
        Self { arity }
    }
}

impl Kernel for AlterPeriodKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        let mut buf = [0.0; MAX_ARITY];
        for j in 0..out.len() {
            let t = out.slot_time(j);
            if let Some(i) = input.slot_of(t) {
                if input.is_present(i) {
                    input.read(i, &mut buf[..self.arity]);
                    out.write(j, &buf[..self.arity], out.shape().period());
                }
            }
        }
    }
}

/// `AlterDuration(d)`: rewrites every event's active lifetime.
#[derive(Debug)]
pub struct AlterDurationKernel {
    duration: Tick,
    arity: usize,
}

impl AlterDurationKernel {
    /// Creates an alter-duration kernel setting every duration to
    /// `duration`.
    pub fn new(duration: Tick, arity: usize) -> Self {
        Self { duration, arity }
    }
}

impl Kernel for AlterDurationKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let input = inputs[0];
        let mut buf = [0.0; MAX_ARITY];
        for (i, _, _) in input.iter_present() {
            input.read(i, &mut buf[..self.arity]);
            out.write(i, &buf[..self.arity], self.duration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, events, filled};
    use crate::time::StreamShape;

    #[test]
    fn shift_moves_events_forward_fig5b() {
        let s = StreamShape::new(0, 2);
        let so = StreamShape::new(4, 2);
        let input = filled(s, 10, 0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut out = empty(so, 10, 0, 1);
        let mut k = ShiftKernel::new(4, 1, 2);
        k.process(&[&input], &mut out);
        // Events at 0,2,4,6,8 -> 4,6,8 visible; 10,12 spilled.
        assert_eq!(events(&out), vec![(4, 1.0), (6, 2.0), (8, 3.0)]);
        assert!(k.has_pending());
        let in2 = empty(s, 10, 10, 1);
        let mut out2 = empty(so, 10, 10, 1);
        k.process(&[&in2], &mut out2);
        assert_eq!(events(&out2), vec![(10, 4.0), (12, 5.0)]);
        assert!(!k.has_pending());
    }

    #[test]
    fn shift_zero_is_identity() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 10, 0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut out = empty(s, 10, 0, 1);
        let mut k = ShiftKernel::new(0, 1, 2);
        k.process(&[&input], &mut out);
        assert_eq!(out.present_count(), 5);
        assert!(!k.has_pending());
    }

    #[test]
    fn shift_skip_drops_spill() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 10, 0, &[1.0; 5]);
        let mut out = empty(StreamShape::new(6, 2), 10, 0, 1);
        let mut k = ShiftKernel::new(6, 1, 2);
        k.process(&[&input], &mut out);
        assert!(k.has_pending());
        k.on_skip();
        assert!(!k.has_pending());
    }

    #[test]
    fn chop_splits_long_duration_on_boundaries() {
        // One event [0, 10) chopped on boundary 4 -> [0,4),[4,8),[8,10).
        let s = StreamShape::new(0, 2);
        let mut input = empty(s, 12, 0, 1);
        input.write(0, &[7.0], 10);
        let mut out = empty(s, 12, 0, 1);
        let mut k = ChopKernel::new(4, 1);
        k.process(&[&input], &mut out);
        let evs: Vec<_> = out.iter_present().collect();
        assert_eq!(evs, vec![(0, 0, 4), (2, 4, 4), (4, 8, 2)]);
        assert_eq!(out.field(0)[0], 7.0);
        assert_eq!(out.field(0)[4], 7.0);
    }

    #[test]
    fn chop_carries_across_rounds() {
        let s = StreamShape::new(0, 2);
        let mut input = empty(s, 8, 0, 1);
        input.write(3, &[5.0], 8); // [6, 14) crosses the round end at 8
        let mut out = empty(s, 8, 0, 1);
        let mut k = ChopKernel::new(4, 1);
        k.process(&[&input], &mut out);
        // Segment [6,8) emitted; remainder [8,14) pending.
        assert_eq!(out.iter_present().collect::<Vec<_>>(), vec![(3, 6, 2)]);
        assert!(k.has_pending());
        let in2 = empty(s, 8, 8, 1);
        let mut out2 = empty(s, 8, 8, 1);
        k.process(&[&in2], &mut out2);
        assert_eq!(
            out2.iter_present().collect::<Vec<_>>(),
            vec![(0, 8, 4), (2, 12, 2)]
        );
        assert!(!k.has_pending());
    }

    #[test]
    fn chop_noop_on_already_aligned_events() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 8, 0, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = empty(s, 8, 0, 1);
        let mut k = ChopKernel::new(2, 1);
        k.process(&[&input], &mut out);
        assert_eq!(out.present_count(), 4);
        assert_eq!(out.duration(0), 2);
    }

    #[test]
    fn alter_period_upsample_leaves_holes() {
        // (0,4) regridded to (0,2): every second slot absent.
        let s_in = StreamShape::new(0, 4);
        let s_out = StreamShape::new(0, 2);
        let input = filled(s_in, 8, 0, &[1.0, 2.0]);
        let mut out = empty(s_out, 8, 0, 1);
        let mut k = AlterPeriodKernel::new(1);
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(0, 1.0), (4, 2.0)]);
        assert!(!out.is_present(1));
        assert!(!out.is_present(3));
    }

    #[test]
    fn alter_period_downsample_keeps_aligned() {
        let s_in = StreamShape::new(0, 2);
        let s_out = StreamShape::new(0, 4);
        let input = filled(s_in, 8, 0, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = empty(s_out, 8, 0, 1);
        let mut k = AlterPeriodKernel::new(1);
        k.process(&[&input], &mut out);
        assert_eq!(events(&out), vec![(0, 1.0), (4, 3.0)]);
    }

    #[test]
    fn alter_duration_rewrites_lifetimes() {
        let s = StreamShape::new(0, 2);
        let input = filled(s, 6, 0, &[1.0, 2.0, 3.0]);
        let mut out = empty(s, 6, 0, 1);
        let mut k = AlterDurationKernel::new(10, 1);
        k.process(&[&input], &mut out);
        assert_eq!(out.duration(0), 10);
        assert_eq!(out.duration(2), 10);
        assert_eq!(out.present_count(), 3);
    }
}
