//! Temporal joins.
//!
//! [`JoinKernel`] implements the temporal equijoin of Table 2: an output
//! event exists at joint-grid point `t` when input events whose active
//! intervals `[sync, sync + duration)` cover `t` exist on the required
//! sides. Thanks to periodicity the kernel needs no hash tables — coverage
//! is computed with one forward sweep per side, and the only state is the
//! single event per side whose interval crosses the FWindow boundary
//! (Fig. 8), which is constant-size.
//!
//! [`ClipJoinKernel`] is the as-of join: each left event pairs with the most
//! recent right event at or before it.

use crate::fwindow::{FWindow, MAX_ARITY};
use crate::ops::Kernel;
use crate::time::Tick;

/// Join flavour. Mirrors [`JoinKindTag`](crate::graph::JoinKindTag) but
/// lives with the kernel for use in public APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Emit only where both sides are covered.
    Inner,
    /// Emit wherever the left side is covered; absent right payloads are
    /// NaN-padded.
    Left,
    /// Emit wherever either side is covered; absent payloads NaN-padded.
    Outer,
}

/// Optional user projection combining the two payloads; `None` concatenates.
pub type JoinMapFn = Box<dyn FnMut(&[f32], &[f32], &mut [f32]) + Send>;

/// An event carried across the FWindow boundary (the Fig. 8 stateful case).
#[derive(Debug, Clone, Copy)]
struct Carry {
    start: Tick,
    end: Tick,
    payload: [f32; MAX_ARITY],
}

/// Per-side coverage sweep state.
#[derive(Debug)]
struct Side {
    arity: usize,
    /// The event pending into future rounds (its interval outlives the
    /// current round's end).
    carry: Option<Carry>,
    /// The carry applied to the current round, kept for payload reads even
    /// after it stops being pending.
    round_carry: Option<Carry>,
    /// cover[j] = input slot covering output slot j; -1 none, -2 carry.
    cover: Vec<i32>,
}

impl Side {
    fn new(arity: usize, out_capacity: usize) -> Self {
        Self {
            arity,
            carry: None,
            round_carry: None,
            cover: vec![-1; out_capacity],
        }
    }

    /// Sweeps `input`, filling `self.cover` for the output grid described
    /// by (`out_base`, `out_period`, `out_len`) over an interval ending at
    /// `b`.
    fn sweep(
        &mut self,
        input: &FWindow,
        out_base: Tick,
        out_period: Tick,
        out_len: usize,
        b: Tick,
    ) {
        for c in self.cover[..out_len].iter_mut() {
            *c = -1;
        }
        // Apply the carry from the previous round, keeping it pending only
        // while its interval still outlives this round.
        self.round_carry = self.carry.take();
        if let Some(c) = self.round_carry {
            if c.end > out_base {
                mark(
                    &mut self.cover,
                    out_base,
                    out_period,
                    out_len,
                    c.start,
                    c.end,
                    -2,
                );
            }
            if c.end > b {
                self.carry = Some(c);
            }
        }
        for (i, t, d) in input.iter_present() {
            let end = t + d;
            mark(
                &mut self.cover,
                out_base,
                out_period,
                out_len,
                t,
                end,
                i as i32,
            );
            if end > b {
                let mut payload = [0.0; MAX_ARITY];
                input.read(i, &mut payload[..self.arity]);
                self.carry = Some(Carry {
                    start: t,
                    end,
                    payload,
                });
            }
        }
    }

    /// Reads the payload covering output slot `j` into `buf`; returns
    /// false (and NaN-fills) when uncovered.
    fn read(&self, input: &FWindow, j: usize, buf: &mut [f32]) -> bool {
        match self.cover[j] {
            -1 => {
                buf.fill(f32::NAN);
                false
            }
            -2 => match &self.round_carry {
                Some(c) => {
                    buf.copy_from_slice(&c.payload[..self.arity]);
                    true
                }
                None => {
                    buf.fill(f32::NAN);
                    false
                }
            },
            i => {
                input.read(i as usize, buf);
                true
            }
        }
    }
}

/// Marks output slots covered by `[t, end)` with `tag`.
fn mark(
    cover: &mut [i32],
    out_base: Tick,
    out_period: Tick,
    out_len: usize,
    t: Tick,
    end: Tick,
    tag: i32,
) {
    if end <= out_base {
        return;
    }
    let lo_t = t.max(out_base);
    let mut j = ((lo_t - out_base) + out_period - 1) / out_period;
    loop {
        let ju = j as usize;
        if ju >= out_len {
            break;
        }
        let slot_t = out_base + j * out_period;
        if slot_t >= end {
            break;
        }
        cover[ju] = tag;
        j += 1;
    }
}

/// The temporal equijoin kernel.
pub struct JoinKernel {
    kind: JoinKind,
    map: Option<JoinMapFn>,
    left: Side,
    right: Side,
    out_arity: usize,
    lbuf: [f32; MAX_ARITY],
    rbuf: [f32; MAX_ARITY],
    obuf: [f32; MAX_ARITY],
}

impl JoinKernel {
    /// Creates a join kernel. `out_capacity` is the output FWindow slot
    /// capacity (from the memory plan); the cover buffers are sized once
    /// here and never reallocated.
    pub fn new(
        kind: JoinKind,
        left_arity: usize,
        right_arity: usize,
        out_arity: usize,
        out_capacity: usize,
        map: Option<JoinMapFn>,
    ) -> Self {
        Self {
            kind,
            map,
            left: Side::new(left_arity, out_capacity),
            right: Side::new(right_arity, out_capacity),
            out_arity,
            lbuf: [0.0; MAX_ARITY],
            rbuf: [0.0; MAX_ARITY],
            obuf: [0.0; MAX_ARITY],
        }
    }
}

impl Kernel for JoinKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let (l, r) = (inputs[0], inputs[1]);
        let base = if !out.is_empty() {
            out.slot_time(0)
        } else {
            out.sync()
        };
        let p = out.shape().period();
        let b = out.end();
        self.left.sweep(l, base, p, out.len(), b);
        self.right.sweep(r, base, p, out.len(), b);
        let la = self.left.arity;
        let ra = self.right.arity;
        for j in 0..out.len() {
            let lc = self.left.read(l, j, &mut self.lbuf[..la]);
            let rc = self.right.read(r, j, &mut self.rbuf[..ra]);
            let emit = match self.kind {
                JoinKind::Inner => lc && rc,
                JoinKind::Left => lc,
                JoinKind::Outer => lc || rc,
            };
            if !emit {
                continue;
            }
            match &mut self.map {
                Some(f) => {
                    f(
                        &self.lbuf[..la],
                        &self.rbuf[..ra],
                        &mut self.obuf[..self.out_arity],
                    );
                    out.write(j, &self.obuf[..self.out_arity], p);
                }
                None => {
                    self.obuf[..la].copy_from_slice(&self.lbuf[..la]);
                    self.obuf[la..la + ra].copy_from_slice(&self.rbuf[..ra]);
                    out.write(j, &self.obuf[..la + ra], p);
                }
            }
        }
    }

    fn on_skip(&mut self) {
        self.left.carry = None;
        self.left.round_carry = None;
        self.right.carry = None;
        self.right.round_carry = None;
    }

    fn has_pending(&self) -> bool {
        self.left.carry.is_some() || self.right.carry.is_some()
    }

    fn reset(&mut self) {
        self.on_skip();
    }
}

impl std::fmt::Debug for JoinKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinKernel")
            .field("kind", &self.kind)
            .field("out_arity", &self.out_arity)
            .finish()
    }
}

/// The as-of join kernel: pairs each left event with the most recent right
/// event at or before it. Constant state: the last right event seen.
pub struct ClipJoinKernel {
    left_arity: usize,
    right_arity: usize,
    last_right: Option<(Tick, [f32; MAX_ARITY])>,
    lbuf: [f32; MAX_ARITY],
    obuf: [f32; MAX_ARITY],
}

impl ClipJoinKernel {
    /// Creates an as-of join kernel.
    pub fn new(left_arity: usize, right_arity: usize) -> Self {
        Self {
            left_arity,
            right_arity,
            last_right: None,
            lbuf: [0.0; MAX_ARITY],
            obuf: [0.0; MAX_ARITY],
        }
    }
}

impl Kernel for ClipJoinKernel {
    fn process(&mut self, inputs: &[&FWindow], out: &mut FWindow) {
        let (l, r) = (inputs[0], inputs[1]);
        let mut ri = 0usize;
        for i in 0..l.len() {
            let t = l.slot_time(i);
            while ri < r.len() && r.slot_time(ri) <= t {
                if r.is_present(ri) {
                    let mut payload = [0.0; MAX_ARITY];
                    r.read(ri, &mut payload[..self.right_arity]);
                    self.last_right = Some((r.slot_time(ri), payload));
                }
                ri += 1;
            }
            if !l.is_present(i) {
                continue;
            }
            if let Some((_, rp)) = &self.last_right {
                l.read(i, &mut self.lbuf[..self.left_arity]);
                self.obuf[..self.left_arity].copy_from_slice(&self.lbuf[..self.left_arity]);
                self.obuf[self.left_arity..self.left_arity + self.right_arity]
                    .copy_from_slice(&rp[..self.right_arity]);
                out.write(
                    i,
                    &self.obuf[..self.left_arity + self.right_arity],
                    l.duration(i),
                );
            }
        }
        // Absorb right-side tail beyond the last left slot.
        while ri < r.len() {
            if r.is_present(ri) {
                let mut payload = [0.0; MAX_ARITY];
                r.read(ri, &mut payload[..self.right_arity]);
                self.last_right = Some((r.slot_time(ri), payload));
            }
            ri += 1;
        }
    }

    fn reset(&mut self) {
        self.last_right = None;
    }
}

impl std::fmt::Debug for ClipJoinKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClipJoinKernel")
            .field("left_arity", &self.left_arity)
            .field("right_arity", &self.right_arity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{empty, filled};
    use crate::time::StreamShape;

    #[test]
    fn inner_join_follows_fig5c() {
        // Left (0,1) x Right (0,2) -> output (0,1): L_k pairs R_{k/2}.
        let sl = StreamShape::new(0, 1);
        let sr = StreamShape::new(0, 2);
        let l = filled(sl, 4, 0, &[10.0, 11.0, 12.0, 13.0]);
        let r = filled(sr, 4, 0, &[100.0, 101.0]);
        let mut out = empty(sl, 4, 0, 2);
        let mut k = JoinKernel::new(JoinKind::Inner, 1, 1, 2, 4, None);
        k.process(&[&l, &r], &mut out);
        assert_eq!(out.present_count(), 4);
        assert_eq!(out.field(0), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(out.field(1), &[100.0, 100.0, 101.0, 101.0]);
    }

    #[test]
    fn inner_join_requires_both_sides() {
        let s = StreamShape::new(0, 1);
        let mut l = filled(s, 4, 0, &[1.0; 4]);
        let mut r = filled(s, 4, 0, &[2.0; 4]);
        l.clear_slot(1);
        r.clear_slot(2);
        let mut out = empty(s, 4, 0, 2);
        let mut k = JoinKernel::new(JoinKind::Inner, 1, 1, 2, 4, None);
        k.process(&[&l, &r], &mut out);
        assert!(out.is_present(0));
        assert!(!out.is_present(1));
        assert!(!out.is_present(2));
        assert!(out.is_present(3));
    }

    #[test]
    fn left_join_nan_pads_missing_right() {
        let s = StreamShape::new(0, 1);
        let l = filled(s, 2, 0, &[1.0, 2.0]);
        let mut r = filled(s, 2, 0, &[9.0, 9.0]);
        r.clear_slot(1);
        let mut out = empty(s, 2, 0, 2);
        let mut k = JoinKernel::new(JoinKind::Left, 1, 1, 2, 2, None);
        k.process(&[&l, &r], &mut out);
        assert!(out.is_present(1));
        assert!(out.field(1)[1].is_nan());
    }

    #[test]
    fn outer_join_emits_either_side() {
        let s = StreamShape::new(0, 1);
        let mut l = filled(s, 3, 0, &[1.0; 3]);
        let mut r = filled(s, 3, 0, &[2.0; 3]);
        l.clear_slot(0);
        r.clear_slot(2);
        let mut out = empty(s, 3, 0, 2);
        let mut k = JoinKernel::new(JoinKind::Outer, 1, 1, 2, 3, None);
        k.process(&[&l, &r], &mut out);
        assert_eq!(out.present_count(), 3);
        assert!(out.field(0)[0].is_nan());
        assert!(out.field(1)[2].is_nan());
    }

    #[test]
    fn join_map_projects() {
        let s = StreamShape::new(0, 1);
        let l = filled(s, 3, 0, &[1.0, 2.0, 3.0]);
        let r = filled(s, 3, 0, &[10.0, 20.0, 30.0]);
        let mut out = empty(s, 3, 0, 1);
        let mut k = JoinKernel::new(
            JoinKind::Inner,
            1,
            1,
            1,
            3,
            Some(Box::new(|a, b, o| o[0] = a[0] + b[0])),
        );
        k.process(&[&l, &r], &mut out);
        assert_eq!(out.field(0), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn stateful_join_carries_boundary_crossing_event_fig8() {
        // Right event at t=3 with duration 4 ([3,7)) crosses the window
        // boundary at 4; left events at 4,5,6 in the next round must pair
        // with it.
        let sl = StreamShape::new(0, 1);
        let sr = StreamShape::new(0, 1);
        let mut k = JoinKernel::new(JoinKind::Inner, 1, 1, 2, 4, None);

        let l1 = filled(sl, 4, 0, &[0.0, 1.0, 2.0, 3.0]);
        let mut r1 = empty(sr, 4, 0, 1);
        r1.write(3, &[77.0], 4); // [3, 7)
        let mut out1 = empty(sl, 4, 0, 2);
        k.process(&[&l1, &r1], &mut out1);
        assert!(out1.is_present(3));
        assert!(!out1.is_present(2));
        assert!(k.has_pending());

        let l2 = filled(sl, 4, 4, &[4.0, 5.0, 6.0, 7.0]);
        let r2 = empty(sr, 4, 4, 1);
        let mut out2 = empty(sl, 4, 4, 2);
        k.process(&[&l2, &r2], &mut out2);
        assert_eq!(out2.present_count(), 3); // t=4,5,6 covered by carry
        assert_eq!(out2.field(1)[0], 77.0);
        assert!(!out2.is_present(3)); // [3,7) does not cover t=7
        assert!(!k.has_pending());
    }

    #[test]
    fn on_skip_drops_carry() {
        let s = StreamShape::new(0, 1);
        let mut k = JoinKernel::new(JoinKind::Inner, 1, 1, 2, 2, None);
        let l1 = filled(s, 2, 0, &[0.0, 1.0]);
        let mut r1 = empty(s, 2, 0, 1);
        r1.write(1, &[9.0], 5);
        let mut out1 = empty(s, 2, 0, 2);
        k.process(&[&l1, &r1], &mut out1);
        assert!(k.has_pending());
        k.on_skip();
        assert!(!k.has_pending());
    }

    #[test]
    fn clip_join_pairs_with_most_recent_right() {
        // Left (0,1), right (0,2): left at t pairs right at align_down(t,2).
        let sl = StreamShape::new(0, 1);
        let sr = StreamShape::new(0, 2);
        let l = filled(sl, 4, 0, &[0.0, 1.0, 2.0, 3.0]);
        let r = filled(sr, 4, 0, &[100.0, 102.0]);
        let mut out = empty(sl, 4, 0, 2);
        let mut k = ClipJoinKernel::new(1, 1);
        k.process(&[&l, &r], &mut out);
        assert_eq!(out.field(1), &[100.0, 100.0, 102.0, 102.0]);
    }

    #[test]
    fn clip_join_state_survives_rounds_and_gaps() {
        let sl = StreamShape::new(0, 1);
        let sr = StreamShape::new(0, 4);
        let mut k = ClipJoinKernel::new(1, 1);
        let l1 = filled(sl, 4, 0, &[0.0; 4]);
        let r1 = filled(sr, 4, 0, &[50.0]);
        let mut out1 = empty(sl, 4, 0, 2);
        k.process(&[&l1, &r1], &mut out1);
        // Next round: right absent; left still pairs with t=0's right event.
        let l2 = filled(sl, 4, 4, &[0.0; 4]);
        let r2 = empty(sr, 4, 4, 1);
        let mut out2 = empty(sl, 4, 4, 2);
        k.process(&[&l2, &r2], &mut out2);
        assert_eq!(out2.present_count(), 4);
        assert_eq!(out2.field(1)[0], 50.0);
    }

    #[test]
    fn clip_join_emits_nothing_before_first_right() {
        let s = StreamShape::new(0, 1);
        let l = filled(s, 3, 0, &[1.0; 3]);
        let mut r = empty(s, 3, 0, 1);
        r.write(2, &[5.0], 1);
        let mut out = empty(s, 3, 0, 2);
        let mut k = ClipJoinKernel::new(1, 1);
        k.process(&[&l, &r], &mut out);
        assert!(!out.is_present(0));
        assert!(!out.is_present(1));
        assert!(out.is_present(2));
    }
}
