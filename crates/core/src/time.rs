//! Time model: ticks, periods, and the symbolic `(offset, period)` stream
//! descriptor.
//!
//! LifeStream targets streams whose events appear at constant intervals.
//! Every event's sync time therefore lies on a regular grid described by a
//! [`StreamShape`]: the grid points are `offset + k * period` for integer
//! `k >= 0`. A 500 Hz signal with ticks in milliseconds has `period == 2`.

use std::fmt;

/// The engine's time unit. By convention one tick is one millisecond, which
/// gives integral periods for all the signal rates in the paper (500 Hz → 2,
/// 125 Hz → 8, 200 Hz → 5, 1000 Hz → 1).
pub type Tick = i64;

/// Greatest common divisor of two non-negative ticks.
///
/// # Examples
/// ```
/// assert_eq!(lifestream_core::time::gcd(12, 8), 4);
/// assert_eq!(lifestream_core::time::gcd(7, 0), 7);
/// ```
pub fn gcd(a: Tick, b: Tick) -> Tick {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two positive ticks.
///
/// # Panics
/// Panics in debug builds if the result overflows `i64`.
///
/// # Examples
/// ```
/// assert_eq!(lifestream_core::time::lcm(2, 5), 10);
/// assert_eq!(lifestream_core::time::lcm(100, 10), 100);
/// ```
pub fn lcm(a: Tick, b: Tick) -> Tick {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Round `t` down to the nearest grid point `offset + k * period` that is
/// `<= t`. Works for `t` below `offset` as well (negative `k`).
pub fn align_down(t: Tick, offset: Tick, period: Tick) -> Tick {
    debug_assert!(period > 0);
    let d = t - offset;
    offset + d.div_euclid(period) * period
}

/// Round `t` up to the nearest grid point `offset + k * period` that is
/// `>= t`.
pub fn align_up(t: Tick, offset: Tick, period: Tick) -> Tick {
    let down = align_down(t, offset, period);
    if down == t {
        t
    } else {
        down + period
    }
}

/// Symbolic descriptor of a periodic stream: events occur at
/// `offset + k * period`.
///
/// The paper writes this as `(offset, period)`; an FWindow over the stream
/// additionally carries a dimension, written `(offset, period)[dim]`.
///
/// # Examples
/// ```
/// use lifestream_core::time::StreamShape;
/// let ecg = StreamShape::new(0, 2); // 500 Hz in ms ticks
/// assert_eq!(ecg.frequency_hz(), 500.0);
/// assert!(ecg.on_grid(42));
/// assert!(!ecg.on_grid(43));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamShape {
    offset: Tick,
    period: Tick,
}

impl StreamShape {
    /// Creates a shape with the given offset and period.
    ///
    /// # Panics
    /// Panics if `period <= 0`.
    pub fn new(offset: Tick, period: Tick) -> Self {
        assert!(period > 0, "stream period must be positive, got {period}");
        Self { offset, period }
    }

    /// The sync time of the first event in the stream.
    pub fn offset(&self) -> Tick {
        self.offset
    }

    /// The constant interval between consecutive events.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// Frequency in Hz assuming one tick is one millisecond.
    pub fn frequency_hz(&self) -> f64 {
        1000.0 / self.period as f64
    }

    /// Returns true if `t` lies on this stream's event grid.
    pub fn on_grid(&self, t: Tick) -> bool {
        (t - self.offset).rem_euclid(self.period) == 0
    }

    /// The smallest grid point `>= t`.
    pub fn align_up(&self, t: Tick) -> Tick {
        align_up(t, self.offset, self.period)
    }

    /// The largest grid point `<= t`.
    pub fn align_down(&self, t: Tick) -> Tick {
        align_down(t, self.offset, self.period)
    }

    /// Number of grid points inside the half-open interval `[a, b)`.
    ///
    /// This is the *bounded memory footprint* property: at most
    /// `ceil((b - a) / period)` events can exist in `[a, b)`.
    pub fn events_in(&self, a: Tick, b: Tick) -> usize {
        if b <= a {
            return 0;
        }
        let first = self.align_up(a);
        if first >= b {
            return 0;
        }
        ((b - 1 - first) / self.period + 1) as usize
    }

    /// Shape after shifting every event's sync time by `k` ticks
    /// (the `Shift(k)` operator's linear transformation).
    pub fn shifted(&self, k: Tick) -> Self {
        Self::new(self.offset + k, self.period)
    }

    /// Shape after re-gridding to a new period (the `AlterPeriod` operator).
    pub fn with_period(&self, period: Tick) -> Self {
        Self::new(self.offset, period)
    }

    /// Shape of the output of a temporal equijoin between `self` and
    /// `other`. Output events sit where both sides' active intervals
    /// overlap; their start times lie on the union of the two grids, whose
    /// enclosing uniform grid has period `gcd(p_l, p_r, |o_l − o_r|)`.
    pub fn join(&self, other: &Self) -> Self {
        let mut p = gcd(self.period, other.period);
        let diff = (self.offset - other.offset).abs();
        if diff != 0 {
            p = gcd(p, diff);
        }
        Self::new(self.offset.min(other.offset), p)
    }

    /// Shape of the output of a windowed aggregate with stride `stride`:
    /// one output event per stride, aligned to the input grid's offset.
    pub fn aggregated(&self, stride: Tick) -> Self {
        Self::new(self.offset, stride)
    }
}

impl fmt::Display for StreamShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.offset, self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(10, 4), 2);
        assert_eq!(gcd(4, 10), 2);
        assert_eq!(lcm(2, 5), 10);
        assert_eq!(lcm(2, 100), 100);
        assert_eq!(lcm(5, 100), 100);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn align_handles_negative_and_offsets() {
        assert_eq!(align_down(7, 0, 2), 6);
        assert_eq!(align_up(7, 0, 2), 8);
        assert_eq!(align_down(7, 1, 2), 7);
        assert_eq!(align_up(6, 1, 2), 7);
        assert_eq!(align_down(-3, 0, 2), -4);
        assert_eq!(align_up(-3, 0, 2), -2);
        assert_eq!(align_down(5, 5, 10), 5);
        assert_eq!(align_up(5, 5, 10), 5);
    }

    #[test]
    fn shape_grid_queries() {
        let s = StreamShape::new(3, 5);
        assert!(s.on_grid(3));
        assert!(s.on_grid(8));
        assert!(s.on_grid(-2));
        assert!(!s.on_grid(4));
        assert_eq!(s.align_up(4), 8);
        assert_eq!(s.align_down(4), 3);
    }

    #[test]
    fn events_in_interval_is_bounded_by_interval_over_period() {
        let s = StreamShape::new(0, 2);
        assert_eq!(s.events_in(0, 10), 5);
        assert_eq!(s.events_in(1, 10), 4); // 2,4,6,8
        assert_eq!(s.events_in(0, 1), 1); // just event at 0
        assert_eq!(s.events_in(0, 0), 0);
        assert_eq!(s.events_in(10, 0), 0);
        let s2 = StreamShape::new(1, 4);
        assert_eq!(s2.events_in(0, 16), 4); // 1,5,9,13
    }

    #[test]
    fn linear_shape_transformations() {
        let s = StreamShape::new(0, 2);
        assert_eq!(s.shifted(3), StreamShape::new(3, 2));
        assert_eq!(s.with_period(1), StreamShape::new(0, 1));
        assert_eq!(s.aggregated(100), StreamShape::new(0, 100));
    }

    #[test]
    fn join_shapes_follow_fig5c() {
        // Fig. 5(c): (0,1) join (0,2) -> (0,1).
        let l = StreamShape::new(0, 1);
        let r = StreamShape::new(0, 2);
        assert_eq!(l.join(&r), StreamShape::new(0, 1));
        // Offset-staggered grids refine the joint period.
        let a = StreamShape::new(0, 4);
        let b = StreamShape::new(1, 4);
        assert_eq!(a.join(&b), StreamShape::new(0, 1));
        let c = StreamShape::new(0, 4);
        let d = StreamShape::new(2, 4);
        assert_eq!(c.join(&d), StreamShape::new(0, 2));
        // Equal shapes join to themselves.
        assert_eq!(l.join(&l), l);
    }

    #[test]
    fn frequency_helpers() {
        assert_eq!(StreamShape::new(0, 2).frequency_hz(), 500.0);
        assert_eq!(StreamShape::new(0, 8).frequency_hz(), 125.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = StreamShape::new(0, 0);
    }
}
