//! The retrospective query engine's equivalence battery, at store
//! level (no cluster in the loop):
//!
//! * **Range clipping** — `HistoryQuery::range(t0, t1)` over spilled,
//!   gap-riddled data equals the full in-memory batch run clipped to
//!   `[t0, t1)`, byte-identically, across random Table-2 pipelines,
//!   shapes, gap patterns, flush batches, and ranges — and stays
//!   byte-identical after `compact()` merges the segment files.
//! * **Cohort order** — a multi-patient query returns exactly what the
//!   per-patient sequential loop returns, in cohort order.
//! * **Pruning** — a narrow range over a fragmented store opens only
//!   the overlapping segment files (`segments_skipped` must move).
//! * **Typed errors** — degenerate ranges and ranges below the
//!   retention floor are named errors with locked messages, never
//!   silently-empty results.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::live::LiveSession;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_store::{
    HistoryError, HistoryQuery, LiveOverlay, QueryFactory, SharedStore, StoreConfig,
};
use proptest::prelude::*;

const ROUND: Tick = 400;
const PATIENT: u64 = 7;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lss-hq-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn segment_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "lss")
        })
        .count()
}

/// A recorded, gap-riddled signal (same construction as the spill
/// equivalence battery): deterministic waveform with several dropouts.
fn recorded(shape: StreamShape, slots: usize, seed: u64) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            ((x >> 40) % 997) as f32 / 7.0
        })
        .collect();
    let mut data = SignalData::dense(shape, vals);
    let span = slots as Tick * shape.period();
    data.punch_gap(span / 10, span / 10 + 3 * shape.period());
    data.punch_gap(span / 3, span / 3 + span / 20);
    data.punch_gap(span / 2, span / 2 + ROUND + span / 15);
    data
}

/// One of the Table-2 pipeline shapes, as an on-demand factory.
fn pipeline(pipe: usize, shape: StreamShape) -> QueryFactory {
    let period = shape.period();
    Arc::new(move || {
        let q = Query::new();
        let s = q.source("s", shape);
        match pipe {
            0 => s.select(1, |i, o| o[0] = i[0] * 1.5 + 2.0)?.sink(),
            1 => s.aggregate(AggKind::Mean, 20 * period, 2 * period)?.sink(),
            2 => s.aggregate(AggKind::Max, 64 * period, 64 * period)?.sink(),
            3 => s.where_(|v| v[0] > 30.0)?.sink(),
            _ => s.shift(13 * period)?.sink(),
        }
        q.compile()
    })
}

/// Full in-memory batch run — the reference every range query must
/// match after clipping.
fn batch_run(factory: &QueryFactory, data: &SignalData) -> OutputCollector {
    let mut exec = factory()
        .unwrap()
        .executor_with(
            vec![data.clone()],
            ExecOptions::default().with_round_ticks(ROUND),
        )
        .unwrap();
    exec.run_collect().unwrap()
}

/// Streams `data` through a live session spilling into `store` under
/// `patient`, returning the live-tail overlay for query stitching.
fn spill(
    store: &SharedStore,
    patient: u64,
    factory: &QueryFactory,
    data: &SignalData,
    poll_every: usize,
) -> LiveOverlay {
    let mut session = LiveSession::new(factory().unwrap(), ROUND).unwrap();
    session.set_retire_sink(store.sink_for(patient));
    let events: Vec<(Tick, f32)> = data.present_samples().map(|(_, t, v)| (t, v)).collect();
    for (k, &(t, v)) in events.iter().enumerate() {
        session.push(0, t, v).unwrap();
        if (k + 1) % poll_every == 0 {
            session.poll(|_| {}).unwrap();
        }
    }
    session.poll(|_| {}).unwrap();
    LiveOverlay {
        snapshot: session.export_suffix(),
        shapes: session.source_shapes(),
    }
}

fn assert_same(label: &str, a: &OutputCollector, b: &OutputCollector) {
    assert_eq!(a.len(), b.len(), "{label}: event count");
    assert_eq!(a.checksum(), b.checksum(), "{label}: checksum");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite: a range-bounded query equals the full-history run
    /// clipped to `[t0, t1)`, byte-identically, across random pipelines
    /// and gap-heavy data — and compaction changes nothing but the file
    /// count.
    #[test]
    fn range_query_equals_clipped_full_run(
        period in prop::sample::select(vec![1i64, 2, 4]),
        slots in 1200usize..3000,
        seed in 0u64..u64::MAX / 2,
        gap_a in (0usize..3000, 1usize..400),
        gap_b in (0usize..3000, 1usize..400),
        flush_batch in prop::sample::select(vec![0usize, 256]),
        poll_every in prop::sample::select(vec![53usize, 211, 997]),
        pipe in 0usize..5,
        t0_pct in 0i64..80,
        len_pct in 5i64..100,
    ) {
        let shape = StreamShape::new(0, period);
        let mut data = recorded(shape, slots, seed);
        for (s, l) in [gap_a, gap_b] {
            let s = (s % slots) as Tick * period;
            data.punch_gap(s, s + l as Tick * period);
        }
        let span = slots as Tick * period;
        let t0 = span * t0_pct / 100;
        let t1 = (t0 + (span * len_pct / 100).max(period)).min(span + ROUND);

        let dir = tmp_dir("range");
        let factory = pipeline(pipe, shape);
        let store =
            SharedStore::open(StoreConfig::new(&dir).flush_batch(flush_batch)).unwrap();
        let overlay = spill(&store, PATIENT, &factory, &data, poll_every);
        prop_assert!(store.stats().spilled_samples > 0, "nothing spilled");

        let reference = batch_run(&factory, &data);
        let clipped = reference.clipped(t0, t1);
        let run = |t0: Tick, t1: Tick| {
            HistoryQuery::new()
                .patient(PATIENT)
                .range(t0, t1)
                .pipeline_factory(factory.clone())
                .run_with(&store, ROUND, |_| Some(overlay.clone()))
                .unwrap()
                .into_single()
                .unwrap()
        };
        assert_same("range vs clipped full", &clipped, &run(t0, t1));
        assert_same(
            "full-range sentinel vs batch",
            &reference,
            &run(Tick::MIN, Tick::MAX),
        );

        // Compaction merges the files but may not change a single byte
        // of any answer.
        let files_before = segment_files(&dir);
        let merged = store.compact().unwrap();
        if files_before >= 2 {
            prop_assert_eq!(merged, files_before, "all originals merged");
            prop_assert_eq!(segment_files(&dir), 1, "one merged file left");
            prop_assert!(store.stats().segments_compacted > 0);
        }
        assert_same("post-compaction range", &clipped, &run(t0, t1));
        assert_same(
            "post-compaction full",
            &reference,
            &run(Tick::MIN, Tick::MAX),
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite: a cohort scan returns exactly the per-patient
    /// sequential loop, in cohort order.
    #[test]
    fn cohort_scan_equals_per_patient_loop(
        period in prop::sample::select(vec![1i64, 2]),
        slots in 1200usize..2200,
        seed in 0u64..u64::MAX / 2,
        pipe in 0usize..5,
        t0_pct in 0i64..60,
        len_pct in 10i64..100,
    ) {
        let shape = StreamShape::new(0, period);
        let span = slots as Tick * period;
        let t0 = span * t0_pct / 100;
        let t1 = t0 + (span * len_pct / 100).max(period);
        let patients: Vec<u64> = vec![3, 1, 12];

        let dir = tmp_dir("cohort");
        let factory = pipeline(pipe, shape);
        let store = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        let mut overlays: HashMap<u64, LiveOverlay> = HashMap::new();
        for (i, &p) in patients.iter().enumerate() {
            let data = recorded(shape, slots, seed.wrapping_add(i as u64 * 7919));
            overlays.insert(p, spill(&store, p, &factory, &data, 211));
        }

        let report = HistoryQuery::new()
            .patients(patients.iter().copied())
            .range(t0, t1)
            .pipeline_factory(factory.clone())
            .run_with(&store, ROUND, |p| overlays.get(&p).cloned())
            .unwrap();
        prop_assert_eq!(report.len(), patients.len());
        for (i, &p) in patients.iter().enumerate() {
            prop_assert_eq!(report.outputs()[i].0, p, "cohort order preserved");
            let solo = HistoryQuery::new()
                .patient(p)
                .range(t0, t1)
                .pipeline_factory(factory.clone())
                .run_with(&store, ROUND, |p| overlays.get(&p).cloned())
                .unwrap()
                .into_single()
                .unwrap();
            assert_same(&format!("cohort patient {p}"), &solo, &report.outputs()[i].1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A narrow range over a fragmented store must open only the segments
/// whose tick range overlaps the (margin-widened) window — the prune
/// counter proves files were never read.
#[test]
fn narrow_range_prunes_non_overlapping_segments() {
    let dir = tmp_dir("prune");
    let shape = StreamShape::new(0, 2);
    let data = recorded(shape, 6_000, 17);
    // Zero-margin pipeline (select): the query window widens by nothing,
    // so pruning is exact.
    let factory = pipeline(0, shape);
    let store = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
    let overlay = spill(&store, PATIENT, &factory, &data, 64);
    assert!(
        segment_files(&dir) >= 3,
        "need a fragmented store to prove pruning ({} files)",
        segment_files(&dir)
    );

    let (t0, t1) = (2_000, 3_000);
    let skipped_before = store.stats().segments_skipped;
    let ranged = HistoryQuery::new()
        .patient(PATIENT)
        .range(t0, t1)
        .pipeline_factory(factory.clone())
        .run_with(&store, ROUND, |_| Some(overlay.clone()))
        .unwrap()
        .into_single()
        .unwrap();
    assert!(
        store.stats().segments_skipped > skipped_before,
        "no segment was pruned for a narrow range over {} files",
        segment_files(&dir)
    );
    assert_same(
        "pruned range query",
        &batch_run(&factory, &data).clipped(t0, t1),
        &ranged,
    );
    assert!(!ranged.is_empty(), "empty comparison proves nothing");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite bugfix, message-locked: `t1 <= t0` is a named typed error,
/// not an empty result.
#[test]
fn inverted_range_is_a_named_error_with_locked_message() {
    let err = HistoryQuery::validate_range(500, 500).unwrap_err();
    assert!(matches!(
        err,
        HistoryError::InvalidRange { t0: 500, t1: 500 }
    ));
    assert_eq!(
        err.to_string(),
        "invalid history range [500, 500): t1 must be greater than t0"
    );
    let err = HistoryQuery::validate_range(10, -10).unwrap_err();
    assert_eq!(
        err.to_string(),
        "invalid history range [10, -10): t1 must be greater than t0"
    );

    // The executing path refuses before touching any patient.
    let dir = tmp_dir("inv");
    let shape = StreamShape::new(0, 2);
    let factory = pipeline(0, shape);
    let store = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
    let overlay = spill(&store, PATIENT, &factory, &recorded(shape, 1_500, 3), 97);
    let err = HistoryQuery::new()
        .patient(PATIENT)
        .range(900, 100)
        .pipeline_factory(factory)
        .run_with(&store, ROUND, |_| Some(overlay.clone()))
        .unwrap_err();
    assert!(matches!(
        err,
        HistoryError::InvalidRange { t0: 900, t1: 100 }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite bugfix, message-locked: a range entirely below the earliest
/// retained tick is a named typed error, not an empty result.
#[test]
fn range_below_retention_is_a_named_error_with_locked_message() {
    let dir = tmp_dir("ret");
    let shape = StreamShape::new(0, 2);
    let factory = pipeline(0, shape);
    let store = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
    let overlay = spill(&store, PATIENT, &factory, &recorded(shape, 1_500, 9), 97);
    let earliest = store
        .earliest_tick()
        .unwrap()
        .expect("segments were written");

    let err = HistoryQuery::new()
        .patient(PATIENT)
        .range(earliest - 200, earliest)
        .pipeline_factory(factory.clone())
        .run_with(&store, ROUND, |_| Some(overlay.clone()))
        .unwrap_err();
    assert!(
        matches!(err, HistoryError::BelowRetention { t1, earliest: e } if t1 == earliest && e == earliest),
        "err: {err}"
    );
    assert_eq!(
        err.to_string(),
        format!(
            "history range ends at {earliest}, at or below the earliest retained tick \
             {earliest}; that history has been pruned"
        )
    );

    // One tick above the floor is answerable again.
    let ok = HistoryQuery::new()
        .patient(PATIENT)
        .range(earliest - 200, earliest + 1)
        .pipeline_factory(factory)
        .run_with(&store, ROUND, |_| Some(overlay.clone()));
    assert!(ok.is_ok(), "err: {:?}", ok.err().map(|e| e.to_string()));
    std::fs::remove_dir_all(&dir).unwrap();
}
