//! The tiered store's core contract: segment-spill + `HistoryReader`
//! reconstruction is *byte-identical* to the full in-memory retrospective
//! run. A live session streams gap-heavy data with a retire sink spilling
//! every compacted span to disk; stitching segments + the live suffix back
//! into `SignalData` and re-running the pipeline must reproduce the batch
//! run over the original recording exactly — across random Table-2
//! pipelines, shapes, gap patterns, and flush batches.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lifestream_core::exec::{ExecOptions, OutputCollector};
use lifestream_core::live::LiveSession;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::join::JoinKind;
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_store::{HistoryReader, SharedStore, StoreConfig};
use proptest::prelude::*;

const ROUND: Tick = 400;
const PATIENT: u64 = 7;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lss-equiv-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A recorded, gap-riddled signal (same construction as the live
/// equivalence battery): deterministic waveform with several dropouts.
fn recorded(shape: StreamShape, slots: usize, seed: u64) -> SignalData {
    let vals: Vec<f32> = (0..slots)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(seed);
            ((x >> 40) % 997) as f32 / 7.0
        })
        .collect();
    let mut data = SignalData::dense(shape, vals);
    let span = slots as Tick * shape.period();
    data.punch_gap(span / 10, span / 10 + 3 * shape.period());
    data.punch_gap(span / 3, span / 3 + span / 20);
    data.punch_gap(span / 2, span / 2 + ROUND + span / 15);
    data
}

/// Streams `sources` through a live session with a store attached, then
/// proves the store + suffix reconstruction re-runs byte-identically to
/// the batch run over the original recording. Returns the store so the
/// caller can make further assertions.
fn assert_spill_reconstructs(
    build: impl Fn() -> CompiledQuery,
    sources: Vec<SignalData>,
    flush_batch: usize,
    poll_every: usize,
    dir: &PathBuf,
) {
    // Full in-memory retrospective reference.
    let mut exec = build()
        .executor_with(
            sources.clone(),
            ExecOptions::default().with_round_ticks(ROUND),
        )
        .unwrap();
    let offline = exec.run_collect().unwrap();
    assert!(
        !offline.is_empty(),
        "trivially-empty comparison proves nothing"
    );

    // Live replay with every compacted span spilled to the store.
    let store = SharedStore::open(StoreConfig::new(dir).flush_batch(flush_batch)).unwrap();
    let mut session = LiveSession::new(build(), ROUND).unwrap();
    session.set_retire_sink(store.sink_for(PATIENT));

    let mut events: Vec<(Tick, usize, f32)> = Vec::new();
    for (s, data) in sources.iter().enumerate() {
        events.extend(data.present_samples().map(|(_, t, v)| (t, s, v)));
    }
    events.sort_by_key(|&(t, s, _)| (t, s));
    for (k, &(t, s, v)) in events.iter().enumerate() {
        session.push(s, t, v).unwrap();
        if (k + 1) % poll_every == 0 {
            session.poll(|_| {}).unwrap();
        }
    }
    session.poll(|_| {}).unwrap();
    assert!(
        store.stats().spilled_samples > 0,
        "no spans crossed the horizon — the run never exercised the store"
    );

    // Reconstruct: durable spans (disk + write buffer) ∪ live suffix.
    let snapshot = session.export_suffix();
    let shapes = session.source_shapes();
    let reader = HistoryReader::from_records(store.records_for(PATIENT).unwrap());
    let datasets = reader.stitch(PATIENT, &shapes, Some(&snapshot)).unwrap();
    let mut exec = build()
        .executor_with(datasets, ExecOptions::default().with_round_ticks(ROUND))
        .unwrap();
    let replayed = exec.run_collect().unwrap();

    assert_eq!(offline.len(), replayed.len(), "event count");
    assert_eq!(
        offline.checksum(),
        replayed.checksum(),
        "reconstruction must be byte-identical to the in-memory run"
    );
}

#[test]
fn durable_path_round_trips_through_real_segments() {
    // Force the pure-disk path: flush everything, then load with
    // `HistoryReader::open` so only segment files feed the re-run.
    let dir = tmp_dir("disk");
    let shape = StreamShape::new(0, 2);
    let data = recorded(shape, 5_000, 91);
    let build = || {
        let q = Query::new();
        q.source("s", shape)
            .aggregate(AggKind::Mean, 40, 4)
            .unwrap()
            .sink();
        q.compile().unwrap()
    };

    let mut exec = build()
        .executor_with(
            vec![data.clone()],
            ExecOptions::default().with_round_ticks(ROUND),
        )
        .unwrap();
    let offline = exec.run_collect().unwrap();

    let store = SharedStore::open(StoreConfig::new(&dir).flush_batch(512)).unwrap();
    let mut session = LiveSession::new(build(), ROUND).unwrap();
    session.set_retire_sink(store.sink_for(PATIENT));
    for (_, t, v) in data.present_samples().collect::<Vec<_>>() {
        session.push(0, t, v).unwrap();
    }
    let mut online = OutputCollector::new(1);
    session.finish(|w| online.absorb(w)).unwrap();
    assert_eq!(offline.checksum(), online.checksum());
    store.flush().unwrap();
    assert!(store.stats().segments_written > 0);

    // After `finish` + flush with a zero-margin-exceeding drain, the
    // session has retired everything: disk alone must reconstruct, with
    // the (empty-or-marginal) suffix still stitched for completeness.
    let snapshot = session.export_suffix();
    let reader = HistoryReader::open(&dir).unwrap();
    let datasets = reader
        .stitch(PATIENT, &session.source_shapes(), Some(&snapshot))
        .unwrap();
    let mut exec = build()
        .executor_with(datasets, ExecOptions::default().with_round_ticks(ROUND))
        .unwrap();
    let replayed = exec.run_collect().unwrap();
    assert_eq!(offline.len(), replayed.len());
    assert_eq!(offline.checksum(), replayed.checksum());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn two_source_join_reconstructs() {
    let dir = tmp_dir("join");
    let s_ecg = StreamShape::new(0, 2);
    let s_abp = StreamShape::new(0, 8);
    let ecg = recorded(s_ecg, 4_000, 5);
    let abp = recorded(s_abp, 1_000, 6);
    assert_spill_reconstructs(
        || {
            let q = Query::new();
            let a = q.source("ecg", s_ecg);
            let b = q.source("abp", s_abp);
            a.aggregate(AggKind::Max, 80, 80)
                .unwrap()
                .join(b, JoinKind::Inner)
                .unwrap()
                .sink();
            q.compile().unwrap()
        },
        vec![ecg, abp],
        256,
        97,
        &dir,
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite 3: random Table-2 pipelines × gap-heavy data × flush
    /// batches — spill + reconstruction equals the in-memory run.
    #[test]
    fn random_pipelines_reconstruct_byte_identically(
        period in prop::sample::select(vec![1i64, 2, 4]),
        slots in 600usize..3000,
        seed in 0u64..u64::MAX / 2,
        gap_a in (0usize..3000, 1usize..400),
        gap_b in (0usize..3000, 1usize..400),
        flush_batch in prop::sample::select(vec![0usize, 64, 1024, 1 << 20]),
        poll_every in prop::sample::select(vec![53usize, 211, 997]),
        pipe in 0usize..5,
    ) {
        let shape = StreamShape::new(0, period);
        let mut data = recorded(shape, slots, seed);
        for (s, l) in [gap_a, gap_b] {
            let s = (s % slots) as Tick * period;
            data.punch_gap(s, s + l as Tick * period);
        }
        let build = || {
            let q = Query::new();
            let s = q.source("s", shape);
            match pipe {
                0 => s.select(1, |i, o| o[0] = i[0] * 1.5 + 2.0).unwrap().sink(),
                1 => s.aggregate(AggKind::Mean, 20 * period, 2 * period).unwrap().sink(),
                2 => s.aggregate(AggKind::Max, 64 * period, 64 * period).unwrap().sink(),
                3 => s.where_(|v| v[0] > 30.0).unwrap().sink(),
                _ => s.shift(13 * period).unwrap().sink(),
            }
            q.compile().unwrap()
        };
        let dir = tmp_dir("prop");
        assert_spill_reconstructs(build, vec![data], flush_batch, poll_every, &dir);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
