//! Golden-byte fixtures for the segment file format.
//!
//! The segment format is a durability surface: bytes written today must
//! decode forever. These fixtures hard-code the exact encoding of a known
//! record and a known file image; any codec change that re-arranges bytes
//! breaks them loudly instead of silently orphaning old stores.

use lifestream_core::time::StreamShape;
use lifestream_store::segment::{crc32, encode_record, parse_segment, SegmentRecord, MAX_RECORD};
use lifestream_store::{SEGMENT_MAGIC, SEGMENT_VERSION};

fn golden_record() -> SegmentRecord {
    SegmentRecord {
        patient: 1,
        source: 0,
        shape: StreamShape::new(0, 2),
        base_slot: 0,
        values: vec![1.0, 2.5],
        ranges: vec![(0, 4)],
    }
}

/// `golden_record()`'s exact on-disk form: u32 length prefix, then
/// patient/source/offset/period/base_slot, the two sample bit patterns,
/// one presence range, and the CRC-32 seal — all little-endian.
const GOLDEN_RECORD: [u8; 76] = [
    0x48, 0x00, 0x00, 0x00, // len = 72
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // patient = 1
    0x00, 0x00, 0x00, 0x00, // source = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // offset = 0
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // period = 2
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // base_slot = 0
    0x02, 0x00, 0x00, 0x00, // n_values = 2
    0x00, 0x00, 0x80, 0x3f, // 1.0f32
    0x00, 0x00, 0x20, 0x40, // 2.5f32
    0x01, 0x00, 0x00, 0x00, // n_ranges = 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // range start = 0
    0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // range end = 4
    0x06, 0x06, 0xb8, 0xf3, // crc32 = 0xf3b80606
];

#[test]
fn record_encoding_is_locked() {
    assert_eq!(encode_record(&golden_record()), GOLDEN_RECORD.to_vec());
}

#[test]
fn file_image_is_locked_and_parses() {
    let mut image = Vec::new();
    image.extend_from_slice(&SEGMENT_MAGIC);
    image.push(SEGMENT_VERSION);
    image.extend_from_slice(&GOLDEN_RECORD);
    assert_eq!(&image[..5], b"LSSG\x01");
    let records = parse_segment(&image).unwrap();
    assert_eq!(records, vec![golden_record()]);
}

#[test]
fn crc32_is_ieee() {
    // The classic check value: CRC-32/IEEE of "123456789".
    assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    assert_eq!(crc32(b""), 0);
}

#[test]
fn hostile_images_are_rejected() {
    let good = {
        let mut v = Vec::new();
        v.extend_from_slice(&SEGMENT_MAGIC);
        v.push(SEGMENT_VERSION);
        v.extend_from_slice(&GOLDEN_RECORD);
        v
    };
    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(parse_segment(&bad).unwrap_err().contains("magic"));
    // Unknown version.
    let mut bad = good.clone();
    bad[4] = 99;
    assert!(parse_segment(&bad).unwrap_err().contains("version"));
    // Oversized length prefix.
    let mut bad = good.clone();
    bad[5..9].copy_from_slice(&((MAX_RECORD as u32) + 1).to_le_bytes());
    assert!(parse_segment(&bad).unwrap_err().contains("cap"));
    // Flipped payload byte: checksum catches it.
    let mut bad = good.clone();
    bad[20] ^= 0x40;
    assert!(parse_segment(&bad).unwrap_err().contains("checksum"));
    // Truncation mid-record.
    assert!(parse_segment(&good[..good.len() - 2]).is_err());
}
