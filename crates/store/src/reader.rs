//! Retrospective reads: stitching segments back into executor-ready data.
//!
//! [`HistoryReader`] is the query half of the tiered store. It loads every
//! span relevant to a patient — durable segments plus, optionally, the
//! live session's exported suffix — and densifies them into one
//! [`SignalData`] per source, base slot 0, exactly the layout a cold batch
//! run over the original feed would have produced. Any compiled pipeline
//! can then execute over the result: retrospective queries need no special
//! engine, just reconstructed inputs.

use std::io;
use std::path::Path;

use lifestream_core::live::SessionSnapshot;
use lifestream_core::prelude::PresenceMap;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_core::SignalData;

use crate::segment::{read_segment, SegmentRecord};

/// A loaded view over a set of segment records.
#[derive(Debug, Clone, Default)]
pub struct HistoryReader {
    records: Vec<SegmentRecord>,
}

/// One source's densified durable history: values from slot 0 upward plus
/// the presence ranges masking absent slots — the return shape of
/// [`HistoryReader::source_history`].
pub type DenseHistory = (Vec<f32>, Vec<(Tick, Tick)>);

/// One source's densified history while stitching.
struct Stitched {
    values: Vec<f32>,
    presence: PresenceMap,
}

impl Stitched {
    fn new() -> Self {
        Self {
            values: Vec::new(),
            presence: PresenceMap::new(),
        }
    }

    /// Copies one span (dense values starting at `base_slot`, presence
    /// ranges masking the absent slots) into the slot-0-based history.
    fn overlay(
        &mut self,
        shape: StreamShape,
        base_slot: u64,
        values: &[f32],
        ranges: &[(Tick, Tick)],
    ) -> Result<(), String> {
        for &(start, end) in ranges {
            if !shape.on_grid(start) || start < shape.offset() {
                return Err(format!("presence range start {start} off the {shape} grid"));
            }
            let first = ((start - shape.offset()) / shape.period()) as usize;
            let n = ((end - start) / shape.period()) as usize;
            let from = first
                .checked_sub(base_slot as usize)
                .ok_or_else(|| format!("presence range [{start}, {end}) below the span base"))?;
            if from + n > values.len() {
                return Err(format!(
                    "presence range [{start}, {end}) beyond the span's {} values",
                    values.len()
                ));
            }
            if first + n > self.values.len() {
                self.values.resize(first + n, 0.0);
            }
            self.values[first..first + n].copy_from_slice(&values[from..from + n]);
            self.presence.add(start, end);
        }
        Ok(())
    }
}

impl HistoryReader {
    /// Loads every segment in `dir` (non-recursive, `*.lss`).
    ///
    /// # Errors
    /// Propagates I/O failures; a corrupt segment rejects the whole load.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "lss"))
            .collect();
        paths.sort();
        let mut records = Vec::new();
        for p in paths {
            records.extend(read_segment(&p)?);
        }
        Ok(Self { records })
    }

    /// Wraps records already in memory (e.g. from
    /// [`SegmentStore::records_for`](crate::SegmentStore::records_for),
    /// which includes the unflushed write buffer).
    pub fn from_records(records: Vec<SegmentRecord>) -> Self {
        Self { records }
    }

    /// Number of loaded spans.
    pub fn span_count(&self) -> usize {
        self.records.len()
    }

    /// Patients with at least one span, ascending.
    pub fn patients(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.records.iter().map(|r| r.patient).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Source shapes recorded for `patient` (indexed by source), or `None`
    /// when the patient has no spans or its source indices have holes.
    pub fn shapes_for(&self, patient: u64) -> Option<Vec<StreamShape>> {
        let max = self
            .records
            .iter()
            .filter(|r| r.patient == patient)
            .map(|r| r.source)
            .max()?;
        let mut shapes: Vec<Option<StreamShape>> = vec![None; max as usize + 1];
        for r in self.records.iter().filter(|r| r.patient == patient) {
            shapes[r.source as usize] = Some(r.shape);
        }
        shapes.into_iter().collect()
    }

    /// Densifies one source's durable history from slot 0 upward.
    /// Returns `(values, presence ranges)`, or `None` when the patient
    /// has no spans for that source.
    pub fn source_history(
        &self,
        patient: u64,
        source: usize,
    ) -> Option<Result<DenseHistory, String>> {
        let spans: Vec<&SegmentRecord> = self
            .records
            .iter()
            .filter(|r| r.patient == patient && r.source as usize == source)
            .collect();
        let first = spans.first()?;
        let shape = first.shape;
        let mut st = Stitched::new();
        for r in &spans {
            if r.shape != shape {
                return Some(Err(format!(
                    "patient {patient} source {source} has spans on both {shape} and {}",
                    r.shape
                )));
            }
            if let Err(e) = st.overlay(shape, r.base_slot, &r.values, &r.ranges) {
                return Some(Err(e));
            }
        }
        Some(Ok((st.values, st.presence.ranges().to_vec())))
    }

    /// Reconstructs `patient`'s full history as one [`SignalData`] per
    /// source: durable spans overlaid with the live suffix (when given),
    /// densified from slot 0 — byte-identical input to a cold batch run
    /// over the original feed. Overlapping spans must agree (re-spills
    /// across a failover carry identical samples); later spans win.
    ///
    /// # Errors
    /// Fails when a span's shape disagrees with `shapes`, when the live
    /// snapshot's source count differs, or when a span is malformed.
    pub fn stitch(
        &self,
        patient: u64,
        shapes: &[StreamShape],
        live: Option<&SessionSnapshot>,
    ) -> Result<Vec<SignalData>, String> {
        if let Some(snap) = live {
            if snap.sources.len() != shapes.len() {
                return Err(format!(
                    "live snapshot has {} sources, expected {}",
                    snap.sources.len(),
                    shapes.len()
                ));
            }
        }
        let mut out = Vec::with_capacity(shapes.len());
        for (i, &shape) in shapes.iter().enumerate() {
            let mut st = Stitched::new();
            for r in self
                .records
                .iter()
                .filter(|r| r.patient == patient && r.source as usize == i)
            {
                if r.shape != shape {
                    return Err(format!(
                        "patient {patient} source {i}: segment span on {} but the query expects {shape}",
                        r.shape
                    ));
                }
                st.overlay(shape, r.base_slot, &r.values, &r.ranges)?;
            }
            if let Some(snap) = live {
                let suffix = &snap.sources[i];
                st.overlay(shape, suffix.base_slot, &suffix.values, &suffix.ranges)?;
            }
            out.push(SignalData::with_presence(shape, st.values, st.presence));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        patient: u64,
        source: u32,
        base_slot: u64,
        values: Vec<f32>,
        ranges: Vec<(Tick, Tick)>,
    ) -> SegmentRecord {
        SegmentRecord {
            patient,
            source,
            shape: StreamShape::new(0, 2),
            base_slot,
            values,
            ranges,
        }
    }

    #[test]
    fn stitch_densifies_spans_with_gaps() {
        let reader = HistoryReader::from_records(vec![
            rec(1, 0, 0, vec![1.0, 2.0], vec![(0, 4)]),
            // A hole at slots 2..5, then a second span.
            rec(1, 0, 5, vec![6.0, 7.0], vec![(10, 14)]),
        ]);
        let data = reader
            .stitch(1, &[StreamShape::new(0, 2)], None)
            .unwrap()
            .remove(0);
        assert_eq!(data.len(), 7);
        assert_eq!(data.present_samples().count(), 4);
        assert!(data.presence().covers(0, 4));
        assert!(!data.presence().contains(4));
        assert!(data.presence().covers(10, 14));
    }

    #[test]
    fn stitch_rejects_shape_mismatch() {
        let reader = HistoryReader::from_records(vec![rec(1, 0, 0, vec![1.0], vec![(0, 2)])]);
        let err = reader
            .stitch(1, &[StreamShape::new(0, 4)], None)
            .unwrap_err();
        assert!(err.contains("expects"), "err: {err}");
    }

    #[test]
    fn shapes_for_requires_contiguous_sources() {
        let mut r1 = rec(1, 0, 0, vec![1.0], vec![(0, 2)]);
        r1.source = 1; // hole at source 0
        let reader = HistoryReader::from_records(vec![r1]);
        assert!(reader.shapes_for(1).is_none());
        assert!(reader.shapes_for(2).is_none());
    }
}
