//! Tiered history store: durable segments under a bounded live suffix.
//!
//! # Why a storage tier
//!
//! The live data plane keeps each patient's buffer *bounded*: once a round
//! is processed, [`LiveSession`](lifestream_core::live::LiveSession)
//! retires everything below `frontier - history_margin`. That bound is what
//! makes million-patient ingest possible — but without this crate the
//! retired prefix is simply dropped, so a live patient's past is
//! unrecoverable and a dead machine's history dies with it. The paper's
//! deployment story (§2: retrospective development, seamless live
//! deployment) wants the opposite: any prepared pipeline should be able to
//! run over any patient's *full* history while ingest continues.
//!
//! # Architecture: three tiers
//!
//! ```text
//!            push()                    retire_below()            flush()
//!  monitors ───────► live suffix ───────────────────► write buffer ────► segments
//!                    (in-memory,       RetiredSpan     (bounded,          (append-only,
//!                     O(round+margin))                  StoreConfig::      immutable,
//!                                                       flush_batch)      checksummed)
//!
//!  retrospective query:  HistoryReader::stitch(segments ∪ write buffer ∪ live suffix)
//!                        ──► SignalData ──► any compiled Executor
//! ```
//!
//! 1. **Live suffix** — the session's own compacting buffer, unchanged.
//!    It answers the *present*.
//! 2. **Recent tier** — [`SegmentStore`]'s in-memory write buffer. A
//!    [`RetireSink`](lifestream_core::live::RetireSink) built by
//!    [`SharedStore::sink_for`] intercepts every compacted span; spans
//!    accumulate until [`StoreConfig::flush_batch`] samples are pending,
//!    then flush to a segment in one atomic write. `flush_batch = 0`
//!    flushes on every retirement (maximum durability, one file per
//!    compaction).
//! 3. **Segment tier** — immutable files in [`StoreConfig::dir`]
//!    ([`segment`] documents the golden-locked format). Readers validate
//!    checksums and never observe torn writes (tmp + rename).
//!
//! # The retrospective query surface
//!
//! [`HistoryReader`] runs the tiers in reverse: it stitches every durable
//! span (plus, optionally, a live [`SessionSnapshot`]
//! (lifestream_core::live::SessionSnapshot) exported from the running
//! session) back into dense [`SignalData`] — byte-identical input to what
//! a cold batch run over the original feed would have seen, so any
//! existing executor can answer a retrospective query mid-ingest.
//!
//! [`HistoryQuery`] is the one query description on top of that
//! machinery, shared by every front end (in-process, wire, cluster):
//!
//! ```text
//! HistoryQuery::new()
//!     .range(t0, t1)          // run over [t0, t1) instead of the full feed
//!     .patients([7, 9, 11])   // a cohort, each patient's history its own run
//!     .pipeline(compiled)     // any fluent-API pipeline, not just the live one
//! ```
//!
//! The same fluent [`Query`](lifestream_core::stream::Query) builder that
//! describes a live pipeline is the *only* logical-plan layer here too:
//! compile once, hand the [`CompiledQuery`](lifestream_core::query::CompiledQuery)
//! to [`HistoryQuery::pipeline`], and execution reconstructs inputs,
//! replays, and clips — there is no second retrospective dialect.
//!
//! Range-bounded runs are where the segment tier earns its layout:
//!
//! * **File-name range index.** Every flushed segment advertises its tick
//!   coverage in its name (`seg-<writer>-<seq>-<min>-<max>.lss`). A
//!   range-bounded query skips non-overlapping files *without opening
//!   them* ([`StoreStats::segments_skipped`] counts the wins), and clips
//!   partially-overlapping ones after the read. Files written before the
//!   index existed simply fall back to being read.
//! * **Lineage-exact margins.** Operators look back (and, for forward
//!   windows, ahead) of the requested range; execution widens the read
//!   window by each source's
//!   [`history_margins`](lifestream_core::exec::Executor::history_margins)
//!   / [`future_margins`](lifestream_core::exec::Executor::future_margins)
//!   so the clipped output is byte-identical to the full-history run —
//!   pruning is an optimization, never a semantics change.
//! * **Compaction.** [`SegmentStore::compact`] merges many small
//!   segments into one, shrinking the file population that pruning and
//!   stitching walk. Reads before and after compaction are
//!   byte-identical (spans are immutable; overlaps are idempotent).
//!
//! # Durability and retention bounds
//!
//! * History below the compaction horizon survives process death **once
//!   flushed**: the loss window is exactly the unflushed write buffer, at
//!   most `flush_batch` samples per store. With `flush_batch = 0` the
//!   window is empty and a hard kill loses nothing below the horizon
//!   (the suffix above it is the cluster replay tail's job).
//! * [`StoreConfig::retention`] bounds disk: on flush, segment files whose
//!   every span ends more than `retention` ticks below the newest spilled
//!   tick are deleted whole. Retention is a *coverage* promise — queries
//!   reach back exactly `retention` ticks from the spill frontier, older
//!   history is gone by design (a range wholly below the earliest
//!   retained tick is a typed [`HistoryError::BelowRetention`], not an
//!   empty result). `None` keeps everything.
//! * Multiple writers (e.g. two shard servers after a failover) may share
//!   one directory: file names embed a per-writer nonce, and overlapping
//!   spans re-spilled across a handoff carry identical samples, so
//!   stitching is idempotent — this is also what makes compaction safe to
//!   interrupt at any point.

#![warn(missing_docs)]

pub mod query;
pub mod reader;
pub mod segment;

pub use query::{
    CohortReport, HistoryError, HistoryQuery, LiveOverlay, PipelineSpec, QueryFactory,
};
pub use reader::{DenseHistory, HistoryReader};
pub use segment::{SegmentRecord, SEGMENT_MAGIC, SEGMENT_VERSION};

use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use lifestream_core::live::{RetireSink, RetiredSpan};
use lifestream_core::time::Tick;

/// Configuration for a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Present samples buffered in the recent tier before an automatic
    /// flush; `0` flushes on every spilled span.
    pub flush_batch: usize,
    /// Keep only segments whose spans end within this many ticks of the
    /// newest spilled tick; `None` keeps all history.
    pub retention: Option<Tick>,
}

impl StoreConfig {
    /// Config with a 4096-sample flush batch and unbounded retention.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            flush_batch: 4096,
            retention: None,
        }
    }

    /// Sets the flush batch (`0` = flush every spill).
    pub fn flush_batch(mut self, samples: usize) -> Self {
        self.flush_batch = samples;
        self
    }

    /// Sets the retention bound in ticks.
    pub fn retention(mut self, ticks: Tick) -> Self {
        self.retention = Some(ticks);
        self
    }
}

/// Counters describing a store's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Spans handed to the store by retire sinks.
    pub spilled_spans: u64,
    /// Present samples across those spans.
    pub spilled_samples: u64,
    /// Segment files written.
    pub segments_written: u64,
    /// Segment files deleted by retention pruning.
    pub segments_pruned: u64,
    /// Segment files a range-bounded read skipped without opening, thanks
    /// to the file-name range index.
    pub segments_skipped: u64,
    /// Segment files merged away by [`SegmentStore::compact`].
    pub segments_compacted: u64,
    /// Flushes performed (each writes at most one segment).
    pub flushes: u64,
    /// I/O failures (flush or prune); the failing spans stay buffered.
    pub io_errors: u64,
}

/// The durable tier: a bounded write buffer over append-only segments.
///
/// Not thread-safe by itself — wrap in [`SharedStore`] to share across
/// ingest shards.
#[derive(Debug)]
pub struct SegmentStore {
    cfg: StoreConfig,
    /// Per-writer nonce embedded in file names so concurrent writers
    /// (shard servers sharing a directory) never collide.
    writer: u64,
    next_seq: u64,
    pending: Vec<SegmentRecord>,
    pending_samples: usize,
    /// Newest tick ever spilled — the frontier retention prunes against.
    max_end: Tick,
    stats: StoreStats,
    last_error: Option<String>,
}

static WRITER_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Builds a segment file name carrying the range index: per-writer nonce,
/// per-writer sequence, then the records' combined `[min, max)` tick
/// coverage as fixed-width hex (i64 bit patterns, so negative ticks
/// round-trip). The range trails the sequence, keeping lexicographic
/// order == write order per writer, which `HistoryReader::open` and
/// stitching rely on.
fn segment_name(writer: u64, seq: u64, records: &[SegmentRecord]) -> String {
    let lo = records
        .iter()
        .map(SegmentRecord::start_tick)
        .min()
        .unwrap_or(0);
    let hi = records
        .iter()
        .map(SegmentRecord::end_tick)
        .max()
        .unwrap_or(0);
    format!(
        "seg-{:016x}-{:08}-{:016x}-{:016x}.lss",
        writer, seq, lo as u64, hi as u64
    )
}

/// Recovers the `[min, max)` tick coverage a segment file advertises in
/// its name. `None` for pre-index names (`seg-<writer>-<seq>.lss`) or
/// anything else unrecognized — those files must be opened to learn what
/// they cover, so an unparseable name degrades to a read, never to a
/// wrong skip.
fn parse_segment_range(path: &std::path::Path) -> Option<(Tick, Tick)> {
    let stem = path.file_stem()?.to_str()?;
    let mut parts = stem.split('-');
    if parts.next()? != "seg" {
        return None;
    }
    let _writer = u64::from_str_radix(parts.next()?, 16).ok()?;
    let _seq: u64 = parts.next()?.parse().ok()?;
    let lo = u64::from_str_radix(parts.next()?, 16).ok()? as Tick;
    let hi = u64::from_str_radix(parts.next()?, 16).ok()? as Tick;
    if parts.next().is_some() || hi < lo {
        return None;
    }
    Some((lo, hi))
}

fn writer_nonce() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = WRITER_COUNTER.fetch_add(1, Ordering::Relaxed);
    nanos ^ ((std::process::id() as u64) << 32) ^ count.rotate_left(17)
}

impl SegmentStore {
    /// Opens (creating if needed) a store over `cfg.dir`.
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn open(cfg: StoreConfig) -> io::Result<Self> {
        fs::create_dir_all(&cfg.dir)?;
        Ok(Self {
            cfg,
            writer: writer_nonce(),
            next_seq: 0,
            pending: Vec::new(),
            pending_samples: 0,
            max_end: Tick::MIN,
            stats: StoreStats::default(),
            last_error: None,
        })
    }

    /// Buffers one retired span; flushes automatically once
    /// [`StoreConfig::flush_batch`] present samples are pending. Flush
    /// failures are recorded ([`Self::last_error`], `io_errors`) rather
    /// than propagated — retire sinks have no error channel — and the
    /// spans stay buffered for the next attempt.
    pub fn spill(&mut self, patient: u64, span: RetiredSpan) {
        let record = SegmentRecord {
            patient,
            source: span.source as u32,
            shape: span.shape,
            base_slot: span.base_slot,
            values: span.values,
            ranges: span.ranges,
        };
        self.stats.spilled_spans += 1;
        let samples = record.present_samples();
        self.stats.spilled_samples += samples as u64;
        self.max_end = self.max_end.max(record.end_tick());
        self.pending.push(record);
        self.pending_samples += samples;
        if self.pending_samples >= self.cfg.flush_batch.max(1) || self.cfg.flush_batch == 0 {
            if let Err(e) = self.flush() {
                self.stats.io_errors += 1;
                self.last_error = Some(e.to_string());
            }
        }
    }

    /// Writes all pending spans to one new segment, then applies the
    /// retention bound. No-op when nothing is pending.
    ///
    /// # Errors
    /// The pending buffer is left intact when the write fails.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let name = segment_name(self.writer, self.next_seq, &self.pending);
        segment::write_segment(&self.cfg.dir.join(name), &self.pending)?;
        self.next_seq += 1;
        self.pending.clear();
        self.pending_samples = 0;
        self.stats.segments_written += 1;
        self.stats.flushes += 1;
        self.prune();
        Ok(())
    }

    /// Deletes segment files wholly older than the retention window.
    fn prune(&mut self) {
        let Some(retention) = self.cfg.retention else {
            return;
        };
        if self.max_end == Tick::MIN {
            return;
        }
        let cutoff = self.max_end.saturating_sub(retention);
        for path in match self.segment_paths() {
            Ok(p) => p,
            Err(e) => {
                self.stats.io_errors += 1;
                self.last_error = Some(e.to_string());
                return;
            }
        } {
            // The file-name range index answers "wholly expired?" without
            // opening the file; pre-index names fall back to a full read.
            let dead = match parse_segment_range(&path) {
                Some((_, hi)) => hi <= cutoff,
                None => match segment::read_segment(&path) {
                    Ok(records) => records.iter().all(|r| r.end_tick() <= cutoff),
                    Err(_) => false, // never prune what we cannot read
                },
            };
            if dead {
                match fs::remove_file(&path) {
                    Ok(()) => self.stats.segments_pruned += 1,
                    Err(e) => {
                        self.stats.io_errors += 1;
                        self.last_error = Some(e.to_string());
                    }
                }
            }
        }
    }

    fn segment_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.cfg.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "lss"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Every durable + pending span for `patient`, oldest file first.
    /// Pending (unflushed) spans are included, so a query never misses
    /// recently retired data.
    ///
    /// # Errors
    /// Propagates read failures; a corrupt segment fails the whole query
    /// rather than silently dropping history.
    pub fn records_for(&self, patient: u64) -> io::Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        for path in self.segment_paths()? {
            out.extend(
                segment::read_segment(&path)?
                    .into_iter()
                    .filter(|r| r.patient == patient),
            );
        }
        out.extend(
            self.pending
                .iter()
                .filter(|r| r.patient == patient)
                .cloned(),
        );
        Ok(out)
    }

    /// Every durable + pending span for `patient` whose coverage overlaps
    /// `[t0, t1)`, oldest file first. The file-name range index lets
    /// non-overlapping segment files be skipped *without being opened*
    /// ([`StoreStats::segments_skipped`] counts them); records inside an
    /// overlapping file are still filtered span-by-span. Pass
    /// `(Tick::MIN, Tick::MAX)` for an unpruned full read.
    ///
    /// # Errors
    /// Propagates read failures; a corrupt overlapping segment fails the
    /// whole query rather than silently dropping history.
    pub fn records_for_range(
        &mut self,
        patient: u64,
        t0: Tick,
        t1: Tick,
    ) -> io::Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        for path in self.segment_paths()? {
            if let Some((lo, hi)) = parse_segment_range(&path) {
                if hi <= t0 || lo >= t1 {
                    self.stats.segments_skipped += 1;
                    continue;
                }
            }
            out.extend(
                segment::read_segment(&path)?
                    .into_iter()
                    .filter(|r| r.patient == patient && r.overlaps(t0, t1)),
            );
        }
        out.extend(
            self.pending
                .iter()
                .filter(|r| r.patient == patient && r.overlaps(t0, t1))
                .cloned(),
        );
        Ok(out)
    }

    /// The earliest tick any retained span (durable or pending) covers,
    /// or `None` when the store holds nothing. This is the retention
    /// floor a range query is validated against.
    ///
    /// # Errors
    /// Propagates read failures on pre-index files (indexed names answer
    /// from the name alone).
    pub fn earliest_tick(&self) -> io::Result<Option<Tick>> {
        let mut earliest: Option<Tick> = None;
        let mut fold = |t: Tick| earliest = Some(earliest.map_or(t, |e| e.min(t)));
        for path in self.segment_paths()? {
            match parse_segment_range(&path) {
                Some((lo, _)) => fold(lo),
                None => {
                    for r in segment::read_segment(&path)? {
                        fold(r.start_tick());
                    }
                }
            }
        }
        for r in &self.pending {
            fold(r.start_tick());
        }
        Ok(earliest)
    }

    /// Merges every durable segment file into one, returning how many
    /// files were merged away (0 when there was nothing to merge). Spans
    /// are immutable and overlapping re-spills idempotent, so reads
    /// before and after compaction are byte-identical; the merged file
    /// carries the combined range index, so a fragmented store regains
    /// cheap pruning. All originals are read and the replacement fully
    /// written (tmp + fsync + rename) before any original is deleted —
    /// a crash mid-compaction leaves duplicates, never losses.
    ///
    /// # Errors
    /// An unreadable segment aborts the pass with nothing deleted.
    pub fn compact(&mut self) -> io::Result<usize> {
        let paths = self.segment_paths()?;
        if paths.len() < 2 {
            return Ok(0);
        }
        let mut merged = Vec::new();
        for path in &paths {
            merged.extend(segment::read_segment(path)?);
        }
        let name = segment_name(self.writer, self.next_seq, &merged);
        segment::write_segment(&self.cfg.dir.join(name), &merged)?;
        self.next_seq += 1;
        self.stats.segments_written += 1;
        for path in &paths {
            match fs::remove_file(path) {
                Ok(()) => self.stats.segments_compacted += 1,
                // A concurrent writer's retention pass got there first.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    self.stats.segments_compacted += 1;
                }
                Err(e) => {
                    self.stats.io_errors += 1;
                    self.last_error = Some(e.to_string());
                }
            }
        }
        Ok(paths.len())
    }

    /// Every durable + pending span, for whole-store inspection.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn all_records(&self) -> io::Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        for path in self.segment_paths()? {
            out.extend(segment::read_segment(&path)?);
        }
        out.extend(self.pending.iter().cloned());
        Ok(out)
    }

    /// Activity counters so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Present samples currently buffered (the at-risk loss window).
    pub fn pending_samples(&self) -> usize {
        self.pending_samples
    }

    /// Most recent recorded I/O failure, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// The store's directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }
}

/// Cloneable, thread-safe handle over a [`SegmentStore`] — what ingest
/// shards and query paths share.
#[derive(Debug, Clone)]
pub struct SharedStore(Arc<Mutex<SegmentStore>>);

impl SharedStore {
    /// Opens a store and wraps it for sharing.
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn open(cfg: StoreConfig) -> io::Result<Self> {
        Ok(Self(Arc::new(Mutex::new(SegmentStore::open(cfg)?))))
    }

    /// Builds a retire sink that spills `patient`'s compacted spans into
    /// this store — attach with
    /// [`LiveSession::set_retire_sink`](lifestream_core::live::LiveSession::set_retire_sink).
    pub fn sink_for(&self, patient: u64) -> RetireSink {
        let handle = self.clone();
        Box::new(move |span: RetiredSpan| handle.0.lock().expect("store lock").spill(patient, span))
    }

    /// Runs `f` with the store locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut SegmentStore) -> R) -> R {
        f(&mut self.0.lock().expect("store lock"))
    }

    /// Flushes the write buffer. See [`SegmentStore::flush`].
    ///
    /// # Errors
    /// Propagates the underlying write failure.
    pub fn flush(&self) -> io::Result<()> {
        self.with(SegmentStore::flush)
    }

    /// Every durable + pending span for `patient`.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn records_for(&self, patient: u64) -> io::Result<Vec<SegmentRecord>> {
        self.with(|s| s.records_for(patient))
    }

    /// Every durable + pending span for `patient` overlapping `[t0, t1)`,
    /// pruning by the file-name range index. See
    /// [`SegmentStore::records_for_range`].
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn records_for_range(
        &self,
        patient: u64,
        t0: Tick,
        t1: Tick,
    ) -> io::Result<Vec<SegmentRecord>> {
        self.with(|s| s.records_for_range(patient, t0, t1))
    }

    /// The earliest retained tick. See [`SegmentStore::earliest_tick`].
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn earliest_tick(&self) -> io::Result<Option<Tick>> {
        self.with(|s| s.earliest_tick())
    }

    /// Merges all durable segments into one. See [`SegmentStore::compact`].
    ///
    /// # Errors
    /// Propagates read/write failures; nothing is deleted on error.
    pub fn compact(&self) -> io::Result<usize> {
        self.with(|s| s.compact())
    }

    /// Activity counters so far.
    pub fn stats(&self) -> StoreStats {
        self.with(|s| s.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::time::StreamShape;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lss-store-{tag}-{}", writer_nonce()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn span(base_slot: u64, values: Vec<f32>, ranges: Vec<(Tick, Tick)>) -> RetiredSpan {
        RetiredSpan {
            source: 0,
            shape: StreamShape::new(0, 1),
            base_slot,
            values,
            ranges,
        }
    }

    #[test]
    fn spill_flush_reopen() {
        let dir = tmp_dir("reopen");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        store.spill(1, span(0, vec![1.0, 2.0], vec![(0, 2)]));
        store.spill(2, span(0, vec![9.0], vec![(0, 1)]));
        assert_eq!(store.stats().segments_written, 2);
        drop(store);
        // A fresh store (new writer nonce) sees the durable spans.
        let store = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        let got = store.records_for(1).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values, vec![1.0, 2.0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_flush_and_pending_visibility() {
        let dir = tmp_dir("batch");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(100)).unwrap();
        store.spill(1, span(0, vec![1.0; 10], vec![(0, 10)]));
        assert_eq!(store.stats().segments_written, 0, "below the batch");
        // Queries still see the pending span.
        assert_eq!(store.records_for(1).unwrap().len(), 1);
        store.spill(1, span(10, vec![2.0; 95], vec![(10, 105)]));
        assert_eq!(store.stats().segments_written, 1, "batch crossed");
        assert_eq!(store.pending_samples(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_segments() {
        let dir = tmp_dir("retain");
        let mut store =
            SegmentStore::open(StoreConfig::new(&dir).flush_batch(0).retention(100)).unwrap();
        store.spill(1, span(0, vec![1.0; 50], vec![(0, 50)]));
        store.spill(1, span(50, vec![2.0; 50], vec![(50, 100)]));
        // Frontier 100: nothing is >100 ticks old yet.
        assert_eq!(store.stats().segments_pruned, 0);
        store.spill(1, span(200, vec![3.0; 50], vec![(200, 250)]));
        // Frontier 250, cutoff 150: both early segments are wholly older.
        assert_eq!(store.stats().segments_pruned, 2);
        let got = store.records_for(1).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got.iter().all(|r| r.end_tick() > 150));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_reads_skip_nonoverlapping_files_by_name() {
        let dir = tmp_dir("range");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        store.spill(1, span(0, vec![1.0; 50], vec![(0, 50)]));
        store.spill(1, span(50, vec![2.0; 50], vec![(50, 100)]));
        store.spill(1, span(100, vec![3.0; 50], vec![(100, 150)]));
        let got = store.records_for_range(1, 60, 90).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values, vec![2.0; 50]);
        assert_eq!(store.stats().segments_skipped, 2, "two files never opened");
        // A full-range read skips nothing and sees everything.
        let all = store.records_for_range(1, Tick::MIN, Tick::MAX).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(store.stats().segments_skipped, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_file_names_fall_back_to_reads() {
        let dir = tmp_dir("legacy");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        store.spill(1, span(0, vec![1.0; 10], vec![(0, 10)]));
        // Strip the range suffix off the file, as a pre-index writer
        // would have named it.
        let path = store.segment_paths().unwrap().remove(0);
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let legacy: String = stem.split('-').take(3).collect::<Vec<_>>().join("-");
        fs::rename(&path, dir.join(format!("{legacy}.lss"))).unwrap();
        // Out-of-range query: the file cannot be skipped (no index), but
        // span-level filtering still excludes its records.
        let got = store.records_for_range(1, 500, 600).unwrap();
        assert!(got.is_empty());
        assert_eq!(store.stats().segments_skipped, 0);
        // And its coverage is still discoverable the slow way.
        assert_eq!(store.earliest_tick().unwrap(), Some(0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn earliest_tick_tracks_retention() {
        let dir = tmp_dir("earliest");
        let mut store =
            SegmentStore::open(StoreConfig::new(&dir).flush_batch(0).retention(100)).unwrap();
        assert_eq!(store.earliest_tick().unwrap(), None);
        store.spill(1, span(0, vec![1.0; 50], vec![(0, 50)]));
        assert_eq!(store.earliest_tick().unwrap(), Some(0));
        store.spill(1, span(200, vec![3.0; 50], vec![(200, 250)]));
        // The first segment is wholly below the cutoff and was pruned.
        assert_eq!(store.stats().segments_pruned, 1);
        assert_eq!(store.earliest_tick().unwrap(), Some(200));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_files_and_preserves_records() {
        let dir = tmp_dir("compact");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        for i in 0..5u64 {
            let t = i as Tick * 10;
            store.spill(1, span(i * 10, vec![i as f32; 10], vec![(t, t + 10)]));
        }
        let before = store.records_for(1).unwrap();
        assert_eq!(store.segment_paths().unwrap().len(), 5);
        assert_eq!(store.compact().unwrap(), 5);
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        assert_eq!(store.stats().segments_compacted, 5);
        assert_eq!(store.records_for(1).unwrap(), before, "byte-identical");
        // The merged file carries the combined range index.
        let merged = store.segment_paths().unwrap().remove(0);
        assert_eq!(parse_segment_range(&merged), Some((0, 50)));
        // Nothing left to merge.
        assert_eq!(store.compact().unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_do_not_collide() {
        let dir = tmp_dir("multi");
        let a = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        let b = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        let mut sink_a = a.sink_for(1);
        let mut sink_b = b.sink_for(1);
        sink_a(span(0, vec![1.0], vec![(0, 1)]));
        sink_b(span(1, vec![2.0], vec![(1, 2)]));
        let got = a.records_for(1).unwrap();
        assert_eq!(got.len(), 2, "both writers' segments visible");
        fs::remove_dir_all(&dir).unwrap();
    }
}
