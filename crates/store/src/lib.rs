//! Tiered history store: durable segments under a bounded live suffix.
//!
//! # Why a storage tier
//!
//! The live data plane keeps each patient's buffer *bounded*: once a round
//! is processed, [`LiveSession`](lifestream_core::live::LiveSession)
//! retires everything below `frontier - history_margin`. That bound is what
//! makes million-patient ingest possible — but without this crate the
//! retired prefix is simply dropped, so a live patient's past is
//! unrecoverable and a dead machine's history dies with it. The paper's
//! deployment story (§2: retrospective development, seamless live
//! deployment) wants the opposite: any prepared pipeline should be able to
//! run over any patient's *full* history while ingest continues.
//!
//! # Architecture: three tiers
//!
//! ```text
//!            push()                    retire_below()            flush()
//!  monitors ───────► live suffix ───────────────────► write buffer ────► segments
//!                    (in-memory,       RetiredSpan     (bounded,          (append-only,
//!                     O(round+margin))                  StoreConfig::      immutable,
//!                                                       flush_batch)      checksummed)
//!
//!  retrospective query:  HistoryReader::stitch(segments ∪ write buffer ∪ live suffix)
//!                        ──► SignalData ──► any compiled Executor
//! ```
//!
//! 1. **Live suffix** — the session's own compacting buffer, unchanged.
//!    It answers the *present*.
//! 2. **Recent tier** — [`SegmentStore`]'s in-memory write buffer. A
//!    [`RetireSink`](lifestream_core::live::RetireSink) built by
//!    [`SharedStore::sink_for`] intercepts every compacted span; spans
//!    accumulate until [`StoreConfig::flush_batch`] samples are pending,
//!    then flush to a segment in one atomic write. `flush_batch = 0`
//!    flushes on every retirement (maximum durability, one file per
//!    compaction).
//! 3. **Segment tier** — immutable files in [`StoreConfig::dir`]
//!    ([`segment`] documents the golden-locked format). Readers validate
//!    checksums and never observe torn writes (tmp + rename).
//!
//! [`HistoryReader`] runs the tiers in reverse: it stitches every durable
//! span (plus, optionally, a live [`SessionSnapshot`]
//! (lifestream_core::live::SessionSnapshot) exported from the running
//! session) back into dense [`SignalData`] — byte-identical input to what
//! a cold batch run over the original feed would have seen, so any
//! existing executor can answer a retrospective query mid-ingest.
//!
//! # Durability and retention bounds
//!
//! * History below the compaction horizon survives process death **once
//!   flushed**: the loss window is exactly the unflushed write buffer, at
//!   most `flush_batch` samples per store. With `flush_batch = 0` the
//!   window is empty and a hard kill loses nothing below the horizon
//!   (the suffix above it is the cluster replay tail's job).
//! * [`StoreConfig::retention`] bounds disk: on flush, segment files whose
//!   every span ends more than `retention` ticks below the newest spilled
//!   tick are deleted whole. Retention is a *coverage* promise — queries
//!   reach back exactly `retention` ticks from the spill frontier, older
//!   history is gone by design. `None` keeps everything.
//! * Multiple writers (e.g. two shard servers after a failover) may share
//!   one directory: file names embed a per-writer nonce, and overlapping
//!   spans re-spilled across a handoff carry identical samples, so
//!   stitching is idempotent.

#![warn(missing_docs)]

pub mod reader;
pub mod segment;

pub use reader::{DenseHistory, HistoryReader};
pub use segment::{SegmentRecord, SEGMENT_MAGIC, SEGMENT_VERSION};

use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use lifestream_core::live::{RetireSink, RetiredSpan};
use lifestream_core::time::Tick;

/// Configuration for a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Present samples buffered in the recent tier before an automatic
    /// flush; `0` flushes on every spilled span.
    pub flush_batch: usize,
    /// Keep only segments whose spans end within this many ticks of the
    /// newest spilled tick; `None` keeps all history.
    pub retention: Option<Tick>,
}

impl StoreConfig {
    /// Config with a 4096-sample flush batch and unbounded retention.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            flush_batch: 4096,
            retention: None,
        }
    }

    /// Sets the flush batch (`0` = flush every spill).
    pub fn flush_batch(mut self, samples: usize) -> Self {
        self.flush_batch = samples;
        self
    }

    /// Sets the retention bound in ticks.
    pub fn retention(mut self, ticks: Tick) -> Self {
        self.retention = Some(ticks);
        self
    }
}

/// Counters describing a store's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Spans handed to the store by retire sinks.
    pub spilled_spans: u64,
    /// Present samples across those spans.
    pub spilled_samples: u64,
    /// Segment files written.
    pub segments_written: u64,
    /// Segment files deleted by retention pruning.
    pub segments_pruned: u64,
    /// Flushes performed (each writes at most one segment).
    pub flushes: u64,
    /// I/O failures (flush or prune); the failing spans stay buffered.
    pub io_errors: u64,
}

/// The durable tier: a bounded write buffer over append-only segments.
///
/// Not thread-safe by itself — wrap in [`SharedStore`] to share across
/// ingest shards.
#[derive(Debug)]
pub struct SegmentStore {
    cfg: StoreConfig,
    /// Per-writer nonce embedded in file names so concurrent writers
    /// (shard servers sharing a directory) never collide.
    writer: u64,
    next_seq: u64,
    pending: Vec<SegmentRecord>,
    pending_samples: usize,
    /// Newest tick ever spilled — the frontier retention prunes against.
    max_end: Tick,
    stats: StoreStats,
    last_error: Option<String>,
}

static WRITER_COUNTER: AtomicU64 = AtomicU64::new(0);

fn writer_nonce() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = WRITER_COUNTER.fetch_add(1, Ordering::Relaxed);
    nanos ^ ((std::process::id() as u64) << 32) ^ count.rotate_left(17)
}

impl SegmentStore {
    /// Opens (creating if needed) a store over `cfg.dir`.
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn open(cfg: StoreConfig) -> io::Result<Self> {
        fs::create_dir_all(&cfg.dir)?;
        Ok(Self {
            cfg,
            writer: writer_nonce(),
            next_seq: 0,
            pending: Vec::new(),
            pending_samples: 0,
            max_end: Tick::MIN,
            stats: StoreStats::default(),
            last_error: None,
        })
    }

    /// Buffers one retired span; flushes automatically once
    /// [`StoreConfig::flush_batch`] present samples are pending. Flush
    /// failures are recorded ([`Self::last_error`], `io_errors`) rather
    /// than propagated — retire sinks have no error channel — and the
    /// spans stay buffered for the next attempt.
    pub fn spill(&mut self, patient: u64, span: RetiredSpan) {
        let record = SegmentRecord {
            patient,
            source: span.source as u32,
            shape: span.shape,
            base_slot: span.base_slot,
            values: span.values,
            ranges: span.ranges,
        };
        self.stats.spilled_spans += 1;
        let samples = record.present_samples();
        self.stats.spilled_samples += samples as u64;
        self.max_end = self.max_end.max(record.end_tick());
        self.pending.push(record);
        self.pending_samples += samples;
        if self.pending_samples >= self.cfg.flush_batch.max(1) || self.cfg.flush_batch == 0 {
            if let Err(e) = self.flush() {
                self.stats.io_errors += 1;
                self.last_error = Some(e.to_string());
            }
        }
    }

    /// Writes all pending spans to one new segment, then applies the
    /// retention bound. No-op when nothing is pending.
    ///
    /// # Errors
    /// The pending buffer is left intact when the write fails.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let name = format!("seg-{:016x}-{:08}.lss", self.writer, self.next_seq);
        segment::write_segment(&self.cfg.dir.join(name), &self.pending)?;
        self.next_seq += 1;
        self.pending.clear();
        self.pending_samples = 0;
        self.stats.segments_written += 1;
        self.stats.flushes += 1;
        self.prune();
        Ok(())
    }

    /// Deletes segment files wholly older than the retention window.
    fn prune(&mut self) {
        let Some(retention) = self.cfg.retention else {
            return;
        };
        if self.max_end == Tick::MIN {
            return;
        }
        let cutoff = self.max_end.saturating_sub(retention);
        for path in match self.segment_paths() {
            Ok(p) => p,
            Err(e) => {
                self.stats.io_errors += 1;
                self.last_error = Some(e.to_string());
                return;
            }
        } {
            let dead = match segment::read_segment(&path) {
                Ok(records) => records.iter().all(|r| r.end_tick() <= cutoff),
                Err(_) => false, // never prune what we cannot read
            };
            if dead {
                match fs::remove_file(&path) {
                    Ok(()) => self.stats.segments_pruned += 1,
                    Err(e) => {
                        self.stats.io_errors += 1;
                        self.last_error = Some(e.to_string());
                    }
                }
            }
        }
    }

    fn segment_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.cfg.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "lss"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Every durable + pending span for `patient`, oldest file first.
    /// Pending (unflushed) spans are included, so a query never misses
    /// recently retired data.
    ///
    /// # Errors
    /// Propagates read failures; a corrupt segment fails the whole query
    /// rather than silently dropping history.
    pub fn records_for(&self, patient: u64) -> io::Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        for path in self.segment_paths()? {
            out.extend(
                segment::read_segment(&path)?
                    .into_iter()
                    .filter(|r| r.patient == patient),
            );
        }
        out.extend(
            self.pending
                .iter()
                .filter(|r| r.patient == patient)
                .cloned(),
        );
        Ok(out)
    }

    /// Every durable + pending span, for whole-store inspection.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn all_records(&self) -> io::Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        for path in self.segment_paths()? {
            out.extend(segment::read_segment(&path)?);
        }
        out.extend(self.pending.iter().cloned());
        Ok(out)
    }

    /// Activity counters so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Present samples currently buffered (the at-risk loss window).
    pub fn pending_samples(&self) -> usize {
        self.pending_samples
    }

    /// Most recent recorded I/O failure, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// The store's directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }
}

/// Cloneable, thread-safe handle over a [`SegmentStore`] — what ingest
/// shards and query paths share.
#[derive(Debug, Clone)]
pub struct SharedStore(Arc<Mutex<SegmentStore>>);

impl SharedStore {
    /// Opens a store and wraps it for sharing.
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn open(cfg: StoreConfig) -> io::Result<Self> {
        Ok(Self(Arc::new(Mutex::new(SegmentStore::open(cfg)?))))
    }

    /// Builds a retire sink that spills `patient`'s compacted spans into
    /// this store — attach with
    /// [`LiveSession::set_retire_sink`](lifestream_core::live::LiveSession::set_retire_sink).
    pub fn sink_for(&self, patient: u64) -> RetireSink {
        let handle = self.clone();
        Box::new(move |span: RetiredSpan| handle.0.lock().expect("store lock").spill(patient, span))
    }

    /// Runs `f` with the store locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut SegmentStore) -> R) -> R {
        f(&mut self.0.lock().expect("store lock"))
    }

    /// Flushes the write buffer. See [`SegmentStore::flush`].
    ///
    /// # Errors
    /// Propagates the underlying write failure.
    pub fn flush(&self) -> io::Result<()> {
        self.with(SegmentStore::flush)
    }

    /// Every durable + pending span for `patient`.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn records_for(&self, patient: u64) -> io::Result<Vec<SegmentRecord>> {
        self.with(|s| s.records_for(patient))
    }

    /// Activity counters so far.
    pub fn stats(&self) -> StoreStats {
        self.with(|s| s.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::time::StreamShape;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lss-store-{tag}-{}", writer_nonce()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn span(base_slot: u64, values: Vec<f32>, ranges: Vec<(Tick, Tick)>) -> RetiredSpan {
        RetiredSpan {
            source: 0,
            shape: StreamShape::new(0, 1),
            base_slot,
            values,
            ranges,
        }
    }

    #[test]
    fn spill_flush_reopen() {
        let dir = tmp_dir("reopen");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        store.spill(1, span(0, vec![1.0, 2.0], vec![(0, 2)]));
        store.spill(2, span(0, vec![9.0], vec![(0, 1)]));
        assert_eq!(store.stats().segments_written, 2);
        drop(store);
        // A fresh store (new writer nonce) sees the durable spans.
        let store = SegmentStore::open(StoreConfig::new(&dir)).unwrap();
        let got = store.records_for(1).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values, vec![1.0, 2.0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_flush_and_pending_visibility() {
        let dir = tmp_dir("batch");
        let mut store = SegmentStore::open(StoreConfig::new(&dir).flush_batch(100)).unwrap();
        store.spill(1, span(0, vec![1.0; 10], vec![(0, 10)]));
        assert_eq!(store.stats().segments_written, 0, "below the batch");
        // Queries still see the pending span.
        assert_eq!(store.records_for(1).unwrap().len(), 1);
        store.spill(1, span(10, vec![2.0; 95], vec![(10, 105)]));
        assert_eq!(store.stats().segments_written, 1, "batch crossed");
        assert_eq!(store.pending_samples(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_segments() {
        let dir = tmp_dir("retain");
        let mut store =
            SegmentStore::open(StoreConfig::new(&dir).flush_batch(0).retention(100)).unwrap();
        store.spill(1, span(0, vec![1.0; 50], vec![(0, 50)]));
        store.spill(1, span(50, vec![2.0; 50], vec![(50, 100)]));
        // Frontier 100: nothing is >100 ticks old yet.
        assert_eq!(store.stats().segments_pruned, 0);
        store.spill(1, span(200, vec![3.0; 50], vec![(200, 250)]));
        // Frontier 250, cutoff 150: both early segments are wholly older.
        assert_eq!(store.stats().segments_pruned, 2);
        let got = store.records_for(1).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got.iter().all(|r| r.end_tick() > 150));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_do_not_collide() {
        let dir = tmp_dir("multi");
        let a = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        let b = SharedStore::open(StoreConfig::new(&dir).flush_batch(0)).unwrap();
        let mut sink_a = a.sink_for(1);
        let mut sink_b = b.sink_for(1);
        sink_a(span(0, vec![1.0], vec![(0, 1)]));
        sink_b(span(1, vec![2.0], vec![(1, 2)]));
        let got = a.records_for(1).unwrap();
        assert_eq!(got.len(), 2, "both writers' segments visible");
        fs::remove_dir_all(&dir).unwrap();
    }
}
