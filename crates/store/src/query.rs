//! The retrospective query engine: one [`HistoryQuery`] description,
//! executed over the tiered store.
//!
//! A query names a time range, a patient cohort, and a pipeline:
//!
//! ```text
//! HistoryQuery::new().range(t0, t1).patients([7, 9]).pipeline(compiled)
//! ```
//!
//! Execution reconstructs each patient's inputs from the store (pruning
//! segment files by the file-name range index), overlays the live suffix
//! when one is supplied, replays the pipeline, and clips the output to
//! `[t0, t1)`. The contract is *byte identity*: a range-bounded run
//! produces exactly the full-history run's output restricted to the
//! range. That holds because the read window is widened by the
//! pipeline's lineage margins
//! ([`Executor::history_margins`]/[`Executor::future_margins`]) before
//! clipping — every stateful operator sees the same warm-up data it
//! would have seen in the full run. Round alignment is absolute
//! (`div_euclid` of the round length), so a run starting mid-history
//! shares the full run's round grid.
//!
//! The one semantics hole is user state *outside* the lineage system: a
//! `transform` closure carrying unbounded history (e.g. a running
//! normalizer over the entire past) cannot be reconstructed from a
//! bounded window. [`HistoryQuery::warmup`] widens the replay window by
//! a caller-chosen number of ticks for exactly that case.
//!
//! This module is front-end-agnostic: it resolves only
//! [`PipelineSpec::Compiled`] and [`PipelineSpec::Factory`]. The
//! `Live`/`Registered` variants are resolved by the ingest front ends
//! (which own a live pipeline factory and a pipeline registry) before
//! the query reaches [`HistoryQuery::run_with`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use lifestream_core::exec::{ExecOptions, Executor, OutputCollector};
use lifestream_core::live::SessionSnapshot;
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::time::{StreamShape, Tick};

use crate::reader::HistoryReader;
use crate::SharedStore;

/// Builds a compiled pipeline on demand — the form a parallel cohort
/// fan-out needs (each worker builds its own executor). Identical to the
/// cluster crate's `PipelineFactory`.
pub type QueryFactory =
    Arc<dyn Fn() -> lifestream_core::error::Result<CompiledQuery> + Send + Sync>;

/// Which pipeline a [`HistoryQuery`] replays.
pub enum PipelineSpec {
    /// The front end's own live pipeline (the default). Resolved by the
    /// ingest layer; meaningless to the store-level engine.
    Live,
    /// A compiled fluent-API pipeline, handed over directly. The one
    /// logical-plan layer serves both live and retrospective runs — there
    /// is no separate retrospective query dialect.
    Compiled(CompiledQuery),
    /// A pipeline factory, for cohort scans that build one executor per
    /// worker.
    Factory(QueryFactory),
    /// A pipeline registered on the serving side under a small id — the
    /// only form that travels over the wire. Id `0` always means the
    /// live pipeline.
    Registered(u32),
}

impl std::fmt::Debug for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Live => write!(f, "Live"),
            Self::Compiled(_) => write!(f, "Compiled(..)"),
            Self::Factory(_) => write!(f, "Factory(..)"),
            Self::Registered(id) => write!(f, "Registered({id})"),
        }
    }
}

/// What a retrospective query can fail with — the typed replacement for
/// the stringly-typed `query_history` errors. `Display` messages are
/// compatibility surfaces locked by regression tests; change them like
/// you would change a wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// The requested range is empty or inverted (`t1 <= t0`).
    InvalidRange {
        /// Requested range start.
        t0: Tick,
        /// Requested range end.
        t1: Tick,
    },
    /// The range ends at or below the earliest tick the store still
    /// retains — that history was pruned by the retention bound, so an
    /// empty result would be a silent lie.
    BelowRetention {
        /// Requested range end.
        t1: Tick,
        /// Earliest retained tick.
        earliest: Tick,
    },
    /// The front end has no history store attached.
    NoStore,
    /// The patient has no stored history and no live session.
    UnknownPatient(u64),
    /// The query names no patients.
    NoPatients,
    /// The pipeline could not be built or resolved (compile failure,
    /// unknown registered id, a spec the surface cannot express).
    Pipeline(String),
    /// Reconstruction or replay failed (stitch mismatch, executor error,
    /// a panicking user closure).
    Execution(String),
    /// The store itself failed (I/O, corrupt segment).
    Store(String),
    /// The remote side failed or the transport broke.
    Remote(String),
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidRange { t0, t1 } => {
                write!(
                    f,
                    "invalid history range [{t0}, {t1}): t1 must be greater than t0"
                )
            }
            Self::BelowRetention { t1, earliest } => write!(
                f,
                "history range ends at {t1}, at or below the earliest retained tick \
                 {earliest}; that history has been pruned"
            ),
            Self::NoStore => write!(f, "no history store attached to this ingest"),
            Self::UnknownPatient(p) => {
                write!(f, "patient {p} is not admitted and has no stored history")
            }
            Self::NoPatients => write!(f, "history query names no patients"),
            Self::Pipeline(m) => write!(f, "history pipeline failed to build: {m}"),
            Self::Execution(m) => write!(f, "history query execution failed: {m}"),
            Self::Store(m) => write!(f, "history store read failed: {m}"),
            Self::Remote(m) => write!(f, "remote history query failed: {m}"),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<std::io::Error> for HistoryError {
    fn from(e: std::io::Error) -> Self {
        Self::Store(e.to_string())
    }
}

/// A patient's live tail, overlaid on the durable tiers so a query sees
/// data newer than the last spill. Front ends produce these from their
/// running sessions; store-level callers pass `None`.
#[derive(Debug, Clone)]
pub struct LiveOverlay {
    /// The session's exported suffix.
    pub snapshot: SessionSnapshot,
    /// The live pipeline's source shapes (indexed by source).
    pub shapes: Vec<StreamShape>,
}

/// One retrospective run: range + cohort + pipeline, built fluently and
/// executed by any front end implementing the `HistoryQueryApi` trait
/// (cluster crate), or directly against a [`SharedStore`] via
/// [`run_with`](Self::run_with).
#[derive(Debug)]
pub struct HistoryQuery {
    range: (Tick, Tick),
    patients: Vec<u64>,
    warmup: Tick,
    spec: PipelineSpec,
}

impl Default for HistoryQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryQuery {
    /// A full-range query of the front end's live pipeline over no
    /// patients yet — add patients, and optionally a range and pipeline.
    pub fn new() -> Self {
        Self {
            range: (Tick::MIN, Tick::MAX),
            patients: Vec::new(),
            warmup: 0,
            spec: PipelineSpec::Live,
        }
    }

    /// Restricts the run to `[t0, t1)`. Segment files not overlapping the
    /// (margin-widened) range are skipped unopened; output is clipped to
    /// exactly the range. An inverted range fails execution with
    /// [`HistoryError::InvalidRange`].
    pub fn range(mut self, t0: Tick, t1: Tick) -> Self {
        self.range = (t0, t1);
        self
    }

    /// Adds one patient to the cohort.
    pub fn patient(mut self, patient: u64) -> Self {
        self.patients.push(patient);
        self
    }

    /// Adds patients to the cohort; results come back in this order.
    pub fn patients(mut self, patients: impl IntoIterator<Item = u64>) -> Self {
        self.patients.extend(patients);
        self
    }

    /// Replays this compiled pipeline instead of the live one. The same
    /// fluent `Query` builder and `compile()` used for live deployment is
    /// the whole logical-plan layer here too.
    pub fn pipeline(mut self, compiled: CompiledQuery) -> Self {
        self.spec = PipelineSpec::Compiled(compiled);
        self
    }

    /// Like [`pipeline`](Self::pipeline), but hands a factory so a
    /// parallel cohort fan-out can build one executor per worker.
    pub fn pipeline_factory(mut self, factory: QueryFactory) -> Self {
        self.spec = PipelineSpec::Factory(factory);
        self
    }

    /// Replays the pipeline registered on the serving side under `id`
    /// (`0` = the live pipeline) — the only pipeline form expressible
    /// over the wire.
    pub fn pipeline_id(mut self, id: u32) -> Self {
        self.spec = PipelineSpec::Registered(id);
        self
    }

    /// Widens the replay window `ticks` below `t0` *beyond* the
    /// lineage-derived margins. Lineage margins make windowed operators
    /// byte-identical automatically; warmup is the escape hatch for user
    /// `transform` closures carrying state the lineage system cannot see.
    pub fn warmup(mut self, ticks: Tick) -> Self {
        self.warmup = ticks.max(0);
        self
    }

    /// The requested `[t0, t1)` bounds.
    pub fn bounds(&self) -> (Tick, Tick) {
        self.range
    }

    /// True when no range was set (whole history).
    pub fn is_full_range(&self) -> bool {
        self.range == (Tick::MIN, Tick::MAX)
    }

    /// The cohort, in result order.
    pub fn patient_list(&self) -> &[u64] {
        &self.patients
    }

    /// The warmup widening in ticks.
    pub fn warmup_ticks(&self) -> Tick {
        self.warmup
    }

    /// The pipeline this query replays.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Decomposes the query for a front end to execute:
    /// `(range, patients, warmup, spec)`.
    pub fn into_parts(self) -> ((Tick, Tick), Vec<u64>, Tick, PipelineSpec) {
        (self.range, self.patients, self.warmup, self.spec)
    }

    /// Validates the range shape alone (no store consulted).
    ///
    /// # Errors
    /// [`HistoryError::InvalidRange`] when `t1 <= t0`.
    pub fn validate_range(t0: Tick, t1: Tick) -> Result<(), HistoryError> {
        if t1 <= t0 {
            return Err(HistoryError::InvalidRange { t0, t1 });
        }
        Ok(())
    }

    /// Validates the range against a store's retention floor.
    ///
    /// # Errors
    /// [`HistoryError::InvalidRange`] for an inverted range,
    /// [`HistoryError::BelowRetention`] when the range ends at or below
    /// the earliest retained tick, [`HistoryError::Store`] on I/O.
    pub fn validate_against(store: &SharedStore, t0: Tick, t1: Tick) -> Result<(), HistoryError> {
        Self::validate_range(t0, t1)?;
        if t1 != Tick::MAX {
            if let Some(earliest) = store.earliest_tick()? {
                if t1 <= earliest {
                    return Err(HistoryError::BelowRetention { t1, earliest });
                }
            }
        }
        Ok(())
    }

    /// Executes the query directly against a store, sequentially per
    /// patient, overlaying whatever live tail `live` supplies for each.
    /// This is the reference engine: ingest front ends fan the same
    /// per-patient work ([`run_patient_on`]) across their worker pools
    /// and must match this output byte for byte.
    ///
    /// Only [`PipelineSpec::Compiled`] and [`PipelineSpec::Factory`] can
    /// be resolved here; `Live`/`Registered` belong to a front end.
    ///
    /// # Errors
    /// Any [`HistoryError`]; the first failing patient aborts the cohort.
    pub fn run_with(
        self,
        store: &SharedStore,
        round_ticks: Tick,
        live: impl Fn(u64) -> Option<LiveOverlay>,
    ) -> Result<CohortReport, HistoryError> {
        let (range, patients, warmup, spec) = self.into_parts();
        if patients.is_empty() {
            return Err(HistoryError::NoPatients);
        }
        Self::validate_against(store, range.0, range.1)?;
        let compiled = match spec {
            PipelineSpec::Compiled(q) => q,
            PipelineSpec::Factory(f) => f().map_err(|e| HistoryError::Pipeline(e.to_string()))?,
            PipelineSpec::Live | PipelineSpec::Registered(_) => {
                return Err(HistoryError::Pipeline(
                    "Live/Registered pipelines resolve at an ingest front end; hand a \
                     compiled pipeline or factory to a store-level query"
                        .into(),
                ))
            }
        };
        let shapes = compiled.source_shapes();
        let empty: Vec<SignalData> = shapes
            .iter()
            .map(|&s| SignalData::dense(s, Vec::new()))
            .collect();
        let mut exec = compiled
            .executor_with(empty, ExecOptions::default().with_round_ticks(round_ticks))
            .map_err(|e| HistoryError::Pipeline(e.to_string()))?;
        let mut outputs = Vec::with_capacity(patients.len());
        for &p in &patients {
            let overlay = live(p);
            let out = run_patient_on(
                &mut exec,
                store,
                p,
                &shapes,
                range,
                warmup,
                overlay.as_ref(),
            )?;
            outputs.push((p, out));
        }
        Ok(CohortReport::new(range, outputs))
    }
}

/// Replays one patient's history on a prepared executor (built from the
/// query's pipeline with empty sources, or recycled from the previous
/// patient). This is the per-patient unit of work ingest front ends fan
/// out across workers; [`HistoryQuery::run_with`] is the sequential
/// composition of it.
///
/// The read window is `[t0 - back - warmup, t1 + fwd)` where `back`/`fwd`
/// are the executor's lineage margins; segment files outside it are
/// skipped by the range index, inputs are clipped to it (so round
/// activity inside the window matches the full run exactly), and the
/// collected output is clipped to `[t0, t1)`.
///
/// # Errors
/// [`HistoryError::UnknownPatient`] when there is neither stored history
/// nor a live overlay; `Store`/`Execution` for read and replay failures.
pub fn run_patient_on(
    exec: &mut Executor,
    store: &SharedStore,
    patient: u64,
    shapes: &[StreamShape],
    range: (Tick, Tick),
    warmup: Tick,
    live: Option<&LiveOverlay>,
) -> Result<OutputCollector, HistoryError> {
    let (t0, t1) = range;
    let full = (t0, t1) == (Tick::MIN, Tick::MAX);
    let (q_lo, q_hi) = if full {
        (Tick::MIN, Tick::MAX)
    } else {
        let back = exec.history_margins().into_iter().max().unwrap_or(0).max(0);
        let fwd = exec.future_margins().into_iter().max().unwrap_or(0).max(0);
        (
            t0.saturating_sub(back).saturating_sub(warmup),
            t1.saturating_add(fwd),
        )
    };
    let records = store
        .records_for_range(patient, q_lo, q_hi)
        .map_err(|e| HistoryError::Store(e.to_string()))?;
    // A pipeline with a different source layout than the live one runs
    // over the durable tiers only — its shapes cannot absorb the live
    // suffix.
    let overlay = live.filter(|o| o.shapes.len() == shapes.len());
    if records.is_empty() && overlay.is_none() {
        return Err(HistoryError::UnknownPatient(patient));
    }
    let reader = HistoryReader::from_records(records);
    let mut datasets = reader
        .stitch(patient, shapes, overlay.map(|o| &o.snapshot))
        .map_err(HistoryError::Execution)?;
    if !full {
        // Clip every source to the same margin-widened window: presence
        // inside it is then identical to the full-history run's, so
        // round-skipping decisions (which clear kernel state) agree too.
        datasets = datasets
            .into_iter()
            .map(|d| d.clipped(q_lo, q_hi))
            .collect();
    }
    exec.recycle(datasets)
        .map_err(|e| HistoryError::Execution(e.to_string()))?;
    let out = catch_unwind(AssertUnwindSafe(|| exec.run_collect()))
        .map_err(|p| HistoryError::Execution(panic_text(&p)))?
        .map_err(|e| HistoryError::Execution(e.to_string()))?;
    Ok(if full { out } else { out.clipped(t0, t1) })
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("history pipeline panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("history pipeline panicked: {s}")
    } else {
        "history pipeline panicked".into()
    }
}

/// Per-patient results of one cohort scan, in the order the query named
/// the patients.
#[derive(Debug, Clone)]
pub struct CohortReport {
    range: (Tick, Tick),
    outputs: Vec<(u64, OutputCollector)>,
}

impl CohortReport {
    /// Assembles a report (front ends build these from fanned-out runs).
    pub fn new(range: (Tick, Tick), outputs: Vec<(u64, OutputCollector)>) -> Self {
        Self { range, outputs }
    }

    /// The `[t0, t1)` bounds the cohort ran over.
    pub fn bounds(&self) -> (Tick, Tick) {
        self.range
    }

    /// Number of patients in the report.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when the report holds no patients.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The per-patient outputs, in query order.
    pub fn outputs(&self) -> &[(u64, OutputCollector)] {
        &self.outputs
    }

    /// One patient's output, if present.
    pub fn output_for(&self, patient: u64) -> Option<&OutputCollector> {
        self.outputs
            .iter()
            .find(|(p, _)| *p == patient)
            .map(|(_, o)| o)
    }

    /// Consumes the report into its outputs.
    pub fn into_outputs(self) -> Vec<(u64, OutputCollector)> {
        self.outputs
    }

    /// Consumes a single-patient report into its one output.
    ///
    /// # Errors
    /// [`HistoryError::NoPatients`] when the report is empty.
    pub fn into_single(self) -> Result<OutputCollector, HistoryError> {
        self.outputs
            .into_iter()
            .next()
            .map(|(_, o)| o)
            .ok_or(HistoryError::NoPatients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_range_is_a_named_error() {
        assert_eq!(
            HistoryQuery::validate_range(50, 50),
            Err(HistoryError::InvalidRange { t0: 50, t1: 50 })
        );
        let msg = HistoryError::InvalidRange { t0: 50, t1: 10 }.to_string();
        assert_eq!(
            msg,
            "invalid history range [50, 10): t1 must be greater than t0"
        );
    }

    #[test]
    fn builder_accumulates() {
        let q = HistoryQuery::new()
            .range(10, 90)
            .patient(1)
            .patients([2, 3])
            .warmup(40)
            .pipeline_id(7);
        assert_eq!(q.bounds(), (10, 90));
        assert_eq!(q.patient_list(), &[1, 2, 3]);
        assert_eq!(q.warmup_ticks(), 40);
        assert!(matches!(q.spec(), PipelineSpec::Registered(7)));
        assert!(!q.is_full_range());
        assert!(HistoryQuery::new().is_full_range());
    }
}
