//! The on-disk segment format.
//!
//! A segment is an append-only, immutable file holding one or more
//! *records*, each a retired `(patient, source, time-range)` sample span.
//! Like the cluster wire codec, everything is length-prefixed
//! little-endian, hostile-input-guarded, and locked by golden-byte
//! fixtures (`tests/golden.rs`) — the format is a compatibility surface,
//! not an implementation detail.
//!
//! ```text
//! file    := magic "LSSG" | version u8 (=1) | record*
//! record  := len u32 | payload[len]           -- len covers the payload
//! payload := patient u64
//!            source  u32
//!            offset  i64 | period i64         -- the stream grid (shape)
//!            base_slot u64                    -- grid slot of values[0]
//!            n_values u32 | f32 × n_values    -- IEEE-754 bit patterns
//!            n_ranges u32 | (i64, i64) × n_ranges -- presence [start, end)
//!            crc u32                          -- CRC-32/IEEE of payload[..len-4]
//! ```
//!
//! Records are self-describing (they carry their own shape), so a reader
//! needs no external schema, and the dense-values + presence-ranges layout
//! is exactly [`SignalData`](lifestream_core::SignalData)'s convention —
//! stitching segments back into an executor-ready dataset is a copy, not
//! a transformation.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use lifestream_core::time::{StreamShape, Tick};

/// File magic: first four bytes of every segment.
pub const SEGMENT_MAGIC: [u8; 4] = *b"LSSG";
/// Current (and only) format version.
pub const SEGMENT_VERSION: u8 = 1;
/// Hard cap on a single record's payload — a hostile length prefix cannot
/// make the reader allocate more than this.
pub const MAX_RECORD: usize = 64 * 1024 * 1024;

/// One retired sample span as stored in a segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRecord {
    /// Owning patient.
    pub patient: u64,
    /// Source index within the patient's pipeline.
    pub source: u32,
    /// The source's grid shape (offset, period).
    pub shape: StreamShape,
    /// Grid-slot index of `values[0]` on the stream grid.
    pub base_slot: u64,
    /// Dense sample span (absent slots hold garbage masked by `ranges`).
    pub values: Vec<f32>,
    /// Presence ranges, `[start, end)` tick pairs on the grid.
    pub ranges: Vec<(Tick, Tick)>,
}

impl SegmentRecord {
    /// Number of present samples in the span.
    pub fn present_samples(&self) -> usize {
        self.ranges
            .iter()
            .map(|&(s, e)| ((e - s) / self.shape.period()) as usize)
            .sum()
    }

    /// Largest presence end tick, or the grid offset when empty.
    pub fn end_tick(&self) -> Tick {
        self.ranges
            .iter()
            .map(|&(_, e)| e)
            .max()
            .unwrap_or(self.shape.offset())
    }

    /// Smallest presence start tick, or the grid offset when empty.
    /// Together with [`end_tick`](Self::end_tick) this is the span's
    /// coverage interval — what the store's file-name range index and
    /// time-range pruning are built from.
    pub fn start_tick(&self) -> Tick {
        self.ranges
            .iter()
            .map(|&(s, _)| s)
            .min()
            .unwrap_or(self.shape.offset())
    }

    /// True when the span's coverage overlaps `[t0, t1)`.
    pub fn overlaps(&self, t0: Tick, t1: Tick) -> bool {
        self.start_tick() < t1 && self.end_tick() > t0
    }
}

/// CRC-32/IEEE (reflected, poly `0xEDB88320`) — the same checksum zlib and
/// Ethernet use; hand-rolled because the build environment is offline.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes one record as its length-prefixed on-disk form.
pub fn encode_record(r: &SegmentRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(44 + r.values.len() * 4 + r.ranges.len() * 16);
    put_u64(&mut payload, r.patient);
    put_u32(&mut payload, r.source);
    put_i64(&mut payload, r.shape.offset());
    put_i64(&mut payload, r.shape.period());
    put_u64(&mut payload, r.base_slot);
    put_u32(&mut payload, r.values.len() as u32);
    for &v in &r.values {
        put_u32(&mut payload, v.to_bits());
    }
    put_u32(&mut payload, r.ranges.len() as u32);
    for &(s, e) in &r.ranges {
        put_i64(&mut payload, s);
        put_i64(&mut payload, e);
    }
    let crc = crc32(&payload);
    put_u32(&mut payload, crc);
    let mut out = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Bounds-checked little-endian reader over a record payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("segment record truncated".into());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Hostile-count guard: a claimed element count must fit in the bytes
    /// actually remaining, or a forged prefix could demand a huge
    /// allocation before the decode fails.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n * min_elem_bytes > self.buf.len() - self.pos {
            return Err(format!(
                "segment record claims {n} elements but is too short"
            ));
        }
        Ok(n)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decodes one record payload (the bytes after the length prefix),
/// verifying the trailing CRC.
pub fn decode_record(payload: &[u8]) -> Result<SegmentRecord, String> {
    if payload.len() < 4 {
        return Err("segment record shorter than its checksum".into());
    }
    let (body, crc_bytes) = payload.split_at(payload.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let got = crc32(body);
    if want != got {
        return Err(format!(
            "segment record checksum mismatch (stored {want:#010x}, computed {got:#010x})"
        ));
    }
    let mut c = Cursor::new(body);
    let patient = c.u64()?;
    let source = c.u32()?;
    let offset = c.i64()?;
    let period = c.i64()?;
    if period <= 0 {
        return Err(format!("segment record has non-positive period {period}"));
    }
    let base_slot = c.u64()?;
    let n_values = c.count(4)?;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        values.push(f32::from_bits(c.u32()?));
    }
    let n_ranges = c.count(16)?;
    let mut ranges = Vec::with_capacity(n_ranges);
    for _ in 0..n_ranges {
        let s = c.i64()?;
        let e = c.i64()?;
        if e <= s {
            return Err(format!(
                "segment record has empty presence range [{s}, {e})"
            ));
        }
        ranges.push((s, e));
    }
    if !c.done() {
        return Err("segment record has trailing bytes".into());
    }
    Ok(SegmentRecord {
        patient,
        source,
        shape: StreamShape::new(offset, period),
        base_slot,
        values,
        ranges,
    })
}

/// Writes a complete segment file atomically: encode to a `.tmp` sibling,
/// fsync, then rename into place. Readers never observe a torn segment.
pub fn write_segment(path: &Path, records: &[SegmentRecord]) -> io::Result<()> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.push(SEGMENT_VERSION);
    for r in records {
        bytes.extend_from_slice(&encode_record(r));
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Reads and fully validates a segment file.
///
/// # Errors
/// Any structural problem — bad magic, unknown version, truncated or
/// oversized record, checksum mismatch — is an `InvalidData` error; a
/// segment is either wholly valid or rejected.
pub fn read_segment(path: &Path) -> io::Result<Vec<SegmentRecord>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    parse_segment(&bytes).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Parses a whole segment image (exposed for golden-byte tests).
pub fn parse_segment(bytes: &[u8]) -> Result<Vec<SegmentRecord>, String> {
    if bytes.len() < 5 {
        return Err("segment shorter than its header".into());
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err("bad segment magic".into());
    }
    if bytes[4] != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {}", bytes[4]));
    }
    let mut records = Vec::new();
    let mut pos = 5;
    while pos < bytes.len() {
        if bytes.len() - pos < 4 {
            return Err("trailing bytes where a record length was expected".into());
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if len > MAX_RECORD {
            return Err(format!(
                "record length {len} exceeds the {MAX_RECORD}-byte cap"
            ));
        }
        if bytes.len() - pos < len {
            return Err("segment ends mid-record".into());
        }
        records.push(decode_record(&bytes[pos..pos + len])?);
        pos += len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> SegmentRecord {
        SegmentRecord {
            patient: 7,
            source: 1,
            shape: StreamShape::new(0, 2),
            base_slot: 5,
            values: vec![1.5, -2.0, 0.0, 3.25],
            ranges: vec![(10, 14), (16, 18)],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = sample_record();
        let bytes = encode_record(&r);
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(decode_record(&bytes[4..]).unwrap(), r);
    }

    #[test]
    fn checksum_detects_corruption() {
        let bytes = encode_record(&sample_record());
        for flip in [4usize, 12, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x01;
            let err = decode_record(&bad[4..]).unwrap_err();
            assert!(err.contains("checksum"), "flip at {flip}: {err}");
        }
    }

    #[test]
    fn hostile_counts_are_rejected() {
        let r = sample_record();
        let mut bytes = encode_record(&r);
        // Forge the value count (payload offset 4 + 36) to something huge,
        // then re-seal the CRC so only the count guard can object.
        let n_off = 4 + 36;
        bytes[n_off..n_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[4..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_record(&bytes[4..]).unwrap_err();
        assert!(err.contains("too short"), "err: {err}");
    }

    #[test]
    fn file_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("lss-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.lss");
        let records = vec![sample_record(), {
            let mut r = sample_record();
            r.patient = 9;
            r
        }];
        write_segment(&path, &records).unwrap();
        assert_eq!(read_segment(&path).unwrap(), records);
        // Truncate mid-record: reader rejects the whole file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
