//! # lifestream-bench
//!
//! Shared machinery for the benchmark harness: dataset construction,
//! timing, table rendering, and workload runners. Every benchmarked
//! query is defined exactly once as a
//! [`Workload`](lifestream::engine::Workload) — the per-engine runner
//! functions are thin wrappers that dispatch the shared definition
//! through the [`Engine`](lifestream::engine::Engine) trait.
//! Each paper table/figure has a binary in `src/bin/` that prints the
//! same rows/series the paper reports; Criterion benches in `benches/`
//! cover the micro-level comparisons.
//!
//! All workload sizes scale with the `LS_SCALE` environment variable
//! (default 1.0) so CI can run quick passes while full runs regenerate
//! paper-sized workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use lifestream::engine::{
    Engine, EngineError, EngineOptions, LifeStreamEngine, NumLibEngine, TableOp, TrillEngine,
    Workload,
};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::pipeline as lspipe;
use lifestream_core::source::SignalData;
use lifestream_core::time::Tick;
use lifestream_signal::dataset::{DatasetBuilder, SignalKind};

/// Times a closure, returning `(result, seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Workload scale factor from `LS_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("LS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a minute count by [`scale`], with a floor of 1.
pub fn scaled_minutes(base: i64) -> i64 {
    ((base as f64 * scale()).round() as i64).max(1)
}

/// A simple aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i.min(widths.len() - 1)]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// The paper's synthetic dataset: `minutes` of 1000 Hz random values.
pub fn synthetic_1khz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Random, seed)
        .minutes(minutes)
        .build(1000.0)
}

/// A second synthetic stream at 500 Hz for join benchmarks.
pub fn synthetic_500hz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Random, seed)
        .minutes(minutes)
        .build(500.0)
}

/// Real-like 500 Hz ECG (dense — operation benchmarks use the gap-free
/// portion).
pub fn ecg_500hz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Ecg, seed)
        .minutes(minutes)
        .build(500.0)
}

/// Real-like 125 Hz ABP (dense).
pub fn abp_125hz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Abp, seed)
        .minutes(minutes)
        .build(125.0)
}

/// Default processing window (the paper's 1-minute benchmark default).
pub const WINDOW_1MIN: Tick = 60_000;

/// Which primitive micro-benchmark to run (Fig. 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Payload projection.
    Select,
    /// Predicate filter.
    Where,
    /// 100 ms tumbling mean.
    Aggregate,
    /// Interval chopping.
    Chop,
    /// As-of join with a 100 Hz stream.
    ClipJoin,
    /// Temporal inner join with a 500 Hz stream.
    Join,
}

impl Primitive {
    /// All primitives, in the paper's Fig. 9a order.
    pub fn all() -> [Primitive; 6] {
        [
            Primitive::Select,
            Primitive::Where,
            Primitive::Aggregate,
            Primitive::Chop,
            Primitive::ClipJoin,
            Primitive::Join,
        ]
    }

    /// Display name — delegated to the shared workload definition so
    /// bench labels and engine names cannot drift apart.
    pub fn name(&self) -> &'static str {
        self.workload().name()
    }

    /// The shared [`Workload`] this primitive benchmarks — the single
    /// definition point every engine runs (Fig. 9a).
    pub fn workload(&self) -> Workload {
        match self {
            Primitive::Select => Workload::Select { mul: 2.0, add: 1.0 },
            Primitive::Where => Workload::WhereGt { threshold: 50.0 },
            Primitive::Aggregate => Workload::Aggregate {
                kind: AggKind::Mean,
                window: 100,
                stride: 100,
            },
            Primitive::Chop => Workload::Chop {
                duration: 5,
                boundary: 5,
            },
            Primitive::ClipJoin => Workload::ClipJoin,
            Primitive::Join => Workload::Join,
        }
    }
}

/// Runs a shared workload on one engine with the benchmark defaults
/// (1-minute processing rounds); returns output events. Takes the
/// inputs by value so timed benchmark loops pay exactly one dataset
/// copy.
pub fn run_workload(engine: &dyn Engine, workload: &Workload, inputs: Vec<SignalData>) -> u64 {
    engine
        .run(
            workload,
            inputs,
            &EngineOptions::default().with_round_ticks(WINDOW_1MIN),
        )
        .unwrap_or_else(|e| panic!("{} on {}: {e}", engine.name(), workload.name()))
        .output_events
}

fn primitive_inputs(p: Primitive, data: &SignalData, side: Option<&SignalData>) -> Vec<SignalData> {
    match p {
        Primitive::ClipJoin | Primitive::Join => {
            vec![data.clone(), side.expect("side stream").clone()]
        }
        _ => vec![data.clone()],
    }
}

/// Runs one primitive on LifeStream; returns output events.
pub fn lifestream_primitive(p: Primitive, data: &SignalData, side: Option<&SignalData>) -> u64 {
    run_workload(
        &LifeStreamEngine,
        &p.workload(),
        primitive_inputs(p, data, side),
    )
}

/// Runs one primitive on the Trill baseline; returns output events.
pub fn trill_primitive(p: Primitive, data: &SignalData, side: Option<&SignalData>) -> u64 {
    run_workload(&TrillEngine, &p.workload(), primitive_inputs(p, data, side))
}

/// Which Table 3 operation to run (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Standard-score normalization.
    Normalize,
    /// FIR frequency filter (31 taps).
    PassFilter,
    /// Constant gap fill.
    FillConst,
    /// Mean gap fill.
    FillMean,
    /// Linear-interpolation resample 500 Hz → 125 Hz grid and back up.
    Resample,
}

impl Operation {
    /// All operations, in the paper's Fig. 9b order.
    pub fn all() -> [Operation; 5] {
        [
            Operation::Normalize,
            Operation::PassFilter,
            Operation::FillConst,
            Operation::FillMean,
            Operation::Resample,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Operation::Normalize => "Normalize",
            Operation::PassFilter => "PassFilter",
            Operation::FillConst => "FillConst",
            Operation::FillMean => "FillMean",
            Operation::Resample => "Resample",
        }
    }

    /// The shared [`Workload`] this operation benchmarks over a stream
    /// of the given `period` — the single definition point every engine
    /// runs (Fig. 9b).
    pub fn workload(&self, period: Tick) -> Workload {
        let op = match self {
            Operation::Normalize => TableOp::Normalize,
            Operation::PassFilter => TableOp::PassFilter { taps: bench_taps() },
            Operation::FillConst => TableOp::FillConst { value: 0.0 },
            Operation::FillMean => TableOp::FillMean,
            Operation::Resample => TableOp::Resample {
                new_period: period * 4,
            },
        };
        Workload::Operation { op, window: 1000 }
    }
}

/// FIR taps used by every PassFilter benchmark.
pub fn bench_taps() -> Vec<f32> {
    lspipe::fir_lowpass(31, 0.1)
}

/// Runs one Table 3 operation on LifeStream; returns output events.
pub fn lifestream_operation(op: Operation, data: &SignalData) -> u64 {
    run_workload(
        &LifeStreamEngine,
        &op.workload(data.shape().period()),
        vec![data.clone()],
    )
}

/// Runs one Table 3 operation on the Trill baseline; returns output
/// events.
pub fn trill_operation(op: Operation, data: &SignalData) -> u64 {
    run_workload(
        &TrillEngine,
        &op.workload(data.shape().period()),
        vec![data.clone()],
    )
}

/// Runs one Table 3 operation on the NumLib baseline; returns output
/// samples (whole-array accounting, NaN slots included).
pub fn numlib_operation(op: Operation, data: &SignalData) -> u64 {
    run_workload(
        &NumLibEngine,
        &op.workload(data.shape().period()),
        vec![data.clone()],
    )
}

/// The Fig. 3 end-to-end workload (1-second processing windows).
pub fn e2e_workload() -> Workload {
    Workload::Fig3 { window: 1000 }
}

/// Runs the Fig. 3 end-to-end pipeline on LifeStream.
///
/// Returns `(output_events, input_events)`.
pub fn lifestream_e2e(ecg: &SignalData, abp: &SignalData, round: Tick) -> (u64, u64) {
    let out = LifeStreamEngine
        .run(
            &e2e_workload(),
            vec![ecg.clone(), abp.clone()],
            &EngineOptions::default().with_round_ticks(round),
        )
        .expect("lifestream e2e");
    (out.output_events, out.input_events)
}

/// Runs the Fig. 3 end-to-end pipeline on the Trill baseline.
///
/// Returns `Ok(output_events)` or the OOM error.
pub fn trill_e2e(ecg: &SignalData, abp: &SignalData, cap_bytes: usize) -> Result<u64, EngineError> {
    TrillEngine
        .run(
            &e2e_workload(),
            vec![ecg.clone(), abp.clone()],
            &EngineOptions::default().with_memory_cap(cap_bytes),
        )
        .map(|o| o.output_events)
}

/// Runs the Fig. 3 end-to-end pipeline on the NumLib baseline.
pub fn numlib_e2e(ecg: &SignalData, abp: &SignalData) -> u64 {
    NumLibEngine
        .run(
            &e2e_workload(),
            vec![ecg.clone(), abp.clone()],
            &EngineOptions::default(),
        )
        .expect("numlib e2e")
        .output_events
}

/// Builds the Listing-1 style join pair used by Table 1: 500 Hz and
/// 200 Hz synthetic streams.
pub fn table1_join_pair(minutes: i64, seed: u64) -> (SignalData, SignalData) {
    let a = DatasetBuilder::new(SignalKind::Random, seed)
        .minutes(minutes)
        .build(500.0);
    let b = DatasetBuilder::new(SignalKind::Random, seed + 1)
        .minutes(minutes)
        .build(200.0);
    (a, b)
}

/// The Table 1 upsample workload: linear-interpolation resample onto a
/// 500 Hz (period-2) grid.
pub fn upsample_workload() -> Workload {
    Workload::Operation {
        op: TableOp::Resample { new_period: 2 },
        window: 1000,
    }
}

/// LifeStream temporal join for Table 1; returns output events.
pub fn lifestream_join(l: &SignalData, r: &SignalData) -> u64 {
    run_workload(
        &LifeStreamEngine,
        &Workload::Join,
        vec![l.clone(), r.clone()],
    )
}

/// LifeStream upsample (125 Hz → 500 Hz) for Table 1.
pub fn lifestream_upsample(data: &SignalData) -> u64 {
    run_workload(&LifeStreamEngine, &upsample_workload(), vec![data.clone()])
}

/// Trill temporal join for Table 1.
pub fn trill_join(l: &SignalData, r: &SignalData) -> u64 {
    run_workload(&TrillEngine, &Workload::Join, vec![l.clone(), r.clone()])
}

/// Trill upsample for Table 1.
pub fn trill_upsample(data: &SignalData) -> u64 {
    run_workload(&TrillEngine, &upsample_workload(), vec![data.clone()])
}

/// SciPy-style upsample for Table 1 (whole-array linear interpolation).
pub fn numlib_upsample(data: &SignalData) -> u64 {
    run_workload(&NumLibEngine, &upsample_workload(), vec![data.clone()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn primitives_run_on_both_engines() {
        let data = synthetic_1khz(1, 1);
        let side = synthetic_500hz(1, 2);
        for p in Primitive::all() {
            let ls = lifestream_primitive(p, &data, Some(&side));
            let tr = trill_primitive(p, &data, Some(&side));
            assert!(ls > 0, "{} lifestream empty", p.name());
            assert!(tr > 0, "{} trill empty", p.name());
        }
    }

    #[test]
    fn join_primitive_agrees_across_engines() {
        let data = synthetic_1khz(1, 1);
        let side = synthetic_500hz(1, 2);
        let ls = lifestream_primitive(Primitive::Join, &data, Some(&side));
        let tr = trill_primitive(Primitive::Join, &data, Some(&side));
        assert_eq!(ls, tr);
    }

    #[test]
    fn operations_run_on_all_engines() {
        let data = ecg_500hz(1, 3);
        for op in Operation::all() {
            assert!(lifestream_operation(op, &data) > 0, "{}", op.name());
            assert!(trill_operation(op, &data) > 0, "{}", op.name());
            assert!(numlib_operation(op, &data) > 0, "{}", op.name());
        }
    }

    #[test]
    fn e2e_runs_on_all_engines() {
        let ecg = ecg_500hz(2, 5);
        let abp = abp_125hz(2, 6);
        let (ls, _) = lifestream_e2e(&ecg, &abp, WINDOW_1MIN);
        let tr = trill_e2e(&ecg, &abp, 1 << 30).expect("trill e2e");
        let nl = numlib_e2e(&ecg, &abp);
        assert!(ls > 0 && tr > 0 && nl > 0);
        // Engines implement the same pipeline; outputs agree within a few
        // percent (boundary semantics differ slightly at window edges).
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / a as f64;
        assert!(rel(ls, tr) < 0.1, "ls {ls} tr {tr}");
        assert!(rel(ls, nl) < 0.1, "ls {ls} nl {nl}");
    }

    #[test]
    fn table1_runners_produce_output() {
        let (l, r) = table1_join_pair(1, 7);
        assert!(lifestream_join(&l, &r) > 0);
        assert!(trill_join(&l, &r) > 0);
        let abp = abp_125hz(1, 8);
        assert!(lifestream_upsample(&abp) > 0);
        assert!(trill_upsample(&abp) > 0);
        assert!(numlib_upsample(&abp) > 0);
    }
}
