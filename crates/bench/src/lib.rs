//! # lifestream-bench
//!
//! Shared machinery for the benchmark harness: dataset construction,
//! timing, table rendering, and one runner per (engine × query) pair.
//! Each paper table/figure has a binary in `src/bin/` that prints the
//! same rows/series the paper reports; Criterion benches in `benches/`
//! cover the micro-level comparisons.
//!
//! All workload sizes scale with the `LS_SCALE` environment variable
//! (default 1.0) so CI can run quick passes while full runs regenerate
//! paper-sized workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::join::JoinKind;
use lifestream_core::pipeline as lspipe;
use lifestream_core::query::QueryBuilder;
use lifestream_core::source::SignalData;
use lifestream_core::time::Tick;
use lifestream_signal::dataset::{DatasetBuilder, SignalKind};
use trill_baseline::pipelines as tpipe;
use trill_baseline::TrillPipeline;

/// Times a closure, returning `(result, seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Workload scale factor from `LS_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("LS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a minute count by [`scale`], with a floor of 1.
pub fn scaled_minutes(base: i64) -> i64 {
    ((base as f64 * scale()).round() as i64).max(1)
}

/// A simple aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i.min(widths.len() - 1)]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// The paper's synthetic dataset: `minutes` of 1000 Hz random values.
pub fn synthetic_1khz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Random, seed)
        .minutes(minutes)
        .build(1000.0)
}

/// A second synthetic stream at 500 Hz for join benchmarks.
pub fn synthetic_500hz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Random, seed)
        .minutes(minutes)
        .build(500.0)
}

/// Real-like 500 Hz ECG (dense — operation benchmarks use the gap-free
/// portion).
pub fn ecg_500hz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Ecg, seed)
        .minutes(minutes)
        .build(500.0)
}

/// Real-like 125 Hz ABP (dense).
pub fn abp_125hz(minutes: i64, seed: u64) -> SignalData {
    DatasetBuilder::new(SignalKind::Abp, seed)
        .minutes(minutes)
        .build(125.0)
}

/// Default processing window (the paper's 1-minute benchmark default).
pub const WINDOW_1MIN: Tick = 60_000;

/// Which primitive micro-benchmark to run (Fig. 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Payload projection.
    Select,
    /// Predicate filter.
    Where,
    /// 100 ms tumbling mean.
    Aggregate,
    /// Interval chopping.
    Chop,
    /// As-of join with a 100 Hz stream.
    ClipJoin,
    /// Temporal inner join with a 500 Hz stream.
    Join,
}

impl Primitive {
    /// All primitives, in the paper's Fig. 9a order.
    pub fn all() -> [Primitive; 6] {
        [
            Primitive::Select,
            Primitive::Where,
            Primitive::Aggregate,
            Primitive::Chop,
            Primitive::ClipJoin,
            Primitive::Join,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Primitive::Select => "Select",
            Primitive::Where => "Where",
            Primitive::Aggregate => "Aggregate",
            Primitive::Chop => "Chop",
            Primitive::ClipJoin => "ClipJoin",
            Primitive::Join => "Join",
        }
    }
}

/// Runs one primitive on LifeStream; returns output events.
pub fn lifestream_primitive(p: Primitive, data: &SignalData, side: Option<&SignalData>) -> u64 {
    let mut qb = QueryBuilder::new();
    let src = qb.source("main", data.shape());
    let out = match p {
        Primitive::Select => qb.select_map(src, |v| v * 2.0 + 1.0),
        Primitive::Where => qb.where_(src, |v| v[0] > 50.0).expect("where"),
        Primitive::Aggregate => qb
            .aggregate(src, AggKind::Mean, 100, 100)
            .expect("aggregate"),
        Primitive::Chop => {
            let d = qb.alter_duration(src, 5).expect("alter_duration");
            qb.chop(d, 5).expect("chop")
        }
        Primitive::ClipJoin | Primitive::Join => {
            let other = qb.source("side", side.expect("side stream").shape());
            match p {
                Primitive::ClipJoin => qb.clip_join(src, other).expect("clip_join"),
                _ => qb.join(src, other, JoinKind::Inner).expect("join"),
            }
        }
    };
    qb.sink(out);
    let sources = match p {
        Primitive::ClipJoin | Primitive::Join => {
            vec![data.clone(), side.expect("side stream").clone()]
        }
        _ => vec![data.clone()],
    };
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(sources, ExecOptions::default().with_round_ticks(WINDOW_1MIN))
        .expect("executor");
    exec.run().expect("run").output_events
}

/// Runs one primitive on the Trill baseline; returns output events.
pub fn trill_primitive(p: Primitive, data: &SignalData, side: Option<&SignalData>) -> u64 {
    let mut tp = TrillPipeline::new();
    let src = tp.source(data.shape());
    let out = match p {
        Primitive::Select => tp.select(src, 1, |i, o| o[0] = i[0] * 2.0 + 1.0),
        Primitive::Where => tp.where_(src, |v| v[0] > 50.0),
        Primitive::Aggregate => tp.aggregate(src, AggKind::Mean, 100, 100),
        Primitive::Chop => {
            let d = tp.select(src, 1, |i, o| o[0] = i[0]); // payload pass
            let c = tp.chop(d, 5);
            c
        }
        Primitive::ClipJoin | Primitive::Join => {
            let other = tp.source(side.expect("side stream").shape());
            match p {
                Primitive::ClipJoin => tp.clip_join(src, other),
                _ => tp.join(src, other),
            }
        }
    };
    tp.sink(out);
    let sources = match p {
        Primitive::ClipJoin | Primitive::Join => {
            vec![data.clone(), side.expect("side stream").clone()]
        }
        _ => vec![data.clone()],
    };
    tp.run(sources).expect("trill run").output_events
}

/// Which Table 3 operation to run (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Standard-score normalization.
    Normalize,
    /// FIR frequency filter (31 taps).
    PassFilter,
    /// Constant gap fill.
    FillConst,
    /// Mean gap fill.
    FillMean,
    /// Linear-interpolation resample 500 Hz → 125 Hz grid and back up.
    Resample,
}

impl Operation {
    /// All operations, in the paper's Fig. 9b order.
    pub fn all() -> [Operation; 5] {
        [
            Operation::Normalize,
            Operation::PassFilter,
            Operation::FillConst,
            Operation::FillMean,
            Operation::Resample,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Operation::Normalize => "Normalize",
            Operation::PassFilter => "PassFilter",
            Operation::FillConst => "FillConst",
            Operation::FillMean => "FillMean",
            Operation::Resample => "Resample",
        }
    }
}

/// FIR taps used by every PassFilter benchmark.
pub fn bench_taps() -> Vec<f32> {
    lspipe::fir_lowpass(31, 0.1)
}

/// Runs one Table 3 operation on LifeStream; returns output events.
pub fn lifestream_operation(op: Operation, data: &SignalData) -> u64 {
    let mut qb = QueryBuilder::new();
    let src = qb.source("sig", data.shape());
    let out = match op {
        Operation::Normalize => lspipe::normalize(&mut qb, src, 1000).expect("normalize"),
        Operation::PassFilter => {
            lspipe::pass_filter(&mut qb, src, 1000, bench_taps()).expect("pass_filter")
        }
        Operation::FillConst => lspipe::fill_const(&mut qb, src, 1000, 0.0).expect("fill_const"),
        Operation::FillMean => lspipe::fill_mean(&mut qb, src, 1000).expect("fill_mean"),
        Operation::Resample => {
            lspipe::resample(&mut qb, src, data.shape().period() * 4, 1000).expect("resample")
        }
    };
    qb.sink(out);
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(
            vec![data.clone()],
            ExecOptions::default().with_round_ticks(WINDOW_1MIN),
        )
        .expect("executor");
    exec.run().expect("run").output_events
}

/// Runs one Table 3 operation on the Trill baseline; returns output
/// events.
pub fn trill_operation(op: Operation, data: &SignalData) -> u64 {
    let mut tp = TrillPipeline::new();
    let src = tp.source(data.shape());
    let p = data.shape().period();
    let out = match op {
        Operation::Normalize => tpipe::normalize(&mut tp, src, 1000),
        Operation::PassFilter => tpipe::pass_filter(&mut tp, src, 1000, bench_taps()),
        Operation::FillConst => tpipe::fill_const(&mut tp, src, 1000, p, 0.0),
        Operation::FillMean => tpipe::fill_mean(&mut tp, src, 1000, p),
        Operation::Resample => tpipe::resample(&mut tp, src, 1000, p * 4),
    };
    tp.sink(out);
    tp.run(vec![data.clone()]).expect("trill run").output_events
}

/// Runs one Table 3 operation on the NumLib baseline; returns output
/// samples.
pub fn numlib_operation(op: Operation, data: &SignalData) -> u64 {
    use numlib_baseline::ops as nops;
    let p = data.shape().period();
    let w = (1000 / p).max(1) as usize;
    let arr = nops::to_nan_array(data);
    match op {
        Operation::Normalize => nops::normalize_windows(&arr, w).len() as u64,
        Operation::PassFilter => nops::fir_filter(&arr, &bench_taps()).len() as u64,
        Operation::FillConst => nops::fill_const(&arr, 0.0).len() as u64,
        Operation::FillMean => nops::fill_mean(&arr, w).len() as u64,
        Operation::Resample => nops::resample_linear(&arr, p, p * 4).1.len() as u64,
    }
}

/// Runs the Fig. 3 end-to-end pipeline on LifeStream.
///
/// Returns `(output_events, input_events)`.
pub fn lifestream_e2e(ecg: &SignalData, abp: &SignalData, round: Tick) -> (u64, u64) {
    let qb = lspipe::fig3_pipeline(ecg.shape(), abp.shape(), 1000).expect("pipeline");
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(
            vec![ecg.clone(), abp.clone()],
            ExecOptions::default().with_round_ticks(round),
        )
        .expect("executor");
    let stats = exec.run().expect("run");
    (stats.output_events, stats.input_events)
}

/// Runs the Fig. 3 end-to-end pipeline on the Trill baseline.
///
/// Returns `Ok(output_events)` or the OOM error.
pub fn trill_e2e(
    ecg: &SignalData,
    abp: &SignalData,
    cap_bytes: usize,
) -> Result<u64, trill_baseline::TrillError> {
    let mut tp = tpipe::fig3_pipeline(ecg.shape(), abp.shape(), 1000).with_memory_cap(cap_bytes);
    tp.run(vec![ecg.clone(), abp.clone()]).map(|s| s.output_events)
}

/// Runs the Fig. 3 end-to-end pipeline on the NumLib baseline.
pub fn numlib_e2e(ecg: &SignalData, abp: &SignalData) -> u64 {
    numlib_baseline::fig3_numlib(ecg, abp, 1000)
        .expect("numlib")
        .output_events
}

/// Builds the Listing-1 style join pair used by Table 1: 500 Hz and
/// 200 Hz synthetic streams.
pub fn table1_join_pair(minutes: i64, seed: u64) -> (SignalData, SignalData) {
    let a = DatasetBuilder::new(SignalKind::Random, seed)
        .minutes(minutes)
        .build(500.0);
    let b = DatasetBuilder::new(SignalKind::Random, seed + 1)
        .minutes(minutes)
        .build(200.0);
    (a, b)
}

/// LifeStream temporal join for Table 1; returns output events.
pub fn lifestream_join(l: &SignalData, r: &SignalData) -> u64 {
    let mut qb = QueryBuilder::new();
    let a = qb.source("l", l.shape());
    let b = qb.source("r", r.shape());
    let j = qb.join(a, b, JoinKind::Inner).expect("join");
    qb.sink(j);
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(
            vec![l.clone(), r.clone()],
            ExecOptions::default().with_round_ticks(WINDOW_1MIN),
        )
        .expect("executor");
    exec.run().expect("run").output_events
}

/// LifeStream upsample (125 Hz → 500 Hz) for Table 1.
pub fn lifestream_upsample(data: &SignalData) -> u64 {
    let mut qb = QueryBuilder::new();
    let src = qb.source("sig", data.shape());
    let r = lspipe::resample(&mut qb, src, 2, 1000).expect("resample");
    qb.sink(r);
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(
            vec![data.clone()],
            ExecOptions::default().with_round_ticks(WINDOW_1MIN),
        )
        .expect("executor");
    exec.run().expect("run").output_events
}

/// Trill temporal join for Table 1.
pub fn trill_join(l: &SignalData, r: &SignalData) -> u64 {
    let mut tp = TrillPipeline::new();
    let a = tp.source(l.shape());
    let b = tp.source(r.shape());
    let j = tp.join(a, b);
    tp.sink(j);
    tp.run(vec![l.clone(), r.clone()]).expect("trill join").output_events
}

/// Trill upsample for Table 1.
pub fn trill_upsample(data: &SignalData) -> u64 {
    let mut tp = TrillPipeline::new();
    let src = tp.source(data.shape());
    let r = tpipe::resample(&mut tp, src, 1000, 2);
    tp.sink(r);
    tp.run(vec![data.clone()]).expect("trill upsample").output_events
}

/// SciPy-style upsample for Table 1 (whole-array linear interpolation).
pub fn numlib_upsample(data: &SignalData) -> u64 {
    let arr = numlib_baseline::ops::to_nan_array(data);
    numlib_baseline::ops::resample_linear(&arr, data.shape().period(), 2)
        .1
        .len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn primitives_run_on_both_engines() {
        let data = synthetic_1khz(1, 1);
        let side = synthetic_500hz(1, 2);
        for p in Primitive::all() {
            let ls = lifestream_primitive(p, &data, Some(&side));
            let tr = trill_primitive(p, &data, Some(&side));
            assert!(ls > 0, "{} lifestream empty", p.name());
            assert!(tr > 0, "{} trill empty", p.name());
        }
    }

    #[test]
    fn join_primitive_agrees_across_engines() {
        let data = synthetic_1khz(1, 1);
        let side = synthetic_500hz(1, 2);
        let ls = lifestream_primitive(Primitive::Join, &data, Some(&side));
        let tr = trill_primitive(Primitive::Join, &data, Some(&side));
        assert_eq!(ls, tr);
    }

    #[test]
    fn operations_run_on_all_engines() {
        let data = ecg_500hz(1, 3);
        for op in Operation::all() {
            assert!(lifestream_operation(op, &data) > 0, "{}", op.name());
            assert!(trill_operation(op, &data) > 0, "{}", op.name());
            assert!(numlib_operation(op, &data) > 0, "{}", op.name());
        }
    }

    #[test]
    fn e2e_runs_on_all_engines() {
        let ecg = ecg_500hz(2, 5);
        let abp = abp_125hz(2, 6);
        let (ls, _) = lifestream_e2e(&ecg, &abp, WINDOW_1MIN);
        let tr = trill_e2e(&ecg, &abp, 1 << 30).expect("trill e2e");
        let nl = numlib_e2e(&ecg, &abp);
        assert!(ls > 0 && tr > 0 && nl > 0);
        // Engines implement the same pipeline; outputs agree within a few
        // percent (boundary semantics differ slightly at window edges).
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / a as f64;
        assert!(rel(ls, tr) < 0.1, "ls {ls} tr {tr}");
        assert!(rel(ls, nl) < 0.1, "ls {ls} nl {nl}");
    }

    #[test]
    fn table1_runners_produce_output() {
        let (l, r) = table1_join_pair(1, 7);
        assert!(lifestream_join(&l, &r) > 0);
        assert!(trill_join(&l, &r) > 0);
        let abp = abp_125hz(1, 8);
        assert!(lifestream_upsample(&abp) > 0);
        assert!(trill_upsample(&abp) > 0);
        assert!(numlib_upsample(&abp) > 0);
    }
}
