//! Operator-kernel microbenchmarks: staged vs fused execution.
//!
//! The fusion pass ([`lifestream_core::fuse`]) compiles chains of
//! unit-scale operators into one kernel making a single pass over each
//! presence run, with intermediates in scratch instead of per-stage
//! FWindows. This bench pins the claim down:
//!
//! 1. **Per-operator throughput.** Each kernel runs alone (nothing to
//!    fuse) — the Mev/s floor of the staged machinery, for context.
//! 2. **Chain throughput, staged vs fused.** The chain the issue names —
//!    select → normalize → pass_filter(8 taps) → sliding mean — runs
//!    with fusion off and on over the same gap-bearing signal. Outputs
//!    are asserted *checksum-identical* before throughput is compared;
//!    `fused_vs_staged_ratio` is the portable, machine-independent
//!    number the bench-regression gate checks (absolute Mev/s is not).
//!
//! Environment knobs:
//! * `LS_SCALE` — workload scale factor (shared with every bench).
//! * `LS_JSON_OUT` — also write the JSON to this path.

use std::fmt::Write as _;
use std::time::Instant;

use lifestream_bench::{scale, Table};
use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::ops::transform::TransformCtx;
use lifestream_core::query::CompiledQuery;
use lifestream_core::source::SignalData;
use lifestream_core::stream::{Query, Stream};
use lifestream_core::time::{StreamShape, Tick};

const ROUND: Tick = 1_000;
const PERIOD: Tick = 1;
const FIR_TAPS: usize = 8;
const SLIDING_WINDOW: Tick = 16;
const NORM_WINDOW: Tick = 200;

/// A mostly-dense waveform with a few dropouts, so fused execution pays
/// for real run segmentation rather than one giant dense run.
fn signal(samples: usize) -> SignalData {
    let vals: Vec<f32> = (0..samples)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            ((x >> 40) % 997) as f32 / 7.0 - 50.0
        })
        .collect();
    let mut data = SignalData::dense(StreamShape::new(0, PERIOD), vals);
    let n = samples as Tick * PERIOD;
    data.punch_gap(n / 5, n / 5 + 40 * PERIOD);
    data.punch_gap(n / 2, n / 2 + 3 * ROUND);
    data.punch_gap(4 * n / 5, 4 * n / 5 + 7 * PERIOD);
    data
}

fn normalize() -> impl FnMut(TransformCtx<'_>) + Send + 'static {
    |ctx: TransformCtx<'_>| {
        let mut sum = 0.0f32;
        let mut n = 0u32;
        for (i, &p) in ctx.present.iter().enumerate() {
            if p {
                sum += ctx.input[i];
                n += 1;
            }
        }
        if n == 0 {
            return;
        }
        let mean = sum / n as f32;
        let mut var = 0.0f32;
        for (i, &p) in ctx.present.iter().enumerate() {
            if p {
                let d = ctx.input[i] - mean;
                var += d * d;
            }
        }
        let sd = (var / n as f32).sqrt().max(1e-6);
        for (i, &p) in ctx.present.iter().enumerate() {
            if p {
                ctx.output[i] = (ctx.input[i] - mean) / sd;
                ctx.out_present[i] = true;
            }
        }
    }
}

fn fir_taps() -> Vec<f32> {
    (0..FIR_TAPS).map(|k| 1.0 / (k as f32 + 2.0)).collect()
}

type Builder = fn(Stream<'_>) -> Stream<'_>;

fn op_select(s: Stream<'_>) -> Stream<'_> {
    s.map(|v| v * 1.25 - 3.0).unwrap()
}

fn op_where(s: Stream<'_>) -> Stream<'_> {
    s.where_(|v| v[0] > -20.0).unwrap()
}

fn op_normalize(s: Stream<'_>) -> Stream<'_> {
    s.transform(NORM_WINDOW * PERIOD, normalize()).unwrap()
}

fn op_fir(s: Stream<'_>) -> Stream<'_> {
    s.pass_filter(fir_taps()).unwrap()
}

fn op_sliding_mean(s: Stream<'_>) -> Stream<'_> {
    s.aggregate(AggKind::Mean, SLIDING_WINDOW * PERIOD, PERIOD)
        .unwrap()
}

/// The single-operator microbenchmark set.
fn per_op_builders() -> Vec<(&'static str, Builder)> {
    vec![
        ("select", op_select as Builder),
        ("where", op_where),
        ("normalize", op_normalize),
        ("pass_filter8", op_fir),
        ("sliding_mean", op_sliding_mean),
    ]
}

/// The issue's chain-heavy workload: every stage unit-scale, so the
/// whole thing fuses into one kernel.
fn chain(s: Stream<'_>) -> Stream<'_> {
    s.map(|v| v * 1.25 - 3.0)
        .unwrap()
        .transform(NORM_WINDOW * PERIOD, normalize())
        .unwrap()
        .pass_filter(fir_taps())
        .unwrap()
        .aggregate(AggKind::Mean, SLIDING_WINDOW * PERIOD, PERIOD)
        .unwrap()
}

fn compile(build: Builder) -> CompiledQuery {
    let q = Query::new();
    let s = q.source("sig", StreamShape::new(0, PERIOD));
    build(s).sink();
    q.compile().expect("compile")
}

struct Measurement {
    best_s: f64,
    mev_per_s: f64,
    checksum: u64,
    plan_bytes: usize,
    fused_groups: usize,
}

/// Best-of-`iters` wall time for one full run over `data`; the checksum
/// comes from a separate collecting run so timing excludes collection.
fn measure(build: Builder, data: &SignalData, opts: ExecOptions, iters: u32) -> Measurement {
    let mut exec = compile(build)
        .executor_with(vec![data.clone()], opts)
        .expect("executor");
    let plan_bytes = exec.planned_bytes();
    let fused_groups = exec.fusion_groups().len();
    let checksum = exec.run_collect().expect("collect").checksum();
    let samples = data.present_events() as f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        exec.recycle(vec![data.clone()]).expect("recycle");
        let t0 = Instant::now();
        exec.run().expect("run");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Measurement {
        best_s: best,
        mev_per_s: samples / best / 1e6,
        checksum,
        plan_bytes,
        fused_groups,
    }
}

/// Measures two plans of the same query with their timed iterations
/// interleaved (A, B, A, B, …), so a noisy stretch on the host hits both
/// arms equally instead of skewing whichever happened to run during it.
/// The gated ratio comes from this, not from two back-to-back [`measure`]
/// blocks.
fn measure_interleaved(
    build: Builder,
    data: &SignalData,
    opts_a: ExecOptions,
    opts_b: ExecOptions,
    iters: u32,
) -> (Measurement, Measurement) {
    let mut execs = [opts_a, opts_b].map(|opts| {
        compile(build)
            .executor_with(vec![data.clone()], opts)
            .expect("executor")
    });
    let samples = data.present_events() as f64;
    let meta: Vec<(usize, usize, u64)> = execs
        .iter_mut()
        .map(|exec| {
            (
                exec.planned_bytes(),
                exec.fusion_groups().len(),
                exec.run_collect().expect("collect").checksum(),
            )
        })
        .collect();
    let mut best = [f64::INFINITY; 2];
    for _ in 0..iters {
        for (i, exec) in execs.iter_mut().enumerate() {
            exec.recycle(vec![data.clone()]).expect("recycle");
            let t0 = Instant::now();
            exec.run().expect("run");
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
        }
    }
    let mut out =
        meta.into_iter()
            .zip(best)
            .map(
                |((plan_bytes, fused_groups, checksum), best_s)| Measurement {
                    best_s,
                    mev_per_s: samples / best_s / 1e6,
                    checksum,
                    plan_bytes,
                    fused_groups,
                },
            );
    let a = out.next().unwrap();
    let b = out.next().unwrap();
    (a, b)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let samples: usize = ((1_000_000.0 * scale()) as usize).max(100_000);
    let iters = 7;
    let data = signal(samples);
    println!(
        "Operator-kernel throughput — {samples} samples, round {ROUND} ticks, \
         best of {iters}, {cores} host cores\n"
    );

    let staged_opts = || {
        ExecOptions::default()
            .with_round_ticks(ROUND)
            .without_fusion()
    };
    let fused_opts = || ExecOptions::default().with_round_ticks(ROUND);

    // -----------------------------------------------------------------
    // Per-operator floors (single kernel; nothing fuses).
    // -----------------------------------------------------------------
    let mut ops: Vec<(&'static str, Measurement)> = Vec::new();
    let mut table = Table::new(&["op", "Mev/s"]);
    for (name, build) in per_op_builders() {
        let m = measure(build, &data, staged_opts(), iters);
        table.row(&[name.to_string(), format!("{:.3}", m.mev_per_s)]);
        ops.push((name, m));
    }
    println!("{}", table.render());

    // -----------------------------------------------------------------
    // The chain, staged vs fused.
    // -----------------------------------------------------------------
    let (staged, fused) = measure_interleaved(chain, &data, staged_opts(), fused_opts(), iters);
    assert_eq!(staged.fused_groups, 0, "staged arm must not fuse");
    assert_eq!(fused.fused_groups, 1, "the chain must fuse into one group");
    assert_eq!(
        fused.checksum, staged.checksum,
        "fusion leaked into the results"
    );
    assert!(
        fused.plan_bytes < staged.plan_bytes,
        "fusion must shrink the static plan"
    );
    let ratio = fused.mev_per_s / staged.mev_per_s.max(1e-12);
    let mut ctable = Table::new(&["plan", "Mev/s", "plan bytes"]);
    ctable.row(&[
        "staged".into(),
        format!("{:.3}", staged.mev_per_s),
        staged.plan_bytes.to_string(),
    ]);
    ctable.row(&[
        "fused".into(),
        format!("{:.3}", fused.mev_per_s),
        fused.plan_bytes.to_string(),
    ]);
    println!(
        "select -> normalize -> pass_filter({FIR_TAPS}) -> sliding mean chain:\n{}",
        ctable.render()
    );
    println!("fused vs staged: {ratio:.2}x\n");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"kernel_bench\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"select_normalize_fir{FIR_TAPS}_slidingmean_chain\","
    );
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"round_ticks\": {ROUND},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"fused_vs_staged_ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"staged\": {{");
    let _ = writeln!(json, "    \"elapsed_s\": {:.4},", staged.best_s);
    let _ = writeln!(json, "    \"mev_per_s\": {:.4},", staged.mev_per_s);
    let _ = writeln!(json, "    \"plan_bytes\": {}", staged.plan_bytes);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fused\": {{");
    let _ = writeln!(json, "    \"elapsed_s\": {:.4},", fused.best_s);
    let _ = writeln!(json, "    \"mev_per_s\": {:.4},", fused.mev_per_s);
    let _ = writeln!(json, "    \"plan_bytes\": {}", fused.plan_bytes);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"ops\": [");
    for (i, (name, m)) in ops.iter().enumerate() {
        let comma = if i + 1 < ops.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{name}\", \"mev_per_s\": {:.4}}}{comma}",
            m.mev_per_s
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    println!("{json}");
    if let Ok(path) = std::env::var("LS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write JSON output");
        println!("wrote {path}");
    }
}
