//! Table 4: single-thread throughput of the LineZero and CAP models on
//! Trill vs. LifeStream.
//!
//! Paper (M ev/s): LineZero — Trill 0.027, LifeStream 0.315 (11.58×);
//! CAP — Trill 0.174, LifeStream 0.877 (5.04×).

use lifestream_bench::*;
use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::where_shape::ShapeMode;
use lifestream_core::pipeline as lspipe;
use lifestream_core::time::StreamShape;
use lifestream_signal::dataset::{DatasetBuilder, SignalKind};

fn main() {
    let minutes = scaled_minutes(60);
    println!("Table 4 — LineZero and CAP model throughput ({minutes} min)\n");
    let mut t = Table::new(&["model", "engine", "Mev/s", "speedup"]);

    // LineZero: 125 Hz ABP.
    let abp = DatasetBuilder::new(SignalKind::Abp, 5)
        .minutes(minutes)
        .build(125.0);
    let events = abp.present_events() as f64;

    let (_, tr) = time(|| {
        let mut p = trill_baseline::pipelines::linezero_pipeline(abp.shape(), 32);
        p.run(vec![abp.clone()]).expect("trill linezero")
    });
    let (_, ls) = time(|| {
        let qb = lspipe::linezero_pipeline(
            abp.shape(),
            lifestream_signal::artifacts::line_zero_pattern(32),
            4,
            3.0,
            ShapeMode::Remove,
        )
        .expect("linezero pipeline");
        let mut exec = qb
            .compile()
            .expect("compile")
            .executor_with(
                vec![abp.clone()],
                ExecOptions::default().with_round_ticks(WINDOW_1MIN),
            )
            .expect("executor");
        exec.run().expect("run")
    });
    t.row(&[
        "LineZero".into(),
        "trill".into(),
        format!("{:.3}", events / tr / 1e6),
        String::new(),
    ]);
    t.row(&[
        "LineZero".into(),
        "lifestream".into(),
        format!("{:.3}", events / ls / 1e6),
        format!("{:.2}x", tr / ls),
    ]);

    // CAP: six signals at mixed rates.
    let shapes = [
        StreamShape::new(0, 2),
        StreamShape::new(0, 8),
        StreamShape::new(0, 8),
        StreamShape::new(0, 4),
        StreamShape::new(0, 2),
        StreamShape::new(0, 8),
    ];
    let data: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            DatasetBuilder::new(SignalKind::Ecg, 10 + i as u64)
                .minutes(minutes / 4)
                .build(1000.0 / s.period() as f64)
        })
        .collect();
    let cap_events: f64 = data.iter().map(|d| d.present_events() as f64).sum();

    let (_, tr) = time(|| {
        let mut p = trill_baseline::pipelines::cap_pipeline(&shapes, 1000);
        p.run(data.clone()).expect("trill cap")
    });
    let (_, ls) = time(|| {
        let qb = lspipe::cap_pipeline(&shapes, 1000).expect("cap pipeline");
        let mut exec = qb
            .compile()
            .expect("compile")
            .executor_with(
                data.clone(),
                ExecOptions::default().with_round_ticks(WINDOW_1MIN),
            )
            .expect("executor");
        exec.run().expect("run")
    });
    t.row(&[
        "CAP".into(),
        "trill".into(),
        format!("{:.3}", cap_events / tr / 1e6),
        String::new(),
    ]);
    t.row(&[
        "CAP".into(),
        "lifestream".into(),
        format!("{:.3}", cap_events / ls / 1e6),
        format!("{:.2}x", tr / ls),
    ]);

    println!("{}", t.render());
    println!("paper: LineZero 0.027 vs 0.315 Mev/s (11.58x); CAP 0.174 vs 0.877 (5.04x)");
}
