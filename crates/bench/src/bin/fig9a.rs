//! Fig. 9(a): primitive micro-benchmarks — execution time of Trill vs.
//! LifeStream on Select, Where, Aggregate, Chop, ClipJoin, Join over the
//! synthetic 1000 Hz dataset.
//!
//! Paper (seconds, 1000 min @ 1000 Hz): Select 1.12/1.29,
//! Where 4.36/4.58, Aggregate 4.04/1.85, Chop 3.94/1.98,
//! ClipJoin 11.77/2.20, Join 20.15/3.03 (Trill/LifeStream).

use lifestream_bench::*;

fn main() {
    let minutes = scaled_minutes(100);
    println!("Fig. 9(a) — primitive micro-benchmarks ({minutes} min @ 1000 Hz)\n");
    let data = synthetic_1khz(minutes, 1);
    let side_join = synthetic_500hz(minutes, 2);

    let mut t = Table::new(&["primitive", "Trill (s)", "LifeStream (s)", "speedup"]);
    for p in Primitive::all() {
        let side = matches!(p, Primitive::ClipJoin | Primitive::Join).then_some(&side_join);
        let (_, tr) = time(|| trill_primitive(p, &data, side));
        let (_, ls) = time(|| lifestream_primitive(p, &data, side));
        t.row(&[
            p.name().into(),
            format!("{tr:.2}"),
            format!("{ls:.2}"),
            format!("{:.2}x", tr / ls),
        ]);
    }
    println!("{}", t.render());
    println!("paper speedups: Select ~0.9x, Where ~0.95x, Aggregate 2.17x,");
    println!("                Chop 1.98x, ClipJoin 5.34x, Join 6.65x");
}
