//! Fig. 7 / §6.1: line-zero artifact detection accuracy.
//!
//! Paper: one month of ABP from a single device containing 49 line-zero
//! artifacts → 0% false negatives, 0.2% false positives.

use lifestream_core::exec::ExecOptions;
use lifestream_core::ops::where_shape::ShapeMode;
use lifestream_core::query::QueryBuilder;
use lifestream_core::source::SignalData;
use lifestream_core::time::StreamShape;
use lifestream_signal::artifacts::{
    inject_line_zero, line_zero_onset_pattern, score_detections, times_to_samples, LineZeroSpec,
};
use lifestream_signal::waveform::abp_wave;

fn main() {
    let scale = lifestream_bench::scale();
    // A month of 125 Hz ABP is 324M samples; default to ~12 hours and let
    // LS_SCALE raise it (artifact count scales with duration).
    let hours = ((12.0 * scale).max(1.0)) as usize;
    let n = hours * 3600 * 125;
    let spec = LineZeroSpec {
        count: (49.0 * hours as f64 / (30.0 * 24.0)).ceil().max(8.0) as usize,
        ..Default::default()
    };
    println!(
        "Fig. 7 accuracy — {hours} h of synthetic ABP, {} injected line-zero artifacts\n",
        spec.count
    );

    let mut vals = abp_wave(n, 125.0, 74.0, 7);
    let truth = inject_line_zero(&mut vals, &spec, 11);
    let shape = StreamShape::new(0, 8);
    let data = SignalData::dense(shape, vals);

    // Direct shape query (§6.1): the user sketches the artifact onset —
    // pressure level, downward ramp, flat zero — and the extended `Where`
    // matches it amplitude-invariantly (z-normalized windows + cDTW).
    let pattern = line_zero_onset_pattern(32, 8, 96);
    let mut qb = QueryBuilder::new();
    let src = qb.source("abp", shape);
    let det = qb
        .where_shape(src, pattern, 8, 2.1, true, ShapeMode::Keep)
        .expect("where_shape");
    qb.sink(det);
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(vec![data], ExecOptions::default().with_round_ticks(60_000))
        .expect("executor");
    let out = exec.run_collect().expect("run");

    let detections = times_to_samples(out.times(), 8);
    // Collapse per-sample detections into distinct detection events
    // (separated by more than one artifact length).
    let mut distinct: Vec<usize> = Vec::new();
    for &d in &detections {
        if distinct.last().is_none_or(|&p| d > p + 300) {
            distinct.push(d);
        }
    }
    let slack = 64;
    let (fneg, fpos, detected) = score_detections(&truth, &distinct, slack);

    println!("injected artifacts : {}", truth.len());
    println!("detection events   : {}", distinct.len());
    println!("detected           : {detected}");
    println!(
        "false negatives    : {fneg} ({:.2}%)",
        fneg as f64 / truth.len() as f64 * 100.0
    );
    println!(
        "false positives    : {fpos} ({:.2}% of detections)",
        if distinct.is_empty() {
            0.0
        } else {
            fpos as f64 / distinct.len() as f64 * 100.0
        }
    );
    println!("\npaper: 0% false negatives, 0.2% false positives (49 artifacts / 1 month)");
}
