//! Fig. 2: distribution of ECG and ABP data collected from one monitor
//! over six months — rendered as an ASCII day-by-day coverage map from
//! the synthetic gap model.

use lifestream_signal::gaps::{daily_coverage, GapModel};

const DAY: i64 = 86_400_000;

fn shade(f: f64) -> char {
    match f {
        f if f <= 0.01 => ' ',
        f if f < 0.25 => '.',
        f if f < 0.5 => ':',
        f if f < 0.75 => '+',
        _ => '#',
    }
}

fn main() {
    let months = 6usize;
    let span = months as i64 * 30 * DAY;
    let ecg = GapModel::icu_default().generate(span, 2019);
    let abp = GapModel::icu_default().generate(span, 2020);

    println!("Fig. 2 — day-by-day data coverage over {months} months (synthetic gap model)");
    println!("legend: '#'>=75%  '+'>=50%  ':'>=25%  '.'<25%  ' ' none\n");
    for (name, map) in [("ECG 500 Hz", &ecg), ("ABP 125 Hz", &abp)] {
        println!("{name}");
        let cov = daily_coverage(map, span, DAY);
        for m in 0..months {
            let row: String = (0..30).map(|d| shade(cov[m * 30 + d])).collect();
            println!("  month {} |{}|", m + 1, row);
        }
        let total = map.coverage_fraction(0, span);
        println!("  overall coverage: {:.1}%\n", total * 100.0);
    }
    let inter = ecg.intersect(&abp);
    println!(
        "mutual overlap: {:.1}% of the span ({:.1}% of ECG coverage)",
        inter.covered_ticks() as f64 / span as f64 * 100.0,
        inter.covered_ticks() as f64 / ecg.covered_ticks() as f64 * 100.0
    );
    println!("\npaper: bursty multi-hour outages, whole days missing, partial mutual overlap");
}
