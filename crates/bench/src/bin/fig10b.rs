//! Fig. 10(b): window-size sensitivity — end-to-end execution time of
//! Trill vs. LifeStream on the synthetic dataset as the processing window
//! grows from 1 to 60 minutes.
//!
//! Paper: LifeStream's advantage holds across the sweep (Trill ~90–150 s,
//! LifeStream flat and far below).

use lifestream_bench::*;
use lifestream_signal::dataset::{DatasetBuilder, SignalKind};

fn main() {
    let minutes = scaled_minutes(60);
    println!("Fig. 10(b) — window-size sensitivity ({minutes} min synthetic ECG+ABP)\n");
    let ecg = DatasetBuilder::new(SignalKind::Random, 1)
        .minutes(minutes)
        .build(500.0);
    let abp = DatasetBuilder::new(SignalKind::Random, 2)
        .minutes(minutes)
        .build(125.0);

    // Trill has no window knob (its batch size is events, not time); the
    // paper plots it as a near-flat reference.
    let (_, trill_s) = time(|| trill_e2e(&ecg, &abp, usize::MAX).expect("trill"));

    let mut t = Table::new(&["window (min)", "Trill (s)", "LifeStream (s)", "speedup"]);
    for wmin in [1i64, 5, 10, 20, 30, 60] {
        let (_, ls) = time(|| lifestream_e2e(&ecg, &abp, wmin * 60_000));
        t.row(&[
            wmin.to_string(),
            format!("{trill_s:.2}"),
            format!("{ls:.2}"),
            format!("{:.1}x", trill_s / ls),
        ]);
    }
    println!("{}", t.render());
    println!("paper: LifeStream stays flat and ahead across 1–60 min windows");
}
