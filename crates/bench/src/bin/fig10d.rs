//! Fig. 10(d): multi-machine scaling — aggregate throughput up to 16
//! machines, extrapolated from the measured single-machine peak via the
//! cluster model (substitution documented in DESIGN.md).
//!
//! Paper: LifeStream 473.66 M ev/s on 16 machines — 8.38× Trill's peak
//! and 1.73× NumLib's.

use cluster_harness::machines::ClusterModel;
use cluster_harness::multicore::{run_scaling, Engine, PatientWorkload};
use lifestream_bench::{scaled_minutes, Table};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let minutes = scaled_minutes(5);
    let patients = (cores * 4).max(16);
    println!("Fig. 10(d) — multi-machine scaling (modelled from measured single-machine peaks)\n");
    let workload = PatientWorkload::synthesize(patients, minutes, 99);
    let budget: usize = 512 << 20;

    // Measure each engine's single-machine peak at its best thread count
    // (the paper uses 12 / 24 / 32 for Trill / NumLib / LifeStream).
    let peak = |engine: Engine, budget: usize| -> f64 {
        let mut best = 0.0f64;
        for th in [1, 2, 4, cores.min(8), cores] {
            let p = run_scaling(engine, &workload, th, budget);
            if !p.oom {
                best = best.max(p.mev_per_s);
            }
        }
        best
    };
    let ls_peak = peak(Engine::LifeStream, budget);
    let tr_peak = peak(Engine::Trill, budget);
    let nl_peak = peak(Engine::NumLib, budget);
    println!(
        "single-machine peaks (Mev/s): lifestream {ls_peak:.2}, trill {tr_peak:.2}, numlib {nl_peak:.2}\n"
    );

    let model = ClusterModel::default();
    let mut t = Table::new(&[
        "machines",
        "LifeStream Mev/s",
        "Trill Mev/s",
        "NumLib Mev/s",
    ]);
    for n in [1usize, 2, 4, 8, 12, 16] {
        t.row(&[
            n.to_string(),
            format!("{:.1}", model.extrapolate(ls_peak, n).mev_per_s),
            format!("{:.1}", model.extrapolate(tr_peak, n).mev_per_s),
            format!("{:.1}", model.extrapolate(nl_peak, n).mev_per_s),
        ]);
    }
    println!("{}", t.render());
    let f = model.extrapolate(ls_peak, 16);
    println!(
        "16-machine LifeStream: {:.1} Mev/s ({:.2}x Trill, {:.2}x NumLib)",
        f.mev_per_s,
        f.mev_per_s / model.extrapolate(tr_peak, 16).mev_per_s,
        f.mev_per_s / model.extrapolate(nl_peak, 16).mev_per_s
    );
    println!("paper: 473.66 Mev/s on 16 machines, 8.38x Trill, 1.73x NumLib");
}
