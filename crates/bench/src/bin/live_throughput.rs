//! Live data-plane throughput: batched vs per-sample ingest through the
//! sharded [`LiveIngest`] front end, plus the long-session memory /
//! poll-latency curve of the compacting [`LiveSession`].
//!
//! Two claims this bench pins down, both products of the bounded
//! zero-copy live data plane:
//!
//! 1. **Batching wins.** Per-sample channel sends dominate the live path
//!    once sessions are cheap; staging samples client-side and shipping
//!    them in batches amortizes the dispatch. The same feed runs at
//!    several batch sizes (1 = the pre-batching behaviour) and the
//!    outputs are asserted identical before throughput is compared.
//! 2. **Sessions are flat.** A `LiveSession` polled while samples stream
//!    through holds a retained buffer bounded by round + history margin +
//!    poll lag, so poll latency and memory stay constant as the cumulative
//!    stream grows — the curve section records both along a long push.
//!
//! Environment knobs:
//! * `LS_SCALE` — workload scale factor (shared with every bench).
//! * `LS_WORKERS` — ingest shard count (default 4).
//! * `LS_JSON_OUT` — also write the JSON to this path.
//!
//! As with `sharded_scaling`, `host_cores` is recorded: thread-level
//! speedups are only meaningful relative to it, while the batched-vs-
//! per-sample ratio is mostly dispatch-bound and portable.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cluster_harness::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use lifestream_bench::{scale, Table};
use lifestream_core::live::LiveSession;
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};

const ROUND: Tick = 1_000;
const PERIOD: Tick = 2;

/// The live pipeline: stateless select into a sliding mean — a stateful
/// kernel, so sessions exercise carried state, and a window lookback, so
/// compaction has a real margin to respect.
fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("sig", StreamShape::new(0, PERIOD))
            .select(1, |i, o| o[0] = i[0] * 0.25 + 1.0)?
            .aggregate(AggKind::Mean, 50 * PERIOD, 5 * PERIOD)?
            .sink();
        q.compile()
    })
}

fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

struct ModeResult {
    batch: usize,
    elapsed_s: f64,
    mev_per_s: f64,
    batches_flushed: u64,
    checksum: u64,
}

/// Replays `patients × samples` through an ingest configured with the
/// given batch size, polling every `poll_every` pushes per patient.
fn run_mode(workers: usize, patients: u64, samples: i64, batch: usize) -> ModeResult {
    let ingest = LiveIngest::with_config(
        factory(),
        IngestConfig::new(workers, ROUND)
            .batch(batch)
            .channel_cap(64),
    );
    for p in 0..patients {
        ingest.admit(p).expect("admit");
    }
    let poll_every = ROUND / PERIOD;
    let start = Instant::now();
    for k in 0..samples {
        for p in 0..patients {
            ingest.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            ingest.poll();
        }
    }
    let mut checksum = 0u64;
    for p in 0..patients {
        let out = ingest.finish(p).expect("finish");
        checksum ^= out.checksum().rotate_left((p % 63) as u32);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = ingest.stats();
    assert_eq!(stats.dropped_unknown, 0);
    let events = patients as f64 * samples as f64;
    ModeResult {
        batch,
        elapsed_s: elapsed,
        mev_per_s: events / elapsed / 1e6,
        batches_flushed: stats.batches_flushed,
        checksum,
    }
}

struct CurvePoint {
    pushed: i64,
    retained_slots: usize,
    poll_us: f64,
}

/// Pushes one long stream through a single session, recording retained
/// buffer length and poll latency at evenly spaced checkpoints.
fn session_curve(total: i64, checkpoints: usize) -> (Tick, Vec<CurvePoint>) {
    let mut session = LiveSession::new((factory())().expect("compile"), ROUND).expect("session");
    let margin = session.history_margin(0).expect("margin");
    let poll_every = ROUND / PERIOD;
    let every = (total / checkpoints as i64).max(1);
    let mut points = Vec::new();
    let mut sink = 0usize;
    let mut last_poll_us = 0.0f64;
    for k in 0..total {
        session.push(0, k * PERIOD, wave(k, 7)).expect("push");
        if k % poll_every == 0 {
            let t0 = Instant::now();
            session.poll(|w| sink += w.present_count()).expect("poll");
            last_poll_us = t0.elapsed().as_secs_f64() * 1e6;
        }
        if (k + 1) % every == 0 {
            points.push(CurvePoint {
                pushed: k + 1,
                retained_slots: session.retained_slots(0).expect("slots"),
                poll_us: last_poll_us,
            });
        }
    }
    assert!(sink > 0, "the session must produce output");
    (margin, points)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: usize = std::env::var("LS_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let patients: u64 = 8;
    let samples: i64 = ((100_000.0 * scale()) as i64).max(2_000);
    let curve_total: i64 = ((400_000.0 * scale()) as i64).max(10_000);
    println!(
        "Live data-plane throughput — {patients} patients x {samples} samples, \
         {workers} ingest shards, {cores} host cores\n"
    );

    // -----------------------------------------------------------------
    // Batched vs per-sample ingest.
    // -----------------------------------------------------------------
    let batches = [1usize, 16, 256];
    let mut modes: Vec<ModeResult> = Vec::new();
    let mut table = Table::new(&["batch", "Mev/s", "speedup", "flushes"]);
    for &b in &batches {
        let m = run_mode(workers, patients, samples, b);
        let base = modes.first().map_or(m.mev_per_s, |r| r.mev_per_s);
        table.row(&[
            b.to_string(),
            format!("{:.3}", m.mev_per_s),
            format!("{:.2}x", m.mev_per_s / base.max(1e-12)),
            m.batches_flushed.to_string(),
        ]);
        modes.push(m);
    }
    println!("{}", table.render());
    // Transport must be invisible in the results.
    for m in &modes[1..] {
        assert_eq!(
            m.checksum, modes[0].checksum,
            "batch size leaked into output"
        );
    }
    let speedup = modes
        .last()
        .map_or(0.0, |m| m.mev_per_s / modes[0].mev_per_s.max(1e-12));
    println!("batched (256) vs per-sample ingest: {speedup:.2}x\n");

    // -----------------------------------------------------------------
    // Long-session memory / poll-latency curve.
    // -----------------------------------------------------------------
    let (margin, curve) = session_curve(curve_total, 8);
    let mut ctable = Table::new(&["pushed", "retained slots", "poll µs"]);
    for p in &curve {
        ctable.row(&[
            p.pushed.to_string(),
            p.retained_slots.to_string(),
            format!("{:.1}", p.poll_us),
        ]);
    }
    println!(
        "single session, round {ROUND} ticks, history margin {margin} ticks, \
         {curve_total} samples:\n{}",
        ctable.render()
    );
    let max_retained = curve.iter().map(|p| p.retained_slots).max().unwrap_or(0);
    // Bound in *slots*: margin + the unfinished round + one round of
    // poll lag, all converted from ticks by the source period.
    let bound_slots = (margin + 3 * ROUND) / PERIOD;
    assert!(
        (max_retained as i64) < bound_slots,
        "retention must stay bounded by round + margin ({bound_slots} slots), \
         got {max_retained}"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"live_throughput\",");
    let _ = writeln!(json, "  \"workload\": \"select_sliding_mean_live\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"ingest_workers\": {workers},");
    let _ = writeln!(json, "  \"patients\": {patients},");
    let _ = writeln!(json, "  \"samples_per_patient\": {samples},");
    let _ = writeln!(json, "  \"round_ticks\": {ROUND},");
    let _ = writeln!(json, "  \"batched_vs_per_sample_speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"modes\": [");
    for (i, m) in modes.iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"batch\": {}, \"elapsed_s\": {:.4}, \"mev_per_s\": {:.4}, \
             \"batches_flushed\": {}}}{comma}",
            m.batch, m.elapsed_s, m.mev_per_s, m.batches_flushed
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"session_curve\": {{");
    let _ = writeln!(json, "    \"samples\": {curve_total},");
    let _ = writeln!(json, "    \"history_margin_ticks\": {margin},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in curve.iter().enumerate() {
        let comma = if i + 1 < curve.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"pushed\": {}, \"retained_slots\": {}, \"poll_us\": {:.1}}}{comma}",
            p.pushed, p.retained_slots, p.poll_us
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    println!("\n{json}");
    if let Ok(path) = std::env::var("LS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write JSON output");
        println!("wrote {path}");
    }
}
