//! Fig. 9(c): end-to-end application — execution time of the Fig. 3
//! pipeline (ECG 500 Hz ⋈ ABP 125 Hz, real-like gap-bearing data) as the
//! dataset size grows.
//!
//! Paper: LifeStream 7.5× faster than Trill and 3.2× faster than NumLib;
//! Trill goes out of memory at 200 M events because the gap structure
//! diverges the two join inputs.

use lifestream_bench::*;
use lifestream_signal::dataset::ecg_abp_pair;

fn main() {
    let base = scaled_minutes(30);
    println!("Fig. 9(c) — end-to-end Fig. 3 pipeline, growing dataset\n");

    // Cap the Trill join buffering the way the paper's 16 GB machine did,
    // scaled to our workload sizes.
    let trill_cap: usize = std::env::var("LS_TRILL_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256 << 20);

    let mut t = Table::new(&[
        "events (M)",
        "Trill (s)",
        "NumLib (s)",
        "LifeStream (s)",
        "LS vs Trill",
        "LS vs NumLib",
    ]);
    for mult in [1, 2, 4, 8] {
        let minutes = base * mult;
        let (ecg, abp) = ecg_abp_pair(minutes, 42);
        let events = (ecg.present_events() + abp.present_events()) as f64 / 1e6;

        let (tr_res, tr) = time(|| trill_e2e(&ecg, &abp, trill_cap));
        let trill_cell = match tr_res {
            Ok(_) => format!("{tr:.2}"),
            Err(_) => "OOM".to_string(),
        };
        let (_, nl) = time(|| numlib_e2e(&ecg, &abp));
        let (_, ls) = time(|| lifestream_e2e(&ecg, &abp, WINDOW_1MIN));

        t.row(&[
            format!("{events:.1}"),
            trill_cell.clone(),
            format!("{nl:.2}"),
            format!("{ls:.2}"),
            if trill_cell == "OOM" {
                "OOM".into()
            } else {
                format!("{:.2}x", tr / ls)
            },
            format!("{:.2}x", nl / ls),
        ]);
    }
    println!("{}", t.render());
    println!("paper: LS 7.5x vs Trill, 3.2x vs NumLib; Trill OOM at 200M events");
}
