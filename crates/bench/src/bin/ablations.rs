//! Ablation benchmarks for the three optimizations DESIGN.md calls out:
//!
//! * **static memory allocation** — preallocated plan vs. per-round
//!   allocation (`ExecOptions::with_dynamic_memory`);
//! * **targeted query processing** — lineage-driven round skipping vs.
//!   eager execution on gap-bearing data;
//! * **locality tracing** — the traced 1-minute round vs. one giant round
//!   spanning the whole dataset (operator-at-a-time, no cross-operator
//!   locality).

use lifestream_bench::*;
use lifestream_core::exec::ExecOptions;
use lifestream_core::pipeline::fig3_pipeline;
use lifestream_core::source::SignalData;
use lifestream_signal::dataset::ecg_abp_pair;

fn run_with(ecg: &SignalData, abp: &SignalData, opts: ExecOptions) -> (f64, u64, u64) {
    let qb = fig3_pipeline(ecg.shape(), abp.shape(), 1000).expect("pipeline");
    let mut exec = qb
        .compile()
        .expect("compile")
        .executor_with(vec![ecg.clone(), abp.clone()], opts)
        .expect("executor");
    let (stats, s) = time(|| exec.run().expect("run"));
    (s, stats.windows_skipped, stats.steady_state_allocs)
}

fn main() {
    let minutes = scaled_minutes(30);
    println!("Ablations — Fig. 3 pipeline on {minutes} min gap-bearing ECG+ABP\n");
    let (ecg, abp) = ecg_abp_pair(minutes, 4242);
    let span = ecg.end_time().max(abp.end_time());

    let mut t = Table::new(&["configuration", "time (s)", "skipped", "allocs"]);

    let (s, skip, alloc) = run_with(
        &ecg,
        &abp,
        ExecOptions::default().with_round_ticks(WINDOW_1MIN),
    );
    t.row(&[
        "all optimizations".into(),
        format!("{s:.2}"),
        skip.to_string(),
        alloc.to_string(),
    ]);
    let base = s;

    let (s, skip, alloc) = run_with(
        &ecg,
        &abp,
        ExecOptions::default()
            .with_round_ticks(WINDOW_1MIN)
            .with_dynamic_memory(),
    );
    t.row(&[
        "- static memory".into(),
        format!("{s:.2}"),
        skip.to_string(),
        alloc.to_string(),
    ]);
    let no_mem = s;

    let (s, skip, alloc) = run_with(
        &ecg,
        &abp,
        ExecOptions::eager().with_round_ticks(WINDOW_1MIN),
    );
    t.row(&[
        "- targeted processing".into(),
        format!("{s:.2}"),
        skip.to_string(),
        alloc.to_string(),
    ]);
    let no_target = s;

    let (s, skip, alloc) = run_with(&ecg, &abp, ExecOptions::eager().with_round_ticks(span));
    t.row(&[
        "- locality (one giant round)".into(),
        format!("{s:.2}"),
        skip.to_string(),
        alloc.to_string(),
    ]);
    let no_local = s;

    println!("{}", t.render());
    println!(
        "costs: dynamic memory +{:.0}%",
        (no_mem / base - 1.0) * 100.0
    );
    println!(
        "       eager execution +{:.0}%",
        (no_target / base - 1.0) * 100.0
    );
    println!(
        "       no locality     +{:.0}%",
        (no_local / base - 1.0) * 100.0
    );
}
