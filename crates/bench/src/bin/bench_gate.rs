//! Bench-regression gate: compares a freshly measured bench JSON against
//! the committed baseline and fails (exit 1) when a *portable ratio*
//! regresses beyond the tolerance.
//!
//! Absolute Mev/s numbers are machine-bound — a 4-core CI runner and the
//! 1-core box that produced a baseline legitimately disagree — so the
//! gate checks only the ratios the bench JSONs were designed around:
//!
//! | bench                | gated metrics                                    |
//! |----------------------|--------------------------------------------------|
//! | `sharded_scaling`    | `pooled_vs_cold_speedup_1_worker`                |
//! | `live_throughput`    | `batched_vs_per_sample_speedup`                  |
//! | `net_throughput`     | `batched_vs_per_frame_speedup`                   |
//! | `history_throughput` | `spill_vs_no_store_ratio`, `range_prune_speedup` |
//! | `kernel_bench`       | `fused_vs_staged_ratio`                          |
//!
//! A bench may gate several ratios; every one must clear its floor.
//!
//! Usage: `bench_gate <baseline.json> <current.json>`
//!
//! Environment knobs:
//! * `LS_GATE_TOL` — allowed fractional regression (default `0.25`,
//!   i.e. the current ratio may be up to 25% below the baseline).
//!
//! The parser is deliberately a tiny field scanner, not a JSON library:
//! the bench bins emit flat, known-shaped documents, and the gate must
//! run on the CI image with no extra dependencies.

use std::process::ExitCode;

/// Extracts the number following `"key":` in a flat JSON document.
fn field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The gated metrics for a bench id — empty for benches without any.
fn metrics_for(bench: &str) -> &'static [&'static str] {
    match bench {
        "sharded_scaling" => &["pooled_vs_cold_speedup_1_worker"],
        "live_throughput" => &["batched_vs_per_sample_speedup"],
        "net_throughput" => &["batched_vs_per_frame_speedup"],
        "history_throughput" => &["spill_vs_no_store_ratio", "range_prune_speedup"],
        "kernel_bench" => &["fused_vs_staged_ratio"],
        _ => &[],
    }
}

fn bench_id(json: &str) -> Option<String> {
    let at = json.find("\"bench\":")? + "\"bench\":".len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, current_path] = &args[..] else {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };
    let tolerance: f64 = std::env::var("LS_GATE_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };

    let (Some(base_bench), Some(cur_bench)) = (bench_id(&baseline), bench_id(&current)) else {
        eprintln!("bench_gate: missing \"bench\" field");
        return ExitCode::FAILURE;
    };
    if base_bench != cur_bench {
        eprintln!("bench_gate: comparing {base_bench} baseline against {cur_bench} run");
        return ExitCode::FAILURE;
    }
    let metrics = metrics_for(&base_bench);
    if metrics.is_empty() {
        eprintln!("bench_gate: no gated metric for bench {base_bench}");
        return ExitCode::FAILURE;
    }

    // A remote-vs-local ratio is only meaningful if the wire was quiet:
    // a run that survived injected faults spent time in reconnect-and-
    // replay, which would make a "regression" (or an improvement) an
    // artifact of the fault schedule rather than of the transport.
    if cur_bench == "net_throughput" {
        match field(&current, "faults_injected") {
            Some(n) => {
                if n != 0.0 {
                    eprintln!(
                        "bench_gate: net_throughput run was not fault-free \
                         ({n:.0} faults injected); measurement rejected"
                    );
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!("bench_gate: net_throughput run missing \"faults_injected\"");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    for metric in metrics {
        let (Some(expect), Some(got)) = (field(&baseline, metric), field(&current, metric)) else {
            eprintln!("bench_gate: metric {metric} missing from one of the files");
            return ExitCode::FAILURE;
        };
        let floor = expect * (1.0 - tolerance);
        let verdict = if got >= floor { "ok" } else { "REGRESSION" };
        println!(
            "{base_bench}: {metric} = {got:.3} (baseline {expect:.3}, floor {floor:.3}, \
             tolerance {:.0}%) ... {verdict}",
            tolerance * 100.0
        );
        if got < floor {
            eprintln!(
                "bench_gate: {metric} regressed more than {:.0}% ({got:.3} < {floor:.3})",
                tolerance * 100.0
            );
            failed = true;
        }
    }
    // Context for the log: cores the two measurements ran on.
    if let (Some(bc), Some(cc)) = (
        field(&baseline, "host_cores"),
        field(&current, "host_cores"),
    ) {
        println!("  host_cores: baseline {bc:.0}, current {cc:.0}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "live_throughput",
  "host_cores": 4,
  "batched_vs_per_sample_speedup": 3.838,
  "modes": []
}"#;

    #[test]
    fn extracts_fields_and_bench_id() {
        assert_eq!(bench_id(DOC).as_deref(), Some("live_throughput"));
        assert_eq!(field(DOC, "batched_vs_per_sample_speedup"), Some(3.838));
        assert_eq!(field(DOC, "host_cores"), Some(4.0));
        assert_eq!(field(DOC, "missing"), None);
    }

    #[test]
    fn faults_injected_field_parses() {
        let doc = r#"{"bench": "net_throughput", "faults_injected": 0,
                      "batched_vs_per_frame_speedup": 2.0}"#;
        assert_eq!(field(doc, "faults_injected"), Some(0.0));
        let dirty = r#"{"bench": "net_throughput", "faults_injected": 3}"#;
        assert_eq!(field(dirty, "faults_injected"), Some(3.0));
    }

    #[test]
    fn every_gated_bench_has_a_metric() {
        for b in [
            "sharded_scaling",
            "live_throughput",
            "net_throughput",
            "history_throughput",
            "kernel_bench",
        ] {
            assert!(!metrics_for(b).is_empty());
        }
        assert!(metrics_for("fig2").is_empty());
        assert_eq!(
            metrics_for("history_throughput"),
            ["spill_vs_no_store_ratio", "range_prune_speedup"],
            "the prune speedup must stay gated"
        );
    }
}
