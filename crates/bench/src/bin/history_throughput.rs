//! Tiered-store throughput: the cost of durable segment spill on the
//! live ingest path, and the retrospective-scan rate of the
//! [`HistoryReader`] reconstruction.
//!
//! Two numbers this bench pins down:
//!
//! 1. **Spill is cheap.** The same multi-patient feed runs twice through
//!    [`LiveIngest`] — once plain, once with a [`StoreConfig`] attached
//!    so every compacted span is encoded, checksummed, and flushed to
//!    segment files. The gated metric `spill_vs_no_store_ratio` is
//!    (with-store Mev/s) / (no-store Mev/s): the durable tier must cost
//!    a bounded, near-constant fraction of ingest throughput, not a
//!    multiple. Outputs are asserted byte-identical first.
//! 2. **Retrospective scans are fast.** After the spill run, each
//!    patient's full history is re-run via `HistoryQueryApi::history_one`
//!    (stitch segments + suffix, compile, execute); the scan rate is
//!    reported in reconstructed input samples per second.
//! 3. **Range pruning pays.** The same patients are then queried over a
//!    narrow `[t0, t1)` window (10% of the span) via
//!    `HistoryQuery::range`. The file-name tick-range index lets the
//!    store skip every non-overlapping segment unopened
//!    (`segments_skipped` is asserted to move), so the narrow scan runs
//!    a large multiple faster than the full one. The second gated
//!    metric `range_prune_speedup` is (full-scan elapsed) / (narrow-scan
//!    elapsed) — a portable ratio like the spill ratio.
//!
//! Environment knobs:
//! * `LS_SCALE` — workload scale factor (shared with every bench).
//! * `LS_WORKERS` — ingest shard count (default 4).
//! * `LS_JSON_OUT` — also write the JSON to this path.
//!
//! `host_cores` is recorded: absolute Mev/s numbers are machine-bound,
//! while the spill ratio is dominated by encode+write cost per sample
//! and ports across hosts — which is why it is the gated metric.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cluster_harness::sharded::{IngestConfig, LiveIngest, PipelineFactory};
use cluster_harness::HistoryQuery;
use lifestream_bench::{scale, Table};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};
use lifestream_store::StoreConfig;

const ROUND: Tick = 1_000;
const PERIOD: Tick = 2;

/// Margin-bearing live pipeline (select into a sliding mean), so
/// compaction retains a real suffix and everything below it spills.
fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("sig", StreamShape::new(0, PERIOD))
            .select(1, |i, o| o[0] = i[0] * 0.25 + 1.0)?
            .aggregate(AggKind::Mean, 50 * PERIOD, 5 * PERIOD)?
            .sink();
        q.compile()
    })
}

fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

struct RunResult {
    elapsed_s: f64,
    mev_per_s: f64,
    checksum: u64,
    spilled_samples: u64,
    segments_written: u64,
}

/// Full-scan rate, narrow-range rate, prune speedup, and how many
/// segment files the narrow scans skipped unopened.
struct ScanResult {
    full_mev_per_s: f64,
    range_mev_per_s: f64,
    range_prune_speedup: f64,
    segments_skipped: u64,
}

/// Streams the feed through an ingest, optionally with a store attached,
/// querying nothing — pure ingest-path cost. With a store, patients are
/// history-queried (timed separately) before finishing: once over the
/// full range, once over a narrow pruned window.
fn run_mode(
    workers: usize,
    patients: u64,
    samples: i64,
    store_dir: Option<&std::path::Path>,
) -> (RunResult, Option<ScanResult>) {
    let cfg = IngestConfig::new(workers, ROUND).batch(256).channel_cap(64);
    let ingest = match store_dir {
        Some(dir) => {
            LiveIngest::with_store(factory(), cfg, StoreConfig::new(dir).flush_batch(4096))
                .expect("open store")
        }
        None => LiveIngest::with_config(factory(), cfg),
    };
    for p in 0..patients {
        ingest.admit(p).expect("admit");
    }
    let poll_every = ROUND / PERIOD;
    let start = Instant::now();
    for k in 0..samples {
        for p in 0..patients {
            ingest.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            ingest.poll();
        }
    }
    ingest.poll();
    let elapsed = start.elapsed().as_secs_f64();

    // Retrospective scan over every patient's full durable history,
    // then over a narrow range the segment index can prune around.
    let scan = store_dir.map(|_| {
        let full_start = Instant::now();
        for p in 0..patients {
            let out = ingest.history_one(p).expect("history query");
            assert!(!out.is_empty(), "empty retrospective run");
        }
        let full_elapsed = full_start.elapsed().as_secs_f64();
        let scanned = patients as f64 * samples as f64;

        // Narrow window: the middle 10% of the recorded span.
        let span = samples * PERIOD;
        let (t0, t1) = (span * 45 / 100, span * 55 / 100);
        let skipped_before = ingest
            .store()
            .map(|s| s.stats().segments_skipped)
            .unwrap_or(0);
        let range_start = Instant::now();
        for p in 0..patients {
            let out = ingest
                .history(HistoryQuery::new().patient(p).range(t0, t1))
                .expect("range query")
                .into_single()
                .expect("single patient");
            assert!(!out.is_empty(), "empty range run");
        }
        let range_elapsed = range_start.elapsed().as_secs_f64();
        let segments_skipped = ingest
            .store()
            .map(|s| s.stats().segments_skipped)
            .unwrap_or(0)
            - skipped_before;
        assert!(
            segments_skipped > 0,
            "narrow range pruned no segments — the range index is dead"
        );
        ScanResult {
            full_mev_per_s: scanned / full_elapsed / 1e6,
            range_mev_per_s: (patients as f64 * ((t1 - t0) / PERIOD) as f64) / range_elapsed / 1e6,
            range_prune_speedup: full_elapsed / range_elapsed.max(1e-12),
            segments_skipped,
        }
    });

    let mut checksum = 0u64;
    for p in 0..patients {
        let out = ingest.finish(p).expect("finish");
        checksum ^= out.checksum().rotate_left((p % 63) as u32);
    }
    let (spilled_samples, segments_written) = ingest
        .store()
        .map(|s| {
            let st = s.stats();
            assert_eq!(st.io_errors, 0, "spill hit I/O errors");
            (st.spilled_samples, st.segments_written)
        })
        .unwrap_or((0, 0));
    let events = patients as f64 * samples as f64;
    (
        RunResult {
            elapsed_s: elapsed,
            mev_per_s: events / elapsed / 1e6,
            checksum,
            spilled_samples,
            segments_written,
        },
        scan,
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: usize = std::env::var("LS_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let patients: u64 = 8;
    let samples: i64 = ((100_000.0 * scale()) as i64).max(2_000);
    println!(
        "Tiered-store throughput — {patients} patients x {samples} samples, \
         {workers} ingest shards, {cores} host cores\n"
    );

    let dir = std::env::temp_dir().join(format!("lss-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create store dir");

    let (plain, _) = run_mode(workers, patients, samples, None);
    let (spill, scan) = run_mode(workers, patients, samples, Some(&dir));
    let scan = scan.expect("store run scans");
    assert_eq!(
        plain.checksum, spill.checksum,
        "the store leaked into live output"
    );
    assert!(spill.spilled_samples > 0, "nothing spilled — bench is void");
    let ratio = spill.mev_per_s / plain.mev_per_s.max(1e-12);

    let mut table = Table::new(&["mode", "Mev/s", "elapsed s", "spilled", "segments"]);
    table.row(&[
        "no store".into(),
        format!("{:.3}", plain.mev_per_s),
        format!("{:.2}", plain.elapsed_s),
        "-".into(),
        "-".into(),
    ]);
    table.row(&[
        "segment spill".into(),
        format!("{:.3}", spill.mev_per_s),
        format!("{:.2}", spill.elapsed_s),
        spill.spilled_samples.to_string(),
        spill.segments_written.to_string(),
    ]);
    println!("{}", table.render());
    println!("spill vs no-store ingest ratio: {ratio:.3}");
    println!(
        "retrospective scan rate: {:.3} Mev/s (full), {:.3} Mev/s (10% range)",
        scan.full_mev_per_s, scan.range_mev_per_s
    );
    println!(
        "range prune speedup: {:.3}x ({} segments skipped unopened)\n",
        scan.range_prune_speedup, scan.segments_skipped
    );

    let _ = std::fs::remove_dir_all(&dir);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"history_throughput\",");
    let _ = writeln!(json, "  \"workload\": \"select_sliding_mean_live_spill\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"ingest_workers\": {workers},");
    let _ = writeln!(json, "  \"patients\": {patients},");
    let _ = writeln!(json, "  \"samples_per_patient\": {samples},");
    let _ = writeln!(json, "  \"round_ticks\": {ROUND},");
    let _ = writeln!(json, "  \"spill_vs_no_store_ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"no_store_mev_per_s\": {:.4},", plain.mev_per_s);
    let _ = writeln!(json, "  \"spill_mev_per_s\": {:.4},", spill.mev_per_s);
    let _ = writeln!(
        json,
        "  \"retro_scan_mev_per_s\": {:.4},",
        scan.full_mev_per_s
    );
    let _ = writeln!(
        json,
        "  \"range_scan_mev_per_s\": {:.4},",
        scan.range_mev_per_s
    );
    let _ = writeln!(
        json,
        "  \"range_prune_speedup\": {:.3},",
        scan.range_prune_speedup
    );
    let _ = writeln!(json, "  \"segments_skipped\": {},", scan.segments_skipped);
    let _ = writeln!(json, "  \"spilled_samples\": {},", spill.spilled_samples);
    let _ = writeln!(json, "  \"segments_written\": {}", spill.segments_written);
    let _ = writeln!(json, "}}");
    println!("{json}");
    if let Ok(path) = std::env::var("LS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write JSON output");
        println!("wrote {path}");
    }
}
