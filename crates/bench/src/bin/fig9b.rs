//! Fig. 9(b): operation benchmarks — execution time of Trill, NumLib,
//! and LifeStream on the Table 3 operations over a 500 Hz ECG signal.
//!
//! Paper (seconds, 126 M events): Normalize 41.3/10.7/8.0,
//! PassFilter 76.0/8.9/15.2, FillConst 55.2/6.8/9.6,
//! FillMean 145.0/7.6/13.6, Resample 183.1/8.4/16.3
//! (Trill/NumLib/LifeStream).

use lifestream_bench::*;

fn main() {
    let minutes = scaled_minutes(100);
    println!("Fig. 9(b) — operation benchmarks ({minutes} min ECG @ 500 Hz)\n");
    let data = ecg_500hz(minutes, 3);
    println!("events: {}\n", data.present_events());

    let mut t = Table::new(&[
        "operation",
        "Trill (s)",
        "NumLib (s)",
        "LifeStream (s)",
        "LS vs Trill",
        "LS vs NumLib",
    ]);
    for op in Operation::all() {
        let (_, tr) = time(|| trill_operation(op, &data));
        let (_, nl) = time(|| numlib_operation(op, &data));
        let (_, ls) = time(|| lifestream_operation(op, &data));
        t.row(&[
            op.name().into(),
            format!("{tr:.2}"),
            format!("{nl:.2}"),
            format!("{ls:.2}"),
            format!("{:.2}x", tr / ls),
            format!("{:.2}x", nl / ls),
        ]);
    }
    println!("{}", t.render());
    println!("paper: LifeStream 5–11.2x faster than Trill; within ~50% of NumLib");
    println!("       (1.35x faster on Normalize; ~2x slower on the fills)");
}
