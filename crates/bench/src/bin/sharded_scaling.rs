//! Sharded-runtime scaling: the Fig. 10(c) workload served by the
//! long-lived [`ShardedRuntime`], swept over worker counts, emitting a
//! machine-readable JSON series (one point per thread count) alongside
//! the human-readable table.
//!
//! Environment knobs:
//! * `LS_SCALE` — workload scale factor (shared with every bench).
//! * `LS_PATIENTS` — patient count (default `4 × workers_max`, min 16).
//! * `LS_THREADS` — comma-separated worker counts (default `1,2,4,8`).
//! * `LS_JSON_OUT` — also write the JSON to this path.
//!
//! The JSON deliberately records `host_cores`: thread counts beyond the
//! physical cores oversubscribe, and on a single-core host the curve is
//! flat — the series is only meaningful relative to that field.

use std::fmt::Write as _;

use cluster_harness::multicore::run_workload_sharded;
use cluster_harness::sharded::ShardedConfig;
use cluster_harness::PatientWorkload;
use lifestream_bench::{scaled_minutes, Table};
use lifestream_core::pipeline::fig3_pipeline;

struct Point {
    workers: usize,
    events: u64,
    elapsed_s: f64,
    mev_per_s: f64,
    compiles: u64,
    recycles: u64,
    stolen: u64,
    oom: bool,
}

fn measure(workload: &PatientWorkload, workers: usize) -> Point {
    let start = std::time::Instant::now();
    let (events, oom, stats) = run_workload_sharded(
        workload,
        ShardedConfig::with_workers(workers).round_ticks(workload.window),
    );
    let elapsed = start.elapsed().as_secs_f64();
    Point {
        workers,
        events,
        elapsed_s: elapsed,
        mev_per_s: events as f64 / elapsed / 1e6,
        compiles: stats.compiles,
        recycles: stats.recycles,
        stolen: stats.stolen,
        oom,
    }
}

/// The pre-sharding harness as a baseline: one thread, a fresh compile +
/// trace + memory plan for every patient (what `multicore.rs` did before
/// the sharded runtime existed). The warm-vs-cold ratio isolates the
/// pooling win from the thread-scaling win — meaningful even when the
/// host has a single core and the thread curve is flat.
fn measure_cold(workload: &PatientWorkload) -> f64 {
    let window = workload.window;
    let start = std::time::Instant::now();
    let mut events = 0u64;
    for (ecg, abp) in &workload.patients {
        let q = fig3_pipeline(ecg.shape(), abp.shape(), 1000).expect("pipeline");
        let mut exec = q
            .compile()
            .expect("compile")
            .executor_with(
                vec![ecg.clone(), abp.clone()],
                lifestream_core::exec::ExecOptions::default().with_round_ticks(window),
            )
            .expect("executor");
        exec.run().expect("run");
        events += (ecg.present_events() + abp.present_events()) as u64;
    }
    events as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: Vec<usize> = std::env::var("LS_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    let max_workers = threads.iter().copied().max().unwrap_or(1);
    let patients: usize = std::env::var("LS_PATIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (max_workers * 4).max(16));
    let minutes = scaled_minutes(5);
    println!(
        "Sharded-runtime scaling — Fig. 10(c) workload \
         ({patients} patients x {minutes} min, {cores} host cores)\n"
    );
    let workload = PatientWorkload::synthesize(patients, minutes, 77);
    let total_events = workload.total_events();
    println!("total events: {:.2}M\n", total_events as f64 / 1e6);

    let mut table = Table::new(&[
        "workers", "Mev/s", "speedup", "compiles", "recycles", "stolen",
    ]);
    let mut points = Vec::new();
    for &w in &threads {
        let p = measure(&workload, w);
        let base = points
            .first()
            .map_or(p.mev_per_s, |b: &Point| b.mev_per_s.max(1e-12));
        table.row(&[
            w.to_string(),
            if p.oom {
                "OOM".into()
            } else {
                format!("{:.3}", p.mev_per_s)
            },
            format!("{:.2}x", p.mev_per_s / base),
            p.compiles.to_string(),
            p.recycles.to_string(),
            p.stolen.to_string(),
        ]);
        points.push(p);
    }
    println!("{}", table.render());

    let cold = measure_cold(&workload);
    let warm1 = points.first().map_or(0.0, |p| p.mev_per_s);
    println!(
        "\ncold baseline (compile per patient, 1 thread): {:.3} Mev/s; \
         pooled runtime at 1 worker: {:.3} Mev/s ({:.2}x)",
        cold,
        warm1,
        warm1 / cold.max(1e-12)
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sharded_scaling\",");
    let _ = writeln!(json, "  \"workload\": \"fig10c_ecg_abp_fig3\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"patients\": {patients},");
    let _ = writeln!(json, "  \"minutes\": {minutes},");
    let _ = writeln!(json, "  \"total_events\": {total_events},");
    let _ = writeln!(json, "  \"cold_compile_per_patient_mev_per_s\": {cold:.4},");
    let _ = writeln!(
        json,
        "  \"pooled_vs_cold_speedup_1_worker\": {:.3},",
        warm1 / cold.max(1e-12)
    );
    let _ = writeln!(json, "  \"points\": [");
    let base = points.first().map_or(0.0, |p| p.mev_per_s);
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"events\": {}, \"elapsed_s\": {:.4}, \
             \"mev_per_s\": {:.4}, \"speedup_vs_1\": {:.3}, \"compiles\": {}, \
             \"recycles\": {}, \"stolen\": {}, \"oom\": {}}}{comma}",
            p.workers,
            p.events,
            p.elapsed_s,
            p.mev_per_s,
            p.mev_per_s / base.max(1e-12),
            p.compiles,
            p.recycles,
            p.stolen,
            p.oom,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    println!("\n{json}");
    if let Ok(path) = std::env::var("LS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write JSON output");
        println!("wrote {path}");
    }
}
