//! Fig. 10(c): multi-core scaling — throughput of the end-to-end pipeline
//! as worker threads grow, patients partitioned across workers.
//!
//! The LifeStream arm runs on the sharded multi-patient runtime
//! (`cluster_harness::sharded`): long-lived shard workers with pooled,
//! recycled executors, so the curve measures the service's steady state
//! rather than a compile-per-patient loop. See `sharded_scaling` for the
//! JSON-emitting sweep of the sharded runtime alone.
//!
//! Paper (32-core m5a.8xlarge): LifeStream scales to 32 threads; Trill
//! OOMs beyond 12; NumLib saturates around 24 threads at 44% below
//! LifeStream's peak.

use cluster_harness::multicore::{run_scaling, Engine, PatientWorkload};
use lifestream_bench::{scaled_minutes, Table};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let minutes = scaled_minutes(10);
    let patients = (cores * 4).max(16);
    println!(
        "Fig. 10(c) — multi-core scaling ({patients} patients x {minutes} min, {cores} cores)\n"
    );
    let workload = PatientWorkload::synthesize(patients, minutes, 77);
    println!(
        "total events: {:.1}M\n",
        workload.total_events() as f64 / 1e6
    );

    // Machine memory budget, shared by the workers (paper machine: 128 GB;
    // we scale to the workload so Trill's failure point is visible).
    let budget: usize = std::env::var("LS_MEM_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512 << 20);

    let mut threads = vec![1usize, 2, 4];
    let mut n = 8;
    while n <= cores * 2 {
        threads.push(n);
        n *= 2;
    }

    let mut t = Table::new(&["threads", "LifeStream Mev/s", "Trill Mev/s", "NumLib Mev/s"]);
    for &th in &threads {
        let ls = run_scaling(Engine::LifeStream, &workload, th, budget);
        let tr = run_scaling(Engine::Trill, &workload, th, budget);
        let nl = run_scaling(Engine::NumLib, &workload, th, budget);
        let cell = |p: &cluster_harness::multicore::ScalePoint| {
            if p.oom {
                "OOM".to_string()
            } else {
                format!("{:.2}", p.mev_per_s)
            }
        };
        t.row(&[th.to_string(), cell(&ls), cell(&tr), cell(&nl)]);
    }
    println!("{}", t.render());
    println!("paper: LS scales to 32 threads; Trill OOM >12; NumLib saturates ~24");
    println!("note : thread counts beyond this host's {cores} cores oversubscribe");
}
