//! Wire-fabric throughput: the same live feed pushed through an
//! in-process [`LiveIngest`] and through a [`RemoteIngest`] talking TCP
//! to a loopback [`ShardServer`], at several batch sizes.
//!
//! What this pins down: the wire transport's *overhead profile*. A
//! per-sample frame (batch 1) pays a syscall + ack round trip per
//! sample, so it is dominated by the wire; batching amortizes the frame
//! and ack costs exactly as client-side staging amortized channel sends
//! in-process. Outputs are asserted byte-identical between local and
//! remote before any throughput is compared — a transport that cheats
//! by dropping or re-timing samples fails the bench rather than winning
//! it.
//!
//! Environment knobs:
//! * `LS_SCALE` — workload scale factor (shared with every bench).
//! * `LS_WORKERS` — server-side ingest shard count (default 2).
//! * `LS_JSON_OUT` — also write the JSON to this path.
//!
//! As with the other live benches, `host_cores` is recorded; on one
//! core the client and server time-slice, so absolute Mev/s undersells
//! real deployments while the batched-vs-per-frame ratio stays the
//! portable signal.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cluster_harness::net::{RemoteConfig, RemoteIngest, ShardServer};
use cluster_harness::sharded::{Ingest, IngestConfig, LiveIngest, PipelineFactory};
use lifestream_bench::{scale, Table};
use lifestream_core::ops::aggregate::AggKind;
use lifestream_core::stream::Query;
use lifestream_core::time::{StreamShape, Tick};

const ROUND: Tick = 1_000;
const PERIOD: Tick = 2;

fn factory() -> PipelineFactory {
    Arc::new(|| {
        let q = Query::new();
        q.source("sig", StreamShape::new(0, PERIOD))
            .select(1, |i, o| o[0] = i[0] * 0.25 + 1.0)?
            .aggregate(AggKind::Mean, 50 * PERIOD, 5 * PERIOD)?
            .sink();
        q.compile()
    })
}

fn wave(k: i64, p: u64) -> f32 {
    (((k * 37 + p as i64 * 101) % 997) as f32) / 7.0
}

struct ModeResult {
    label: String,
    elapsed_s: f64,
    mev_per_s: f64,
    frames: u64,
    checksum: u64,
}

fn run(label: &str, ingest: &dyn Ingest, patients: u64, samples: i64) -> ModeResult {
    for p in 0..patients {
        ingest.admit(p).expect("admit");
    }
    let poll_every = ROUND / PERIOD;
    let start = Instant::now();
    for k in 0..samples {
        for p in 0..patients {
            ingest.push(p, 0, k * PERIOD, wave(k, p));
        }
        if k % poll_every == 0 {
            ingest.poll();
        }
    }
    let mut checksum = 0u64;
    for p in 0..patients {
        let out = ingest.finish(p).expect("finish");
        checksum ^= out.checksum().rotate_left((p % 63) as u32);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = ingest.stats();
    assert_eq!(stats.dropped_unknown, 0);
    ModeResult {
        label: label.to_string(),
        elapsed_s: elapsed,
        mev_per_s: patients as f64 * samples as f64 / elapsed / 1e6,
        frames: stats.batches_flushed,
        checksum,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers: usize = std::env::var("LS_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let patients: u64 = 4;
    let samples: i64 = ((50_000.0 * scale()) as i64).max(2_000);
    println!(
        "Wire-fabric throughput — {patients} patients x {samples} samples over loopback TCP, \
         {workers} server shards, {cores} host cores\n"
    );

    let mut modes: Vec<ModeResult> = Vec::new();

    // Baseline: no wire at all.
    let local = LiveIngest::with_config(factory(), IngestConfig::new(workers, ROUND).batch(256));
    modes.push(run("local (in-process)", &local, patients, samples));
    local.shutdown();

    // Remote at several frame sizes, one fresh server each so session
    // state never carries over.
    for batch in [1usize, 64, 1024] {
        let server = ShardServer::bind(factory(), IngestConfig::new(workers, ROUND), "127.0.0.1:0")
            .expect("bind loopback");
        let remote = RemoteIngest::connect(
            server.local_addr(),
            RemoteConfig::default().batch(batch).window(32),
        )
        .expect("connect");
        modes.push(run(
            &format!("remote batch={batch}"),
            &remote,
            patients,
            samples,
        ));
        remote.shutdown();
        server.shutdown();
    }

    // The transport must be invisible in results before speed matters.
    for m in &modes[1..] {
        assert_eq!(
            m.checksum, modes[0].checksum,
            "{}: wire transport leaked into output",
            m.label
        );
    }

    let mut table = Table::new(&["mode", "Mev/s", "vs local", "frames"]);
    let base = modes[0].mev_per_s;
    for m in &modes {
        table.row(&[
            m.label.clone(),
            format!("{:.3}", m.mev_per_s),
            format!("{:.2}x", m.mev_per_s / base.max(1e-12)),
            m.frames.to_string(),
        ]);
    }
    println!("{}", table.render());
    let per_frame = modes[1].mev_per_s;
    let batched = modes.last().map_or(0.0, |m| m.mev_per_s);
    let speedup = batched / per_frame.max(1e-12);
    println!("\nbatched (1024) vs per-sample frames over TCP: {speedup:.2}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"net_throughput\",");
    let _ = writeln!(json, "  \"workload\": \"select_sliding_mean_live_tcp\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"server_workers\": {workers},");
    let _ = writeln!(json, "  \"faults_injected\": 0,");
    let _ = writeln!(json, "  \"patients\": {patients},");
    let _ = writeln!(json, "  \"samples_per_patient\": {samples},");
    let _ = writeln!(json, "  \"round_ticks\": {ROUND},");
    let _ = writeln!(json, "  \"batched_vs_per_frame_speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"modes\": [");
    for (i, m) in modes.iter().enumerate() {
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"elapsed_s\": {:.4}, \"mev_per_s\": {:.4}, \
             \"frames\": {}}}{comma}",
            m.label, m.elapsed_s, m.mev_per_s, m.frames
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    println!("\n{json}");
    if let Ok(path) = std::env::var("LS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write JSON output");
        println!("wrote {path}");
    }
}
