//! Fig. 10(a): targeted query processing — LifeStream's speedup over the
//! Trill baseline on the end-to-end pipeline as the fraction of mutually
//! overlapping ECG/ABP events varies.
//!
//! Paper: ~7× at full overlap rising to ~65× at 5–10% overlap, because
//! targeted processing skips all work in non-overlapping regions while
//! the eager engine transforms everything.

use lifestream_bench::*;
use lifestream_signal::dataset::ecg_abp_with_overlap;

fn main() {
    let minutes = scaled_minutes(60);
    println!("Fig. 10(a) — speedup vs overlap fraction ({minutes} min ECG+ABP)\n");
    let mut t = Table::new(&[
        "overlap",
        "Trill (s)",
        "LifeStream (s)",
        "speedup",
        "LS skipped rounds",
    ]);
    for overlap in [1.0, 0.8, 0.6, 0.4, 0.2, 0.1] {
        let (ecg, abp) = ecg_abp_with_overlap(minutes, overlap, 9);
        let (_, tr) = time(|| trill_e2e(&ecg, &abp, usize::MAX).expect("trill"));
        // Run LifeStream and capture skip stats.
        let (stats, ls) = time(|| {
            let qb = lifestream_core::pipeline::fig3_pipeline(ecg.shape(), abp.shape(), 1000)
                .expect("pipeline");
            let mut exec = qb
                .compile()
                .expect("compile")
                .executor_with(
                    vec![ecg.clone(), abp.clone()],
                    lifestream_core::exec::ExecOptions::default().with_round_ticks(WINDOW_1MIN),
                )
                .expect("executor");
            exec.run().expect("run")
        });
        t.row(&[
            format!("{:.0}%", overlap * 100.0),
            format!("{tr:.2}"),
            format!("{ls:.2}"),
            format!("{:.1}x", tr / ls),
            format!("{:.0}%", stats.skip_fraction() * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("paper: ~7.4x at 100% overlap -> 25-65x below 40% overlap");
}
