//! Table 1: single-core throughput (million events/s) of the distributed
//! engines, the Trill baseline, NumLib (SciPy), and LifeStream on
//! temporal join and upsampling.
//!
//! Paper row (M ev/s): Join — Spark 0.07, Storm 0.04, Flink 0.09,
//! Trill 0.80; Upsampling — Trill 0.69, SciPy 15.06.

use distrib_baseline::{run_join, run_upsample, Profile};
use lifestream_bench::*;

fn main() {
    let minutes = scaled_minutes(30);
    println!("Table 1 — temporal join & upsampling throughput ({minutes} min workloads)\n");

    let (l, r) = table1_join_pair(minutes, 1);
    let join_events = (l.present_events() + r.present_events()) as f64;

    let mut t = Table::new(&["benchmark", "engine", "Mev/s", "out events"]);

    for profile in [Profile::spark(), Profile::storm(), Profile::flink()] {
        let (stats, s) = time(|| run_join(profile, &l, &r));
        t.row(&[
            "Temporal Join".into(),
            profile.name.into(),
            format!("{:.3}", join_events / s / 1e6),
            stats.output_events.to_string(),
        ]);
    }
    let (out, s) = time(|| trill_join(&l, &r));
    t.row(&[
        "Temporal Join".into(),
        "trill".into(),
        format!("{:.3}", join_events / s / 1e6),
        out.to_string(),
    ]);
    let (out, s) = time(|| lifestream_join(&l, &r));
    t.row(&[
        "Temporal Join".into(),
        "lifestream".into(),
        format!("{:.3}", join_events / s / 1e6),
        out.to_string(),
    ]);

    let abp = abp_125hz(minutes, 2);
    let up_events = abp.present_events() as f64;
    let (out, s) = time(|| trill_upsample(&abp));
    t.row(&[
        "Upsampling".into(),
        "trill".into(),
        format!("{:.3}", up_events / s / 1e6),
        out.to_string(),
    ]);
    let (out, s) = time(|| numlib_upsample(&abp));
    t.row(&[
        "Upsampling".into(),
        "scipy(numlib)".into(),
        format!("{:.3}", up_events / s / 1e6),
        out.to_string(),
    ]);
    let (out, s) = time(|| lifestream_upsample(&abp));
    t.row(&[
        "Upsampling".into(),
        "lifestream".into(),
        format!("{:.3}", up_events / s / 1e6),
        out.to_string(),
    ]);
    for profile in [Profile::spark(), Profile::storm(), Profile::flink()] {
        let (stats, s) = time(|| run_upsample(profile, &abp, 2));
        t.row(&[
            "Upsampling".into(),
            profile.name.into(),
            format!("{:.3}", up_events / s / 1e6),
            stats.output_events.to_string(),
        ]);
    }

    println!("{}", t.render());
    println!("paper (Mev/s): join spark .07 / storm .04 / flink .09 / trill .80;");
    println!("               upsample trill .69 / scipy 15.06");
}
