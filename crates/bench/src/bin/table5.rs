//! Table 5: last-level-cache misses of Trill vs. LifeStream on the
//! Normalize query as the Trill batch size grows, replayed on the LLC
//! model (20 MiB / 64 B / 20-way — the Xeon E5-2660 of §7).
//!
//! Paper (M misses): batch 1e5 → 2.43 vs 0.79; 1e6 → 4.11 vs 0.82;
//! 1e7 → 6.73 vs 0.96.

use lifestream_bench::Table;
use llc_sim::trace::{lifestream_normalize_trace, trill_normalize_trace};
use llc_sim::{CacheConfig, CacheSim};

fn main() {
    // Fixed workload: 20 M events through a 4-operator Normalize chain
    // (ingress + mean/std + scale stages); 16 B per event (64-bit sync,
    // 32-bit payload, duration amortized columnar).
    let events = (20_000_000.0 * lifestream_bench::scale()) as u64;
    let ops = 4u64;
    let bytes_per_event = 16u64;
    // LifeStream's traced dimension for Normalize: 1-minute round at
    // 500 Hz = 30 000 events per FWindow.
    let window_events = 30_000u64;

    println!("Table 5 — LLC misses on Normalize (modelled Xeon E5-2660 LLC, {events} events)\n");
    let mut t = Table::new(&[
        "batch size",
        "Trill misses (M)",
        "LifeStream misses (M)",
        "ratio",
    ]);
    for batch in [100_000u64, 1_000_000, 10_000_000] {
        let mut trill_cache = CacheSim::new(CacheConfig::xeon_e5_2660_llc());
        trill_normalize_trace(events, batch, ops, bytes_per_event).replay(&mut trill_cache);
        let mut ls_cache = CacheSim::new(CacheConfig::xeon_e5_2660_llc());
        lifestream_normalize_trace(events, window_events, ops, bytes_per_event)
            .replay(&mut ls_cache);
        t.row(&[
            format!("1e{}", (batch as f64).log10() as u32),
            format!("{:.2}", trill_cache.misses() as f64 / 1e6),
            format!("{:.2}", ls_cache.misses() as f64 / 1e6),
            format!(
                "{:.1}x",
                trill_cache.misses() as f64 / ls_cache.misses() as f64
            ),
        ]);
    }
    println!("{}", t.render());
    println!("paper: Trill 2.43 / 4.11 / 6.73 M vs LifeStream 0.79 / 0.82 / 0.96 M");
    println!("shape: Trill misses grow with batch size; LifeStream stays flat");
}
