//! Criterion version of the Fig. 9(a) primitive micro-benchmarks:
//! Trill vs. LifeStream on each primitive temporal operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifestream_bench::{
    lifestream_primitive, synthetic_1khz, synthetic_500hz, trill_primitive, Primitive,
};

fn bench_primitives(c: &mut Criterion) {
    let data = synthetic_1khz(2, 1);
    let side = synthetic_500hz(2, 2);
    let mut g = c.benchmark_group("fig9a_primitives");
    g.sample_size(10);
    for p in Primitive::all() {
        let side_opt = matches!(p, Primitive::ClipJoin | Primitive::Join).then_some(&side);
        g.bench_with_input(BenchmarkId::new("lifestream", p.name()), &p, |b, &p| {
            b.iter(|| lifestream_primitive(p, &data, side_opt))
        });
        g.bench_with_input(BenchmarkId::new("trill", p.name()), &p, |b, &p| {
            b.iter(|| trill_primitive(p, &data, side_opt))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
