//! Criterion version of the Fig. 9(b) operation benchmarks: Trill vs.
//! NumLib vs. LifeStream on the Table 3 operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifestream_bench::{
    ecg_500hz, lifestream_operation, numlib_operation, trill_operation, Operation,
};

fn bench_operations(c: &mut Criterion) {
    let data = ecg_500hz(2, 3);
    let mut g = c.benchmark_group("fig9b_operations");
    g.sample_size(10);
    for op in Operation::all() {
        g.bench_with_input(BenchmarkId::new("lifestream", op.name()), &op, |b, &op| {
            b.iter(|| lifestream_operation(op, &data))
        });
        g.bench_with_input(BenchmarkId::new("trill", op.name()), &op, |b, &op| {
            b.iter(|| trill_operation(op, &data))
        });
        g.bench_with_input(BenchmarkId::new("numlib", op.name()), &op, |b, &op| {
            b.iter(|| numlib_operation(op, &data))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_operations);
criterion_main!(benches);
