//! Criterion version of the Fig. 9(c) end-to-end benchmark: the Fig. 3
//! pipeline on all three engines over real-like gap-bearing data.

use criterion::{criterion_group, criterion_main, Criterion};
use lifestream_bench::{lifestream_e2e, numlib_e2e, trill_e2e, WINDOW_1MIN};
use lifestream_signal::dataset::ecg_abp_pair;

fn bench_endtoend(c: &mut Criterion) {
    let (ecg, abp) = ecg_abp_pair(5, 42);
    let mut g = c.benchmark_group("fig9c_endtoend");
    g.sample_size(10);
    g.bench_function("lifestream", |b| {
        b.iter(|| lifestream_e2e(&ecg, &abp, WINDOW_1MIN))
    });
    g.bench_function("trill", |b| {
        b.iter(|| trill_e2e(&ecg, &abp, usize::MAX).expect("trill"))
    });
    g.bench_function("numlib", |b| b.iter(|| numlib_e2e(&ecg, &abp)));
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
