//! Buffer-granularity access traces and the engine memory-behaviour
//! builders used by the Table 5 experiment.

use crate::cache::CacheSim;

/// One contiguous access: sweep `len` bytes starting at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Start byte address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// An ordered access trace (sequence of buffer sweeps).
#[derive(Debug, Clone, Default)]
pub struct AccessTrace {
    segments: Vec<Segment>,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sweep.
    pub fn sweep(&mut self, addr: u64, len: u64) {
        self.segments.push(Segment { addr, len });
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Replays the trace against a cache.
    pub fn replay(&self, cache: &mut CacheSim) {
        for s in &self.segments {
            cache.access(s.addr, s.len);
        }
    }

    /// Total bytes swept.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }
}

/// A bump allocator over a simulated address space — models a real
/// allocator handing out *fresh* addresses for every dynamic allocation
/// (so repeated per-batch allocations never reuse cache-resident lines,
/// while a static plan does).
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    /// Freed blocks awaiting reuse: `(addr, len)`.
    free: Vec<(u64, u64)>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates a fresh address space (allocations start above the null
    /// page).
    pub fn new() -> Self {
        Self {
            next: 0x1000,
            free: Vec::new(),
        }
    }

    /// Allocates `len` bytes, 64-byte aligned; returns the base address.
    /// Freed blocks of the same size are reused first, as a real
    /// allocator's size-class free lists would.
    pub fn alloc(&mut self, len: u64) -> u64 {
        if let Some(pos) = self.free.iter().position(|&(_, l)| l == len) {
            return self.free.swap_remove(pos).0;
        }
        let base = (self.next + 63) & !63;
        self.next = base + len;
        base
    }

    /// Returns a block to the free list.
    pub fn free(&mut self, addr: u64, len: u64) {
        self.free.push((addr, len));
    }
}

/// Builds the access trace of a **Trill-style** run of the Normalize
/// query: the input is processed batch-at-a-time; each operator in the
/// chain allocates a fresh output buffer and sweeps its whole input batch
/// before the next operator runs (operator-at-a-time over the batch).
///
/// `events` total events, `batch` events per batch, `ops` chained
/// operators, `bytes_per_event` event footprint (sync + duration +
/// payload columns).
pub fn trill_normalize_trace(
    events: u64,
    batch: u64,
    ops: u64,
    bytes_per_event: u64,
) -> AccessTrace {
    let mut trace = AccessTrace::new();
    let mut mem = AddressSpace::new();
    let mut remaining = events;
    while remaining > 0 {
        let n = remaining.min(batch);
        remaining -= n;
        let bytes = n * bytes_per_event;
        // Ingress allocates the batch...
        let mut cur = mem.alloc(bytes);
        trace.sweep(cur, bytes);
        // ...then each operator reads it fully and writes a freshly
        // allocated output, freeing its input afterwards (the allocator's
        // free lists recycle the addresses, so whether the recycled lines
        // are still cache-resident depends on the batch size — the Table 5
        // effect).
        for _ in 0..ops {
            let out = mem.alloc(bytes);
            trace.sweep(cur, bytes); // read input
            trace.sweep(out, bytes); // write output
            mem.free(cur, bytes);
            cur = out;
        }
        mem.free(cur, bytes);
    }
    trace
}

/// Builds the access trace of a **LifeStream** run of the same query: all
/// FWindows preallocated once; every round sweeps the same small windows
/// through the whole operator chain (round-at-a-time over the plan).
///
/// `events` total events, `window_events` events per FWindow round, `ops`
/// chained operators, `bytes_per_event` event footprint.
pub fn lifestream_normalize_trace(
    events: u64,
    window_events: u64,
    ops: u64,
    bytes_per_event: u64,
) -> AccessTrace {
    let mut trace = AccessTrace::new();
    let mut mem = AddressSpace::new();
    // One FWindow per pipeline node, allocated once.
    let windows: Vec<u64> = (0..=ops)
        .map(|_| mem.alloc(window_events * bytes_per_event))
        .collect();
    let rounds = events.div_ceil(window_events.max(1));
    for _ in 0..rounds {
        // Round-at-a-time: source window filled, then each operator reads
        // its input window and writes its (reused) output window.
        trace.sweep(windows[0], window_events * bytes_per_event);
        for o in 0..ops as usize {
            trace.sweep(windows[o], window_events * bytes_per_event);
            trace.sweep(windows[o + 1], window_events * bytes_per_event);
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, CacheSim};

    fn llc() -> CacheSim {
        CacheSim::new(CacheConfig::xeon_e5_2660_llc())
    }

    #[test]
    fn address_space_is_monotone_and_aligned() {
        let mut m = AddressSpace::new();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert!(b >= a + 100);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
    }

    #[test]
    fn trace_replay_counts() {
        let mut t = AccessTrace::new();
        t.sweep(0, 6400);
        t.sweep(0, 6400);
        let mut c = llc();
        t.replay(&mut c);
        assert_eq!(c.misses(), 100);
        assert_eq!(c.hits(), 100);
        assert_eq!(t.total_bytes(), 12800);
    }

    #[test]
    fn trill_misses_grow_with_batch_size_table5_shape() {
        // Fixed workload, growing batch size — the Table 5 sweep.
        let events = 2_000_000u64;
        let mut prev = 0;
        for batch in [100_000u64, 1_000_000, 2_000_000] {
            let mut c = llc();
            trill_normalize_trace(events, batch, 4, 16).replay(&mut c);
            assert!(
                c.misses() >= prev,
                "misses should not shrink with batch size"
            );
            prev = c.misses();
        }
    }

    #[test]
    fn lifestream_misses_flat_and_small() {
        let events = 2_000_000u64;
        let mut c1 = llc();
        lifestream_normalize_trace(events, 30_000, 4, 16).replay(&mut c1);
        let mut c2 = llc();
        trill_normalize_trace(events, 1_000_000, 4, 16).replay(&mut c2);
        assert!(
            c1.misses() * 2 < c2.misses(),
            "lifestream {} vs trill {}",
            c1.misses(),
            c2.misses()
        );
    }

    #[test]
    fn lifestream_windows_stay_resident_when_plan_fits() {
        // Plan of 5 windows x 30k events x 16 B = 2.4 MB << 20 MiB LLC.
        let mut c = llc();
        lifestream_normalize_trace(1_000_000, 30_000, 4, 16).replay(&mut c);
        // Only cold misses on the plan: ~2.4 MB / 64 B lines.
        let cold = (5 * 30_000 * 16) / 64;
        assert!(
            c.misses() <= cold as u64 * 2,
            "misses {} should be near cold {}",
            c.misses(),
            cold
        );
    }
}
