//! The set-associative cache model.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The evaluation machine's LLC: Xeon E5-2660, 20 MiB, 64 B lines,
    /// 20-way.
    pub fn xeon_e5_2660_llc() -> Self {
        Self {
            capacity: 20 << 20,
            line: 64,
            ways: 20,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `line * ways`).
    pub fn sets(&self) -> usize {
        assert!(
            self.line > 0 && self.ways > 0 && self.capacity.is_multiple_of(self.line * self.ways),
            "inconsistent cache geometry {self:?}"
        );
        self.capacity / (self.line * self.ways)
    }
}

/// A set-associative cache with true-LRU replacement, accessed by byte
/// address ranges.
///
/// # Examples
/// ```
/// use llc_sim::{CacheConfig, CacheSim};
/// let mut c = CacheSim::new(CacheConfig { capacity: 4096, line: 64, ways: 4 });
/// c.access(0, 4096);        // cold: 64 misses
/// assert_eq!(c.misses(), 64);
/// c.access(0, 4096);        // warm: all hits
/// assert_eq!(c.misses(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// sets × ways line tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let slots = config.sets() * config.ways;
        Self {
            config,
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Total line hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total line misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `0.0..=1.0` (0 when nothing was accessed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets counters but keeps cache contents (for steady-state
    /// measurement after a warm-up pass).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Touches one cache line containing byte address `addr`.
    #[inline]
    pub fn touch(&mut self, addr: u64) {
        let line_addr = addr / self.config.line as u64;
        let sets = self.config.sets() as u64;
        let set = (line_addr % sets) as usize;
        let ways = self.config.ways;
        let base = set * ways;
        self.clock += 1;
        // Probe the set.
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + ways {
            if self.tags[i] == line_addr {
                self.stamps[i] = self.clock;
                self.hits += 1;
                return;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.misses += 1;
        self.tags[victim] = line_addr;
        self.stamps[victim] = self.clock;
    }

    /// Sequentially accesses every line of `[addr, addr + len)`.
    pub fn access(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = self.config.line as u64;
        let first = addr / line;
        let last = (addr + len - 1) / line;
        for l in first..=last {
            self.touch(l * line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheSim {
        CacheSim::new(CacheConfig {
            capacity: 4096,
            line: 64,
            ways: 4,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig {
            capacity: 4096,
            line: 64,
            ways: 4,
        };
        assert_eq!(c.sets(), 16);
        assert_eq!(CacheConfig::xeon_e5_2660_llc().sets(), 16384);
    }

    #[test]
    fn cold_then_warm() {
        let mut c = small();
        c.access(0, 4096);
        assert_eq!(c.misses(), 64);
        assert_eq!(c.hits(), 0);
        c.access(0, 4096);
        assert_eq!(c.misses(), 64);
        assert_eq!(c.hits(), 64);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small();
        // 8 KiB working set in a 4 KiB cache, swept repeatedly with LRU:
        // every access misses (classic LRU sequential thrash).
        for _ in 0..4 {
            c.access(0, 8192);
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 4 * 128);
    }

    #[test]
    fn small_working_set_stays_resident() {
        let mut c = small();
        for _ in 0..100 {
            c.access(0, 2048); // half the cache
        }
        assert_eq!(c.misses(), 32); // cold only
        assert_eq!(c.hits(), 99 * 32);
    }

    #[test]
    fn distinct_buffers_map_to_distinct_lines() {
        let mut c = small();
        c.access(0, 64);
        c.access(1 << 20, 64);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn partial_line_access_touches_whole_line() {
        let mut c = small();
        c.access(10, 4); // inside line 0
        c.access(0, 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = small();
        c.access(0, 2048);
        c.reset_counters();
        c.access(0, 2048);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hits(), 32);
    }

    #[test]
    fn zero_length_access_is_noop() {
        let mut c = small();
        c.access(100, 0);
        assert_eq!(c.hits() + c.misses(), 0);
    }
}
