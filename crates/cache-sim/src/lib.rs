//! # llc-sim
//!
//! A set-associative last-level-cache simulator used to reproduce Table 5
//! (LLC misses of Trill vs. LifeStream on the Normalize query across batch
//! sizes).
//!
//! The paper measures LLC misses with Intel vTune on a Xeon E5-2660
//! (20 MiB LLC). PMU counters are not portable, so both engines instead
//! describe their memory behaviour as *buffer-granularity access traces* —
//! sequential sweeps over the address ranges of the buffers they actually
//! touch, in execution order — and this crate replays those traces against
//! an inclusive, set-associative LLC model with true-LRU replacement.
//!
//! The effect Table 5 demonstrates is purely a working-set-vs-cache-size
//! phenomenon: Trill streams whole batches through every operator (fresh
//! allocations each batch, working set ∝ batch size), while LifeStream
//! re-sweeps the same small preallocated FWindows every round (working
//! set ≈ plan size, independent of input scale). A faithful cache model
//! reproduces it without PMU access.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod trace;

pub use cache::{CacheConfig, CacheSim};
pub use trace::{AccessTrace, Segment};
