//! The paper's benchmark queries expressed against the Trill-style engine:
//! Table 3 operations, the Fig. 3 end-to-end application, and the Table 4
//! models. Each returns a ready-to-run [`TrillPipeline`] so the benchmark
//! harness can time `run()` directly.

use lifestream_core::time::{StreamShape, Tick};

use crate::engine::{AggKind, TrillHandle, TrillPipeline};

/// `Normalize`: standard-score over `window`-tick windows, written the
/// Trill way — windowed `Mean` and `Std` aggregates joined back onto the
/// stream (two temporal joins per event), then a projection. This is the
/// query a Trill user writes (Listing 1's pattern); the join-heavy plan is
/// exactly why the paper measures Trill 5× behind on Normalize.
pub fn normalize(p: &mut TrillPipeline, input: TrillHandle, window: Tick) -> TrillHandle {
    let mean = p.aggregate(input, AggKind::Mean, window, window);
    let std = p.aggregate(input, AggKind::Std, window, window);
    let j1 = p.join(input, mean);
    let j2 = p.join(j1, std);
    p.select(j2, 1, |v, o| o[0] = (v[0] - v[1]) / v[2].max(1e-9))
}

/// `PassFilter`: FIR convolution over `window`-tick windows, carrying the
/// tap history across windows.
pub fn pass_filter(
    p: &mut TrillPipeline,
    input: TrillHandle,
    window: Tick,
    taps: Vec<f32>,
) -> TrillHandle {
    let mut history: Vec<f32> = Vec::new();
    p.window_op(input, window, move |ts, vs, push| {
        for (i, &t_out) in ts.iter().enumerate().take(vs.len()) {
            let mut acc = 0.0f32;
            for (k, &t) in taps.iter().enumerate() {
                let idx = i as isize - k as isize;
                let x = if idx >= 0 {
                    vs[idx as usize]
                } else {
                    let h = history.len() as isize + idx;
                    if h < 0 {
                        continue;
                    }
                    history[h as usize]
                };
                acc += t * x;
            }
            push(t_out, acc);
        }
        let keep = taps.len().saturating_sub(1);
        let take = vs.len().min(keep);
        let mut next = Vec::with_capacity(keep);
        let old_needed = keep - take;
        let old_start = history.len().saturating_sub(old_needed);
        next.extend_from_slice(&history[old_start..]);
        next.extend_from_slice(&vs[vs.len() - take..]);
        history = next;
    })
}

/// `FillConst`: fills missing grid slots inside each window with a
/// constant. The engine sees only present events, so the window op
/// reconstructs the grid from timestamps.
pub fn fill_const(
    p: &mut TrillPipeline,
    input: TrillHandle,
    window: Tick,
    period: Tick,
    value: f32,
) -> TrillHandle {
    p.window_op(input, window, move |ts, vs, push| {
        if ts.is_empty() {
            return;
        }
        let wstart = ts[0].div_euclid(window) * window;
        // Align the reconstruction to the event grid using the first event.
        let first = ts[0] - ((ts[0] - wstart) / period) * period;
        let mut i = 0usize;
        let mut t = first;
        let wend = wstart + window;
        while t < wend {
            if i < ts.len() && ts[i] == t {
                push(t, vs[i]);
                i += 1;
            } else {
                push(t, value);
            }
            t += period;
        }
    })
}

/// `FillMean`: like [`fill_const`] but fills with the window's mean.
pub fn fill_mean(
    p: &mut TrillPipeline,
    input: TrillHandle,
    window: Tick,
    period: Tick,
) -> TrillHandle {
    p.window_op(input, window, move |ts, vs, push| {
        if ts.is_empty() {
            return;
        }
        let mean = vs.iter().sum::<f32>() / vs.len() as f32;
        let wstart = ts[0].div_euclid(window) * window;
        let wend = wstart + window;
        let first = ts[0] - ((ts[0] - wstart) / period) * period;
        let mut i = 0usize;
        let mut t = first;
        while t < wend {
            if i < ts.len() && ts[i] == t {
                push(t, vs[i]);
                i += 1;
            } else {
                push(t, mean);
            }
            t += period;
        }
    })
}

/// `Resample`: linear-interpolation up-sampling to `new_period`, written
/// the Trill way — query composition instead of a monolithic array kernel
/// (TrillDSP's motivating example):
///
/// 1. `Shift(p)` a copy of the stream so consecutive samples align,
/// 2. temporal `Join` to pair `(v[k-1], v[k])` (hash join per event),
/// 3. `Chop(new_period)` to explode each pair onto the output grid,
/// 4. a time-aware `Select` computing the interpolation fraction.
///
/// The pairing is one sample period delayed relative to an array kernel
/// (values interpolate the preceding interval), which does not change the
/// event count or the cost profile — the hash join plus the chop
/// explosion is what made Trill 22× slower than SciPy in Table 1.
///
/// `_window` is accepted for signature parity with the other engines.
pub fn resample(
    p: &mut TrillPipeline,
    input: TrillHandle,
    _window: Tick,
    new_period: Tick,
) -> TrillHandle {
    let src_period = p.period_of(input);
    let shifted = p.shift(input, src_period);
    let pairs = p.join(shifted, input); // (v[k-1], v[k]) at each grid point
    let exploded = p.chop(pairs, new_period);
    p.select_with_time(exploded, 1, move |t, v, o| {
        let frac = (t.rem_euclid(src_period)) as f32 / src_period as f32;
        o[0] = v[0] + frac * (v[1] - v[0]);
    })
}

/// The Fig. 3 end-to-end application on this engine: impute, upsample ABP
/// to the ECG rate, normalize both, inner-join. Source order: ECG, ABP.
pub fn fig3_pipeline(ecg: StreamShape, abp: StreamShape, window: Tick) -> TrillPipeline {
    let mut p = TrillPipeline::new();
    let ecg_src = p.source(ecg);
    let abp_src = p.source(abp);
    let ecg_f = fill_mean(&mut p, ecg_src, window, ecg.period());
    let abp_f = fill_mean(&mut p, abp_src, window, abp.period());
    let abp_up = resample(&mut p, abp_f, window, ecg.period());
    let ecg_n = normalize(&mut p, ecg_f, window);
    let abp_n = normalize(&mut p, abp_up, window);
    let j = p.join(ecg_n, abp_n);
    p.sink(j);
    p
}

/// The line-zero detection model on this engine: sliding normalization
/// (mean/std aggregates joined back onto the stream) followed by the same
/// constrained-DTW shape matching LifeStream's extended `Where` performs —
/// the model's work is engine-independent; only the plumbing differs.
pub fn linezero_pipeline(abp: StreamShape, pattern_len: usize) -> TrillPipeline {
    let mut p = TrillPipeline::new();
    let src = p.source(abp);
    let per = abp.period();
    let mean = p.aggregate(src, AggKind::Mean, 32 * per, per);
    let std = p.aggregate(src, AggKind::Std, 32 * per, per);
    let zipped = p.join(src, mean);
    let zipped2 = p.join(zipped, std);
    let normed = p.select(zipped2, 1, |v, o| o[0] = (v[0] - v[1]) / v[2].max(1e-6));
    // Shape detection as a user-defined operator over the stream.
    let mut matcher =
        lifestream_core::dtw::StreamingMatcher::new(vec![0.0; pattern_len.max(1)], 4, 3.0, true);
    let det = p.window_op(normed, 1024 * per, move |ts, vs, push| {
        for i in 0..vs.len() {
            if matcher.push(vs[i]) {
                push(ts[i], 1.0);
            }
        }
    });
    p.sink(det);
    p
}

/// The CAP feature pipeline on this engine: per-signal impute, upsample,
/// normalize, mask; then a join tree across all signals.
pub fn cap_pipeline(shapes: &[StreamShape], window: Tick) -> TrillPipeline {
    assert!(shapes.len() >= 2, "CAP needs at least two signals");
    let fastest = shapes.iter().map(|s| s.period()).min().unwrap();
    let mut p = TrillPipeline::new();
    let mut processed = Vec::new();
    for &shape in shapes {
        let src = p.source(shape);
        let filled = fill_mean(&mut p, src, window, shape.period());
        let up = if shape.period() != fastest {
            resample(&mut p, filled, window, fastest)
        } else {
            filled
        };
        let n = normalize(&mut p, up, window);
        let masked = p.where_(n, |v| v[0].abs() <= 8.0);
        processed.push(masked);
    }
    let mut joined = processed[0];
    for &next in &processed[1..] {
        joined = p.join(joined, next);
    }
    p.sink(joined);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::source::SignalData;

    fn sine(shape: StreamShape, n: usize) -> SignalData {
        SignalData::dense(
            shape,
            (0..n)
                .map(|i| (i as f32 * 0.1).sin() * 10.0 + 50.0)
                .collect(),
        )
    }

    #[test]
    fn normalize_runs_and_centers() {
        let s = StreamShape::new(0, 2);
        let mut p = TrillPipeline::new().with_collection();
        let src = p.source(s);
        let n = normalize(&mut p, src, 200);
        p.sink(n);
        p.run(vec![sine(s, 1000)]).unwrap();
        assert_eq!(p.collected().len(), 1000);
        let sum: f32 = p.collected().iter().map(|&(_, v)| v).sum();
        assert!(sum.abs() < 1.0);
    }

    #[test]
    fn fill_const_reconstructs_grid() {
        let s = StreamShape::new(0, 2);
        let mut data = sine(s, 100);
        data.punch_gap(20, 30); // drops 5 slots
        let mut p = TrillPipeline::new().with_collection();
        let src = p.source(s);
        let f = fill_const(&mut p, src, 40, 2, -9.0);
        p.sink(f);
        p.run(vec![data]).unwrap();
        assert_eq!(p.collected().len(), 100);
        let filled: Vec<_> = p
            .collected()
            .iter()
            .filter(|&&(t, v)| (20..30).contains(&t) && v == -9.0)
            .collect();
        assert_eq!(filled.len(), 5);
    }

    #[test]
    fn resample_doubles_rate() {
        let s = StreamShape::new(0, 8);
        let mut p = TrillPipeline::new().with_collection();
        let src = p.source(s);
        let r = resample(&mut p, src, 400, 2);
        p.sink(r);
        p.run(vec![SignalData::dense(
            s,
            (0..100).map(|i| i as f32).collect(),
        )])
        .unwrap();
        // ~4x the events (125 Hz -> 500 Hz), linear values preserved with
        // the composition's one-sample-period lag: output(t) = true(t - 8).
        assert!(p.collected().len() >= 380, "got {}", p.collected().len());
        let at10 = p.collected().iter().find(|&&(t, _)| t == 10).unwrap();
        assert!((at10.1 - 0.25).abs() < 1e-4, "got {}", at10.1);
    }

    #[test]
    fn fig3_runs_end_to_end() {
        let ecg = StreamShape::new(0, 2);
        let abp = StreamShape::new(0, 8);
        let mut p = fig3_pipeline(ecg, abp, 1000);
        let stats = p.run(vec![sine(ecg, 5000), sine(abp, 1250)]).unwrap();
        assert!(stats.output_events > 4000, "out {}", stats.output_events);
    }

    #[test]
    fn cap_runs_on_six_signals() {
        let shapes = [
            StreamShape::new(0, 2),
            StreamShape::new(0, 8),
            StreamShape::new(0, 8),
            StreamShape::new(0, 4),
            StreamShape::new(0, 2),
            StreamShape::new(0, 8),
        ];
        let data: Vec<SignalData> = shapes
            .iter()
            .map(|&s| sine(s, (4000 / s.period()) as usize))
            .collect();
        let mut p = cap_pipeline(&shapes, 1000);
        let stats = p.run(data).unwrap();
        assert!(stats.output_events > 500);
    }

    #[test]
    fn linezero_detects_flat_run() {
        let abp = StreamShape::new(0, 8);
        let mut vals: Vec<f32> = (0..4000)
            .map(|i| 80.0 + 20.0 * (i as f32 * 0.3).sin())
            .collect();
        for v in &mut vals[2000..2300] {
            *v = 0.0;
        }
        let mut p = linezero_pipeline(abp, 64);
        let stats = p.run(vec![SignalData::dense(abp, vals)]).unwrap();
        assert!(stats.output_events >= 1);
    }
}
