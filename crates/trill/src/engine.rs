//! The eager push-dataflow engine: operator nodes, batch scheduler, and
//! run statistics.

use lifestream_core::source::SignalData;
use lifestream_core::time::{StreamShape, Tick};

use crate::batch::{StreamBatch, DEFAULT_BATCH_SIZE};
use crate::join::HashJoin;

/// Aggregate kinds (mirrors the core engine's set so pipelines translate
/// one-to-one).
pub use lifestream_core::ops::aggregate::AggKind;

/// Errors surfaced by a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrillError {
    /// Join state exceeded the configured memory cap — the engine's
    /// analogue of the paper's observed OOM crash at 200 M events.
    OutOfMemory {
        /// Bytes buffered in join state when the cap was hit.
        buffered_bytes: usize,
        /// The configured cap.
        cap_bytes: usize,
    },
    /// Graph construction error (bad handle, arity overflow, ...).
    Construction(String),
}

impl std::fmt::Display for TrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrillError::OutOfMemory {
                buffered_bytes,
                cap_bytes,
            } => write!(
                f,
                "join state out of memory: {buffered_bytes} bytes buffered, cap {cap_bytes}"
            ),
            TrillError::Construction(m) => write!(f, "pipeline construction failed: {m}"),
        }
    }
}

impl std::error::Error for TrillError {}

/// Run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrillStats {
    /// Events ingested from all sources.
    pub input_events: u64,
    /// Events emitted at the sink.
    pub output_events: u64,
    /// Batches allocated during the run (every operator output is a fresh
    /// allocation — the overhead static memory allocation removes).
    pub batches_allocated: u64,
    /// Peak bytes buffered across all joins.
    pub peak_join_bytes: usize,
}

/// A retrospective event source feeding the scheduler batch by batch.
#[derive(Debug)]
pub struct EventSource {
    data: SignalData,
    /// Next presence-range index and intra-range position.
    range_idx: usize,
    pos_in_range: Tick,
    exhausted: bool,
}

impl EventSource {
    /// Wraps a dataset.
    pub fn new(data: SignalData) -> Self {
        Self {
            data,
            range_idx: 0,
            pos_in_range: 0,
            exhausted: false,
        }
    }

    /// The stream's shape.
    pub fn shape(&self) -> StreamShape {
        self.data.shape()
    }

    /// True when all events have been emitted.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Produces the next batch of up to `n` present events.
    pub fn next_batch(&mut self, n: usize) -> StreamBatch {
        let shape = self.data.shape();
        let p = shape.period();
        let mut out = StreamBatch::with_capacity(1, n);
        while out.len() < n {
            let ranges = self.data.presence().ranges();
            if self.range_idx >= ranges.len() {
                self.exhausted = true;
                break;
            }
            let (rs, re) = ranges[self.range_idx];
            let base = self.data.base_time();
            let start = shape.align_up(rs.max(base)) + self.pos_in_range;
            let end = re.min(self.data.end_time());
            if start >= end {
                self.range_idx += 1;
                self.pos_in_range = 0;
                continue;
            }
            let mut t = start;
            while t < end && out.len() < n {
                let slot = ((t - base) / p) as usize;
                out.push(t, p, &[self.data.values()[slot]]);
                t += p;
            }
            self.pos_in_range = t - shape.align_up(rs.max(base));
            if t >= end {
                self.range_idx += 1;
                self.pos_in_range = 0;
            }
        }
        out
    }
}

/// A user window function for `WindowOp`: receives the window's event
/// times and values, emits transformed events via `push(t, v)`.
pub type WindowFn = Box<dyn FnMut(&[Tick], &[f32], &mut dyn FnMut(Tick, f32)) + Send>;

/// Payload projection kernel.
type SelectFn = Box<dyn FnMut(&[f32], &mut [f32]) + Send>;
/// Filter predicate kernel.
type WherePred = Box<dyn FnMut(&[f32]) -> bool + Send>;
/// Time-aware projection kernel.
type SelectTimeFn = Box<dyn FnMut(Tick, &[f32], &mut [f32]) + Send>;

// `WindowOp` deliberately echoes Trill's operator vocabulary.
#[allow(clippy::enum_variant_names)]
enum Op {
    Source {
        index: usize,
    },
    Select {
        f: SelectFn,
        in_arity: usize,
        out_arity: usize,
    },
    Where {
        pred: WherePred,
        arity: usize,
    },
    /// Tumbling/sliding aggregate over event-time windows.
    Aggregate {
        kind: AggKind,
        window: Tick,
        stride: Tick,
        /// Buffered events awaiting window completion.
        pending: Vec<(Tick, f32)>,
        next_window: Option<Tick>,
    },
    Join {
        state: HashJoin,
    },
    ClipJoin {
        last_right: Option<Vec<f32>>,
        pending_left: Vec<(Tick, Tick, Vec<f32>)>,
        left_arity: usize,
        right_arity: usize,
    },
    Chop {
        boundary: Tick,
        arity: usize,
    },
    /// Time-aware projection (Trill's `Select((vsync, payload) => ...)`).
    SelectTime {
        f: SelectTimeFn,
        in_arity: usize,
        out_arity: usize,
    },
    /// Sync-time shift by a constant.
    Shift {
        delta: Tick,
    },
    /// Windowed user operation (normalize / fill / FIR / resample run as
    /// "user-defined operators" in Trill terms).
    WindowOp {
        window: Tick,
        f: WindowFn,
        pending: Vec<(Tick, f32)>,
        next_window: Option<Tick>,
    },
    Sink,
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Op::Source { .. } => "Source",
            Op::Select { .. } => "Select",
            Op::SelectTime { .. } => "SelectTime",
            Op::Shift { .. } => "Shift",
            Op::Where { .. } => "Where",
            Op::Aggregate { .. } => "Aggregate",
            Op::Join { .. } => "Join",
            Op::ClipJoin { .. } => "ClipJoin",
            Op::Chop { .. } => "Chop",
            Op::WindowOp { .. } => "WindowOp",
            Op::Sink => "Sink",
        };
        f.write_str(name)
    }
}

struct Node {
    op: Op,
    inputs: Vec<usize>,
    arity: usize,
    period: Tick,
}

/// Handle to a node in a [`TrillPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrillHandle(usize);

/// An eager, batch-at-a-time pipeline.
pub struct TrillPipeline {
    nodes: Vec<Node>,
    n_sources: usize,
    batch_size: usize,
    mem_cap: usize,
    sink_collect: bool,
    collected: Vec<(Tick, f32)>,
}

impl Default for TrillPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl TrillPipeline {
    /// Creates an empty pipeline with default batch size and a 2 GiB join
    /// memory cap.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            n_sources: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            mem_cap: 2 << 30,
            sink_collect: false,
            collected: Vec::new(),
        }
    }

    /// Overrides the batch size (Table 5 sweeps it).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Overrides the join-state memory cap.
    pub fn with_memory_cap(mut self, bytes: usize) -> Self {
        self.mem_cap = bytes;
        self
    }

    /// Collects sink events (first payload field) for verification runs.
    pub fn with_collection(mut self) -> Self {
        self.sink_collect = true;
        self
    }

    fn push_node(&mut self, op: Op, inputs: Vec<usize>, arity: usize, period: Tick) -> TrillHandle {
        self.nodes.push(Node {
            op,
            inputs,
            arity,
            period,
        });
        TrillHandle(self.nodes.len() - 1)
    }

    /// Declares a source.
    pub fn source(&mut self, shape: StreamShape) -> TrillHandle {
        let index = self.n_sources;
        self.n_sources += 1;
        self.push_node(Op::Source { index }, vec![], 1, shape.period())
    }

    /// Payload projection.
    pub fn select<F>(&mut self, input: TrillHandle, out_arity: usize, f: F) -> TrillHandle
    where
        F: FnMut(&[f32], &mut [f32]) + Send + 'static,
    {
        let (ia, p) = (self.nodes[input.0].arity, self.nodes[input.0].period);
        self.push_node(
            Op::Select {
                f: Box::new(f),
                in_arity: ia,
                out_arity,
            },
            vec![input.0],
            out_arity,
            p,
        )
    }

    /// Time-aware payload projection.
    pub fn select_with_time<F>(&mut self, input: TrillHandle, out_arity: usize, f: F) -> TrillHandle
    where
        F: FnMut(Tick, &[f32], &mut [f32]) + Send + 'static,
    {
        let (ia, p) = (self.nodes[input.0].arity, self.nodes[input.0].period);
        self.push_node(
            Op::SelectTime {
                f: Box::new(f),
                in_arity: ia,
                out_arity,
            },
            vec![input.0],
            out_arity,
            p,
        )
    }

    /// Shifts every sync time forward by `delta`.
    pub fn shift(&mut self, input: TrillHandle, delta: Tick) -> TrillHandle {
        let (a, p) = (self.nodes[input.0].arity, self.nodes[input.0].period);
        self.push_node(Op::Shift { delta }, vec![input.0], a, p)
    }

    /// Predicate filter.
    pub fn where_<F>(&mut self, input: TrillHandle, pred: F) -> TrillHandle
    where
        F: FnMut(&[f32]) -> bool + Send + 'static,
    {
        let (a, p) = (self.nodes[input.0].arity, self.nodes[input.0].period);
        self.push_node(
            Op::Where {
                pred: Box::new(pred),
                arity: a,
            },
            vec![input.0],
            a,
            p,
        )
    }

    /// Windowed aggregate (tumbling when `window == stride`).
    pub fn aggregate(
        &mut self,
        input: TrillHandle,
        kind: AggKind,
        window: Tick,
        stride: Tick,
    ) -> TrillHandle {
        self.push_node(
            Op::Aggregate {
                kind,
                window,
                stride,
                pending: Vec::new(),
                next_window: None,
            },
            vec![input.0],
            1,
            stride,
        )
    }

    /// Temporal inner equijoin.
    pub fn join(&mut self, left: TrillHandle, right: TrillHandle) -> TrillHandle {
        let (la, lp) = (self.nodes[left.0].arity, self.nodes[left.0].period);
        let (ra, rp) = (self.nodes[right.0].arity, self.nodes[right.0].period);
        let grid = lifestream_core::time::gcd(lp, rp).max(1);
        self.push_node(
            Op::Join {
                state: HashJoin::new(lp, rp, la, ra),
            },
            vec![left.0, right.0],
            la + ra,
            grid,
        )
    }

    /// As-of join (pairs each left event with the most recent right one).
    pub fn clip_join(&mut self, left: TrillHandle, right: TrillHandle) -> TrillHandle {
        let (la, lp) = (self.nodes[left.0].arity, self.nodes[left.0].period);
        let ra = self.nodes[right.0].arity;
        self.push_node(
            Op::ClipJoin {
                last_right: None,
                pending_left: Vec::new(),
                left_arity: la,
                right_arity: ra,
            },
            vec![left.0, right.0],
            la + ra,
            lp,
        )
    }

    /// Splits event intervals on boundary multiples.
    pub fn chop(&mut self, input: TrillHandle, boundary: Tick) -> TrillHandle {
        let (a, p) = (self.nodes[input.0].arity, self.nodes[input.0].period);
        let g = lifestream_core::time::gcd(p, boundary).max(1);
        self.push_node(Op::Chop { boundary, arity: a }, vec![input.0], a, g)
    }

    /// Windowed user-defined operation (single-field streams).
    pub fn window_op<F>(&mut self, input: TrillHandle, window: Tick, f: F) -> TrillHandle
    where
        F: FnMut(&[Tick], &[f32], &mut dyn FnMut(Tick, f32)) + Send + 'static,
    {
        let p = self.nodes[input.0].period;
        self.push_node(
            Op::WindowOp {
                window,
                f: Box::new(f),
                pending: Vec::new(),
                next_window: None,
            },
            vec![input.0],
            1,
            p,
        )
    }

    /// Period of a node's output stream.
    pub fn period_of(&self, h: TrillHandle) -> Tick {
        self.nodes[h.0].period
    }

    /// Marks the query output.
    pub fn sink(&mut self, input: TrillHandle) {
        let (a, p) = (self.nodes[input.0].arity, self.nodes[input.0].period);
        self.push_node(Op::Sink, vec![input.0], a, p);
    }

    /// Collected sink events (when collection was enabled).
    pub fn collected(&self) -> &[(Tick, f32)] {
        &self.collected
    }

    /// Runs the pipeline over the sources (declaration order), round-robin
    /// one batch per source per turn — modelling Trill's independent
    /// per-stream ingress.
    ///
    /// # Errors
    /// Returns [`TrillError::OutOfMemory`] when join state exceeds the cap.
    pub fn run(&mut self, sources: Vec<SignalData>) -> Result<TrillStats, TrillError> {
        if sources.len() != self.n_sources {
            return Err(TrillError::Construction(format!(
                "expected {} sources, got {}",
                self.n_sources,
                sources.len()
            )));
        }
        let mut stats = TrillStats::default();
        let mut feeds: Vec<EventSource> = sources.into_iter().map(EventSource::new).collect();
        // Map source index -> node id.
        let mut src_nodes = vec![0usize; self.n_sources];
        for (id, n) in self.nodes.iter().enumerate() {
            if let Op::Source { index } = n.op {
                src_nodes[index] = id;
            }
        }
        let consumers = self.consumers();
        loop {
            let mut all_done = true;
            for s in 0..feeds.len() {
                if feeds[s].exhausted() {
                    continue;
                }
                let batch = feeds[s].next_batch(self.batch_size);
                if batch.is_empty() {
                    continue;
                }
                all_done = false;
                stats.input_events += batch.len() as u64;
                stats.batches_allocated += 1;
                self.push_batch(src_nodes[s], batch, &consumers, &mut stats)?;
            }
            if all_done {
                break;
            }
        }
        // Flush stateful operators.
        self.flush_all(&consumers, &mut stats)?;
        Ok(stats)
    }

    fn consumers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            for &i in &n.inputs {
                out[i].push(id);
            }
        }
        out
    }

    /// Pushes `batch` (output of node `from`) into all consumers,
    /// recursively.
    fn push_batch(
        &mut self,
        from: usize,
        batch: StreamBatch,
        consumers: &[Vec<usize>],
        stats: &mut TrillStats,
    ) -> Result<(), TrillError> {
        for &c in &consumers[from] {
            let port = self.nodes[c]
                .inputs
                .iter()
                .position(|&i| i == from)
                .unwrap();
            let out = self.apply(c, port, &batch, stats)?;
            if let Some(out) = out {
                if !out.is_empty() {
                    stats.batches_allocated += 1;
                    self.push_batch(c, out, consumers, stats)?;
                } else {
                    drop(out);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn apply(
        &mut self,
        id: usize,
        port: usize,
        batch: &StreamBatch,
        stats: &mut TrillStats,
    ) -> Result<Option<StreamBatch>, TrillError> {
        let mem_cap = self.mem_cap;
        let node = &mut self.nodes[id];
        let out = match &mut node.op {
            Op::Source { .. } => None,
            Op::Select {
                f,
                in_arity,
                out_arity,
            } => {
                let mut out = StreamBatch::with_capacity(*out_arity, batch.len());
                let mut ibuf = vec![0.0f32; *in_arity];
                let mut obuf = vec![0.0f32; *out_arity];
                for i in 0..batch.len() {
                    batch.read_payload(i, &mut ibuf);
                    f(&ibuf, &mut obuf);
                    out.push(batch.sync[i], batch.duration[i], &obuf);
                }
                Some(out)
            }
            Op::SelectTime {
                f,
                in_arity,
                out_arity,
            } => {
                let mut out = StreamBatch::with_capacity(*out_arity, batch.len());
                let mut ibuf = vec![0.0f32; *in_arity];
                let mut obuf = vec![0.0f32; *out_arity];
                for i in 0..batch.len() {
                    batch.read_payload(i, &mut ibuf);
                    f(batch.sync[i], &ibuf, &mut obuf);
                    out.push(batch.sync[i], batch.duration[i], &obuf);
                }
                Some(out)
            }
            Op::Shift { delta } => {
                let arity = batch.arity();
                let mut out = StreamBatch::with_capacity(arity, batch.len());
                let mut buf = vec![0.0f32; arity];
                for i in 0..batch.len() {
                    batch.read_payload(i, &mut buf);
                    out.push(batch.sync[i] + *delta, batch.duration[i], &buf);
                }
                Some(out)
            }
            Op::Where { pred, arity } => {
                let mut out = StreamBatch::with_capacity(*arity, batch.len());
                let mut buf = vec![0.0f32; *arity];
                for i in 0..batch.len() {
                    batch.read_payload(i, &mut buf);
                    if pred(&buf) {
                        out.push(batch.sync[i], batch.duration[i], &buf);
                    }
                }
                Some(out)
            }
            Op::Aggregate {
                kind,
                window,
                stride,
                pending,
                next_window,
            } => {
                let mut out = StreamBatch::with_capacity(1, batch.len() / 16 + 1);
                for i in 0..batch.len() {
                    let t = batch.sync[i];
                    let v = batch.fields[0][i];
                    let wstart = next_window.get_or_insert(t.div_euclid(*stride) * *stride);
                    // Emit all windows that are complete before t.
                    while t >= *wstart + *window {
                        emit_agg(pending, *kind, *wstart, *window, *stride, &mut out);
                        *wstart += *stride;
                        if pending.is_empty() && t >= *wstart + *window {
                            // Jump across gaps instead of stepping stride
                            // by stride through empty windows.
                            *wstart = (t - *window).div_euclid(*stride) * *stride + *stride;
                        }
                    }
                    pending.push((t, v));
                }
                Some(out)
            }
            Op::Join { state } => {
                let out = state.on_batch(port == 0, batch);
                stats.peak_join_bytes = stats.peak_join_bytes.max(state.buffered_bytes());
                if state.buffered_bytes() > mem_cap {
                    return Err(TrillError::OutOfMemory {
                        buffered_bytes: state.buffered_bytes(),
                        cap_bytes: mem_cap,
                    });
                }
                Some(out)
            }
            Op::ClipJoin {
                last_right,
                pending_left,
                left_arity,
                right_arity,
            } => {
                let mut out = StreamBatch::with_capacity(*left_arity + *right_arity, batch.len());
                if port == 1 {
                    // Right side: remember the latest payload.
                    if !batch.is_empty() {
                        let mut buf = vec![0.0f32; *right_arity];
                        batch.read_payload(batch.len() - 1, &mut buf);
                        *last_right = Some(buf);
                    }
                    // Drain lefts now pair-able.
                    if let Some(r) = last_right {
                        let mut obuf = vec![0.0f32; *left_arity + *right_arity];
                        for (t, d, lp) in pending_left.drain(..) {
                            obuf[..*left_arity].copy_from_slice(&lp);
                            obuf[*left_arity..].copy_from_slice(r);
                            out.push(t, d, &obuf);
                        }
                    }
                } else {
                    let mut lbuf = vec![0.0f32; *left_arity];
                    let mut obuf = vec![0.0f32; *left_arity + *right_arity];
                    for i in 0..batch.len() {
                        batch.read_payload(i, &mut lbuf);
                        match last_right {
                            Some(r) => {
                                obuf[..*left_arity].copy_from_slice(&lbuf);
                                obuf[*left_arity..].copy_from_slice(r);
                                out.push(batch.sync[i], batch.duration[i], &obuf);
                            }
                            None => {
                                pending_left.push((batch.sync[i], batch.duration[i], lbuf.clone()))
                            }
                        }
                    }
                }
                Some(out)
            }
            Op::Chop { boundary, arity } => {
                let b = *boundary;
                let mut out = StreamBatch::with_capacity(*arity, batch.len());
                let mut buf = vec![0.0f32; *arity];
                for i in 0..batch.len() {
                    batch.read_payload(i, &mut buf);
                    let mut start = batch.sync[i];
                    let end = start + batch.duration[i];
                    while start < end {
                        let seg_end = ((start.div_euclid(b) + 1) * b).min(end);
                        out.push(start, seg_end - start, &buf);
                        start = seg_end;
                    }
                }
                Some(out)
            }
            Op::WindowOp {
                window,
                f,
                pending,
                next_window,
            } => {
                let mut out = StreamBatch::with_capacity(1, batch.len());
                for i in 0..batch.len() {
                    let t = batch.sync[i];
                    let v = batch.fields[0][i];
                    let wstart = next_window.get_or_insert(t.div_euclid(*window) * *window);
                    while t >= *wstart + *window {
                        if !pending.is_empty() {
                            flush_window_op(pending, f, &mut out);
                        }
                        *wstart = if pending.is_empty() && t >= *wstart + 2 * *window {
                            t.div_euclid(*window) * *window
                        } else {
                            *wstart + *window
                        };
                    }
                    pending.push((t, v));
                }
                Some(out)
            }
            Op::Sink => {
                stats.output_events += batch.len() as u64;
                if self.sink_collect {
                    for i in 0..batch.len() {
                        self.collected.push((batch.sync[i], batch.fields[0][i]));
                    }
                }
                None
            }
        };
        Ok(out)
    }

    fn flush_all(
        &mut self,
        consumers: &[Vec<usize>],
        stats: &mut TrillStats,
    ) -> Result<(), TrillError> {
        // Repeatedly flush until no operator emits (chains of stateful ops).
        loop {
            let mut emitted = false;
            for id in 0..self.nodes.len() {
                let out = match &mut self.nodes[id].op {
                    Op::Aggregate {
                        kind,
                        window,
                        stride,
                        pending,
                        next_window,
                    } => {
                        let mut out = StreamBatch::with_capacity(1, 4);
                        if let Some(mut w) = next_window.take() {
                            while !pending.is_empty() {
                                emit_agg(pending, *kind, w, *window, *stride, &mut out);
                                w += *stride;
                            }
                        }
                        out
                    }
                    Op::WindowOp { f, pending, .. } => {
                        let mut out = StreamBatch::with_capacity(1, 4);
                        if !pending.is_empty() {
                            flush_window_op(pending, f, &mut out);
                        }
                        out
                    }
                    Op::Join { state } => state.flush(),
                    _ => StreamBatch::with_capacity(1, 0),
                };
                if !out.is_empty() {
                    emitted = true;
                    stats.batches_allocated += 1;
                    self.push_batch(id, out, consumers, stats)?;
                }
            }
            if !emitted {
                break;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for TrillPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrillPipeline")
            .field("nodes", &self.nodes.len())
            .field("batch_size", &self.batch_size)
            .finish()
    }
}

fn emit_agg(
    pending: &mut Vec<(Tick, f32)>,
    kind: AggKind,
    wstart: Tick,
    window: Tick,
    stride: Tick,
    out: &mut StreamBatch,
) {
    let wend = wstart + window;
    // Materialize the window snapshot before folding, as Trill's windowed
    // aggregation pipeline does (per-window state objects).
    let snapshot: Vec<f32> = pending
        .iter()
        .filter(|&&(t, _)| t >= wstart && t < wend)
        .map(|&(_, v)| v)
        .collect();
    if let Some(v) = kind.fold(snapshot.into_iter()) {
        out.push(wstart, stride, &[v]);
    }
    // Drop events no longer needed by any future window (stride advance).
    pending.retain(|&(t, _)| t >= wstart + stride);
}

fn flush_window_op(pending: &mut Vec<(Tick, f32)>, f: &mut WindowFn, out: &mut StreamBatch) {
    // Copy out times/values (fresh allocations, as a user-defined operator
    // in an eager engine would).
    let times: Vec<Tick> = pending.iter().map(|&(t, _)| t).collect();
    let vals: Vec<f32> = pending.iter().map(|&(_, v)| v).collect();
    let mut push = |t: Tick, v: f32| out.push(t, 1, &[v]);
    f(&times, &vals, &mut push);
    pending.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(shape: StreamShape, n: usize) -> SignalData {
        SignalData::dense(shape, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn source_batches_respect_gaps() {
        let mut d = ramp(StreamShape::new(0, 2), 100);
        d.punch_gap(20, 40); // drops slots 10..20
        let mut src = EventSource::new(d);
        let b = src.next_batch(1000);
        assert_eq!(b.len(), 90);
        assert_eq!(b.sync[9], 18);
        assert_eq!(b.sync[10], 40);
        assert!(src.next_batch(10).is_empty());
        assert!(src.exhausted());
    }

    #[test]
    fn source_batches_split_at_size() {
        let d = ramp(StreamShape::new(0, 1), 100);
        let mut src = EventSource::new(d);
        assert_eq!(src.next_batch(30).len(), 30);
        let b2 = src.next_batch(30);
        assert_eq!(b2.sync[0], 30);
        assert_eq!(src.next_batch(100).len(), 40);
    }

    #[test]
    fn select_where_pipeline() {
        let mut p = TrillPipeline::new().with_collection();
        let s = p.source(StreamShape::new(0, 1));
        let sel = p.select(s, 1, |i, o| o[0] = i[0] * 2.0);
        let w = p.where_(sel, |v| v[0] >= 10.0);
        p.sink(w);
        let stats = p.run(vec![ramp(StreamShape::new(0, 1), 10)]).unwrap();
        assert_eq!(stats.input_events, 10);
        assert_eq!(stats.output_events, 5);
        assert_eq!(p.collected()[0], (5, 10.0));
    }

    #[test]
    fn tumbling_aggregate_matches_core_semantics() {
        let mut p = TrillPipeline::new().with_collection();
        let s = p.source(StreamShape::new(0, 2));
        let a = p.aggregate(s, AggKind::Mean, 10, 10);
        p.sink(a);
        p.run(vec![ramp(StreamShape::new(0, 2), 10)]).unwrap();
        assert_eq!(p.collected(), &[(0, 2.0), (10, 7.0)]);
    }

    #[test]
    fn join_of_two_rates() {
        let mut p = TrillPipeline::new().with_collection();
        let a = p.source(StreamShape::new(0, 1));
        let b = p.source(StreamShape::new(0, 2));
        let j = p.join(a, b);
        p.sink(j);
        let stats = p
            .run(vec![
                ramp(StreamShape::new(0, 1), 10),
                ramp(StreamShape::new(0, 2), 5),
            ])
            .unwrap();
        assert_eq!(stats.output_events, 10);
    }

    #[test]
    fn join_oom_on_divergent_streams() {
        // Left stream is far ahead in time of the right one; tiny cap.
        let mut p = TrillPipeline::new().with_memory_cap(64 * 1024);
        let a = p.source(StreamShape::new(0, 1));
        let b = p.source(StreamShape::new(0, 1));
        let j = p.join(a, b);
        p.sink(j);
        let mut left = ramp(StreamShape::new(0, 1), 100_000);
        left.punch_gap(0, 0); // no-op; left dense
        let mut right = ramp(StreamShape::new(0, 1), 100_000);
        right.punch_gap(0, 90_000); // right only has the tail
        let err = p.run(vec![left, right]).unwrap_err();
        assert!(matches!(err, TrillError::OutOfMemory { .. }));
    }

    #[test]
    fn window_op_normalizes() {
        let mut p = TrillPipeline::new().with_collection();
        let s = p.source(StreamShape::new(0, 1));
        let n = p.window_op(s, 4, |_ts, vs, push| {
            let mean = vs.iter().sum::<f32>() / vs.len() as f32;
            for (i, &v) in vs.iter().enumerate() {
                push(_ts[i], v - mean);
            }
        });
        p.sink(n);
        p.run(vec![ramp(StreamShape::new(0, 1), 8)]).unwrap();
        let sum: f32 = p.collected().iter().map(|&(_, v)| v).sum();
        assert!(sum.abs() < 1e-5);
        assert_eq!(p.collected().len(), 8);
    }

    #[test]
    fn chop_splits_durations() {
        let mut p = TrillPipeline::new().with_collection();
        let s = p.source(StreamShape::new(0, 4));
        let c = p.chop(s, 2);
        p.sink(c);
        p.run(vec![ramp(StreamShape::new(0, 4), 3)]).unwrap();
        // Each 4-tick event splits into two 2-tick segments.
        assert_eq!(p.collected().len(), 6);
    }

    #[test]
    fn clip_join_pairs_as_of() {
        let mut p = TrillPipeline::new().with_collection();
        let l = p.source(StreamShape::new(0, 1));
        let r = p.source(StreamShape::new(0, 4));
        let j = p.clip_join(l, r);
        p.sink(j);
        let stats = p
            .run(vec![
                ramp(StreamShape::new(0, 1), 8),
                ramp(StreamShape::new(0, 4), 2),
            ])
            .unwrap();
        assert_eq!(stats.output_events, 8);
    }

    #[test]
    fn batches_are_allocated_per_operator() {
        let mut p = TrillPipeline::new();
        let s = p.source(StreamShape::new(0, 1));
        let a = p.select(s, 1, |i, o| o[0] = i[0]);
        let b = p.select(a, 1, |i, o| o[0] = i[0]);
        p.sink(b);
        let stats = p.run(vec![ramp(StreamShape::new(0, 1), 100)]).unwrap();
        // 1 source batch + 2 operator outputs, at minimum.
        assert!(stats.batches_allocated >= 3);
    }
}
