//! Hash-based temporal symmetric join with divergence buffering — the
//! Trill join design whose memory behaviour the paper analyzes in §8.3.
//!
//! Each side buffers incoming events. Output for a grid instant can only
//! be emitted once *both* sides' watermarks have passed it, so when the
//! two inputs progress at different paces the leading side's buffer grows
//! without bound. Probing is by hash on covered grid instants — the
//! "complex data structures such as hashmaps" LifeStream's FWindow design
//! eliminates.

use std::collections::{HashMap, VecDeque};

use lifestream_core::time::{gcd, Tick};

use crate::batch::StreamBatch;

/// A buffered event.
#[derive(Debug, Clone)]
struct Buffered {
    sync: Tick,
    end: Tick,
    payload: Vec<f32>,
}

/// Per-side state.
#[derive(Debug, Default)]
struct Side {
    buf: VecDeque<Buffered>,
    watermark: Tick,
    bytes: usize,
}

impl Side {
    fn push(&mut self, sync: Tick, end: Tick, payload: Vec<f32>) {
        self.bytes += 16 + 24 + payload.capacity() * 4;
        self.buf.push_back(Buffered { sync, end, payload });
    }

    fn evict_until(&mut self, t: Tick) {
        while let Some(front) = self.buf.front() {
            if front.end <= t {
                self.bytes -= 16 + 24 + front.payload.capacity() * 4;
                self.buf.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The symmetric hash join operator.
#[derive(Debug)]
pub struct HashJoin {
    left: Side,
    right: Side,
    grid: Tick,
    /// Instant up to which output has already been emitted.
    emitted_to: Tick,
    left_arity: usize,
    right_arity: usize,
}

impl HashJoin {
    /// Creates a join over inputs with the given periods and payload
    /// arities; output events sit on the joint grid.
    pub fn new(
        left_period: Tick,
        right_period: Tick,
        left_arity: usize,
        right_arity: usize,
    ) -> Self {
        Self {
            left: Side::default(),
            right: Side::default(),
            grid: gcd(left_period, right_period).max(1),
            emitted_to: Tick::MIN,
            left_arity,
            right_arity,
        }
    }

    /// Total bytes buffered across both sides — the quantity that blows up
    /// under divergence.
    pub fn buffered_bytes(&self) -> usize {
        self.left.bytes + self.right.bytes
    }

    /// Total buffered events.
    pub fn buffered_events(&self) -> usize {
        self.left.buf.len() + self.right.buf.len()
    }

    /// Ingests a batch on one side and emits all now-safe join output.
    pub fn on_batch(&mut self, from_left: bool, batch: &StreamBatch) -> StreamBatch {
        let (side, arity) = if from_left {
            (&mut self.left, self.left_arity)
        } else {
            (&mut self.right, self.right_arity)
        };
        let mut payload = vec![0.0f32; arity];
        for i in 0..batch.len() {
            batch.read_payload(i, &mut payload);
            side.push(
                batch.sync[i],
                batch.sync[i] + batch.duration[i],
                payload.clone(),
            );
        }
        if let Some(w) = batch.watermark() {
            side.watermark = side.watermark.max(w + 1);
        }
        self.emit_safe()
    }

    /// Flushes remaining matches at end of stream.
    pub fn flush(&mut self) -> StreamBatch {
        self.left.watermark = Tick::MAX;
        self.right.watermark = Tick::MAX;
        self.emit_safe()
    }

    /// Emits output for grid instants in `[emitted_to, min(watermarks))`
    /// using a hash of the right side keyed by covered grid instants.
    fn emit_safe(&mut self) -> StreamBatch {
        let safe = self.left.watermark.min(self.right.watermark);
        let mut out = StreamBatch::with_capacity(self.left_arity + self.right_arity, 0);
        if safe <= self.emitted_to {
            return out;
        }
        let from = if self.emitted_to == Tick::MIN {
            let first = self
                .left
                .buf
                .front()
                .map(|b| b.sync)
                .unwrap_or(safe)
                .min(self.right.buf.front().map(|b| b.sync).unwrap_or(safe));
            align_down(first, self.grid)
        } else {
            self.emitted_to
        };
        if from >= safe {
            self.emitted_to = safe.max(self.emitted_to);
            return out;
        }
        // Probe structure over the right side: buffered events are sorted
        // by sync time (periodic streams arrive in order), so the covering
        // event for an instant is found by binary search; short events are
        // additionally point-hashed. Both structures are rebuilt per call —
        // the per-batch allocation churn of an eager engine.
        let rbuf = self.right.buf.make_contiguous();
        let mut point_hash: HashMap<Tick, usize> = HashMap::new();
        for (idx, ev) in rbuf.iter().enumerate() {
            if ev.end - ev.sync == self.grid && ev.sync >= from && ev.sync < safe {
                point_hash.insert(ev.sync, idx);
            }
        }
        let probe = |t: Tick| -> Option<usize> {
            if let Some(&i) = point_hash.get(&t) {
                return Some(i);
            }
            let i = rbuf.partition_point(|e| e.sync <= t);
            if i == 0 {
                return None;
            }
            (rbuf[i - 1].end > t).then_some(i - 1)
        };
        let mut obuf = vec![0.0f32; self.left_arity + self.right_arity];
        for ev in self.left.buf.iter() {
            if ev.end <= from || ev.sync >= safe {
                continue;
            }
            let mut t = align_up(ev.sync.max(from), self.grid);
            while t < ev.end.min(safe) {
                if let Some(ridx) = probe(t) {
                    let r = &rbuf[ridx];
                    obuf[..self.left_arity].copy_from_slice(&ev.payload);
                    obuf[self.left_arity..].copy_from_slice(&r.payload);
                    out.push(t, self.grid, &obuf);
                }
                t += self.grid;
            }
        }
        // Output must be time-ordered; the scan above is per-left-event.
        sort_batch(&mut out);
        self.emitted_to = safe;
        // Evict events fully below the joint watermark.
        self.left.evict_until(safe);
        self.right.evict_until(safe);
        out
    }
}

fn align_down(t: Tick, g: Tick) -> Tick {
    t.div_euclid(g) * g
}

fn align_up(t: Tick, g: Tick) -> Tick {
    let d = align_down(t, g);
    if d == t {
        t
    } else {
        d + g
    }
}

fn sort_batch(b: &mut StreamBatch) {
    let mut idx: Vec<usize> = (0..b.len()).collect();
    idx.sort_by_key(|&i| b.sync[i]);
    let apply = |v: &Vec<Tick>| idx.iter().map(|&i| v[i]).collect::<Vec<_>>();
    b.sync = apply(&b.sync);
    b.duration = apply(&b.duration);
    b.fields = b
        .fields
        .iter()
        .map(|col| idx.iter().map(|&i| col[i]).collect())
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(arity: usize, events: &[(Tick, Tick, f32)]) -> StreamBatch {
        let mut b = StreamBatch::with_capacity(arity, events.len());
        for &(t, d, v) in events {
            b.push(t, d, &[v]);
        }
        b
    }

    #[test]
    fn joins_aligned_streams() {
        let mut j = HashJoin::new(1, 1, 1, 1);
        let out1 = j.on_batch(true, &batch(1, &[(0, 1, 10.0), (1, 1, 11.0)]));
        assert!(out1.is_empty()); // right watermark still behind
        let out2 = j.on_batch(false, &batch(1, &[(0, 1, 20.0), (1, 1, 21.0)]));
        assert_eq!(out2.len(), 2);
        assert_eq!(out2.sync, vec![0, 1]);
        assert_eq!(out2.fields[0], vec![10.0, 11.0]);
        assert_eq!(out2.fields[1], vec![20.0, 21.0]);
    }

    #[test]
    fn joins_different_rates_on_gcd_grid() {
        // Left period 1, right period 2 with duration 2: L_k matches
        // R_{k/2} (Fig. 5(c) semantics).
        let mut j = HashJoin::new(1, 2, 1, 1);
        let mut all: Vec<(Tick, f32)> = Vec::new();
        let absorb = |b: StreamBatch, all: &mut Vec<(Tick, f32)>| {
            for i in 0..b.len() {
                all.push((b.sync[i], b.fields[1][i]));
            }
        };
        let o1 = j.on_batch(
            true,
            &batch(1, &[(0, 1, 0.0), (1, 1, 1.0), (2, 1, 2.0), (3, 1, 3.0)]),
        );
        absorb(o1, &mut all);
        let o2 = j.on_batch(false, &batch(1, &[(0, 2, 100.0), (2, 2, 101.0)]));
        absorb(o2, &mut all);
        absorb(j.flush(), &mut all);
        assert_eq!(all, vec![(0, 100.0), (1, 100.0), (2, 101.0), (3, 101.0)]);
    }

    #[test]
    fn divergence_accumulates_memory() {
        let mut j = HashJoin::new(1, 1, 1, 1);
        // Left side races ahead; right side never arrives.
        for k in 0..100 {
            let evs: Vec<(Tick, Tick, f32)> = (0..100).map(|i| (k * 100 + i, 1, 0.0)).collect();
            j.on_batch(true, &batch(1, &evs));
        }
        assert_eq!(j.buffered_events(), 10_000);
        assert!(j.buffered_bytes() > 10_000 * 40);
        // Once the right side catches up, the buffer drains.
        let evs: Vec<(Tick, Tick, f32)> = (0..10_000).map(|t| (t as Tick, 1, 1.0)).collect();
        let out = j.on_batch(false, &batch(1, &evs));
        assert_eq!(out.len(), 10_000);
        assert!(j.buffered_events() < 10);
    }

    #[test]
    fn output_emitted_as_watermarks_advance() {
        let mut j = HashJoin::new(1, 1, 1, 1);
        let o1 = j.on_batch(true, &batch(1, &[(0, 1, 1.0)]));
        assert!(o1.is_empty()); // right watermark still at 0
        let o2 = j.on_batch(false, &batch(1, &[(0, 1, 2.0)]));
        assert_eq!(o2.len(), 1);
        assert_eq!(o2.sync, vec![0]);
        assert!(j.flush().is_empty());
    }

    #[test]
    fn no_matches_when_disjoint() {
        let mut j = HashJoin::new(1, 1, 1, 1);
        j.on_batch(true, &batch(1, &[(0, 1, 1.0), (1, 1, 1.0)]));
        j.on_batch(false, &batch(1, &[(100, 1, 2.0)]));
        let out = j.flush();
        assert!(out.is_empty());
    }
}
