//! Columnar stream batches — Trill's `StreamMessage` analogue.

use lifestream_core::time::Tick;

/// Default batch size (events per batch); Trill ships with ~80 000.
pub const DEFAULT_BATCH_SIZE: usize = 80_000;

/// A columnar batch of events: parallel sync/duration/payload arrays.
/// Only *present* events are materialized (Trill compacts batches), so
/// unlike an FWindow, timestamps cannot be derived from slot indices and
/// must be read from memory.
#[derive(Debug, Clone, Default)]
pub struct StreamBatch {
    /// Event sync times, ascending.
    pub sync: Vec<Tick>,
    /// Event durations.
    pub duration: Vec<Tick>,
    /// Payload columns (`arity` of them, each `len()` long).
    pub fields: Vec<Vec<f32>>,
}

impl StreamBatch {
    /// Creates an empty batch with `arity` payload columns and reserved
    /// capacity (Trill allocates batch memory per batch — this is the
    /// dynamic allocation the paper contrasts with LifeStream's plan).
    pub fn with_capacity(arity: usize, cap: usize) -> Self {
        Self {
            sync: Vec::with_capacity(cap),
            duration: Vec::with_capacity(cap),
            fields: (0..arity).map(|_| Vec::with_capacity(cap)).collect(),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.sync.len()
    }

    /// True when the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.sync.is_empty()
    }

    /// Payload arity.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Appends an event.
    ///
    /// # Panics
    /// Panics if `payload.len() != arity`.
    #[inline]
    pub fn push(&mut self, sync: Tick, duration: Tick, payload: &[f32]) {
        assert_eq!(payload.len(), self.fields.len(), "payload arity mismatch");
        self.sync.push(sync);
        self.duration.push(duration);
        for (col, &v) in self.fields.iter_mut().zip(payload) {
            col.push(v);
        }
    }

    /// The largest sync time in the batch (its watermark contribution).
    pub fn watermark(&self) -> Option<Tick> {
        self.sync.last().copied()
    }

    /// Approximate heap bytes held by the batch.
    pub fn heap_bytes(&self) -> usize {
        self.sync.capacity() * 8
            + self.duration.capacity() * 8
            + self.fields.iter().map(|f| f.capacity() * 4).sum::<usize>()
    }

    /// Reads event `i`'s payload into `buf`.
    #[inline]
    pub fn read_payload(&self, i: usize, buf: &mut [f32]) {
        for (f, o) in buf.iter_mut().enumerate() {
            *o = self.fields[f][i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut b = StreamBatch::with_capacity(2, 4);
        b.push(0, 2, &[1.0, -1.0]);
        b.push(2, 2, &[2.0, -2.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.watermark(), Some(2));
        let mut buf = [0.0; 2];
        b.read_payload(1, &mut buf);
        assert_eq!(buf, [2.0, -2.0]);
    }

    #[test]
    fn empty_batch() {
        let b = StreamBatch::with_capacity(1, 0);
        assert!(b.is_empty());
        assert_eq!(b.watermark(), None);
    }

    #[test]
    fn heap_bytes_counts_columns() {
        let b = StreamBatch::with_capacity(2, 100);
        assert!(b.heap_bytes() >= 100 * (8 + 8 + 4 + 4));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut b = StreamBatch::with_capacity(1, 1);
        b.push(0, 1, &[1.0, 2.0]);
    }
}
