//! # trill-baseline
//!
//! A re-implementation of Microsoft Trill's published architecture
//! (Chandramouli et al., VLDB 2014) used as the primary baseline in the
//! LifeStream paper's evaluation. Trill itself is .NET and its internals
//! are not reusable here, so this crate implements the same design
//! honestly in Rust:
//!
//! * **Columnar stream batches** ([`batch::StreamBatch`]): events travel
//!   in batches of a configurable size (Trill defaults to ~80 000) with
//!   sync-time, duration, and payload columns. Unlike LifeStream's
//!   FWindows, sync times are *stored and read from memory*, and batch
//!   boundaries are unrelated to window boundaries.
//! * **Eager push dataflow**: every batch is processed by each operator as
//!   soon as it arrives and immediately passed downstream, whether or not
//!   a later join will discard the results — no targeted processing.
//! * **Per-batch dynamic allocation**: each operator allocates fresh
//!   output batches; there is no static memory plan.
//! * **Hash-based temporal join** with divergence buffering: each side
//!   buffers events until the other side's watermark passes them. When
//!   the two inputs progress at different paces (pervasive in gap-riddled
//!   physiological data), the buffers accumulate — the exact behaviour
//!   that drives Trill out of memory at 200 M events in Fig. 9(c). The
//!   engine reports [`TrillError::OutOfMemory`] when the join state
//!   exceeds a configurable cap instead of actually exhausting the host.
//!
//! The operator set mirrors what the paper's benchmarks need (Select,
//! Where, Aggregate, Chop, ClipJoin, Join, windowed user ops), and
//! [`pipelines`] provides the Table 3 operations and the Fig. 3 / Table 4
//! applications expressed against this engine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod engine;
pub mod join;
pub mod pipelines;

pub use batch::StreamBatch;
pub use engine::{EventSource, TrillError, TrillPipeline, TrillStats};
