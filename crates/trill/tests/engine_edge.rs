//! Edge-case tests for the Trill-style engine: the operators added for
//! query-composed pipelines (time-aware select, shift) and batch-boundary
//! behaviour.

use lifestream_core::source::SignalData;
use lifestream_core::time::StreamShape;
use trill_baseline::engine::AggKind;
use trill_baseline::TrillPipeline;

fn ramp(shape: StreamShape, n: usize) -> SignalData {
    SignalData::dense(shape, (0..n).map(|i| i as f32).collect())
}

#[test]
fn select_with_time_sees_sync_times() {
    let s = StreamShape::new(0, 4);
    let mut p = TrillPipeline::new().with_collection();
    let src = p.source(s);
    let st = p.select_with_time(src, 1, |t, v, o| o[0] = v[0] + t as f32);
    p.sink(st);
    p.run(vec![ramp(s, 5)]).unwrap();
    assert_eq!(
        p.collected(),
        &[(0, 0.0), (4, 5.0), (8, 10.0), (12, 15.0), (16, 20.0)]
    );
}

#[test]
fn shift_relabels_sync_times() {
    let s = StreamShape::new(0, 2);
    let mut p = TrillPipeline::new().with_collection();
    let src = p.source(s);
    let sh = p.shift(src, 10);
    p.sink(sh);
    p.run(vec![ramp(s, 3)]).unwrap();
    assert_eq!(p.collected(), &[(10, 0.0), (12, 1.0), (14, 2.0)]);
}

#[test]
fn tiny_batches_preserve_results() {
    // Batch size 3 forces many batch boundaries through an aggregate.
    let s = StreamShape::new(0, 1);
    let run = |batch: usize| {
        let mut p = TrillPipeline::new()
            .with_batch_size(batch)
            .with_collection();
        let src = p.source(s);
        let a = p.aggregate(src, AggKind::Sum, 10, 10);
        p.sink(a);
        p.run(vec![ramp(s, 100)]).unwrap();
        p.collected().to_vec()
    };
    assert_eq!(run(3), run(100_000));
}

#[test]
fn composed_resample_has_explosion_factor() {
    let s = StreamShape::new(0, 8);
    let mut p = TrillPipeline::new();
    let src = p.source(s);
    let r = trill_baseline::pipelines::resample(&mut p, src, 400, 2);
    p.sink(r);
    let stats = p.run(vec![ramp(s, 500)]).unwrap();
    // 4x output events (8 ms grid -> 2 ms grid), modulo edges.
    assert!(stats.output_events >= 1_980, "out {}", stats.output_events);
    // The join inside the composition buffered state.
    assert!(stats.peak_join_bytes > 0);
}

#[test]
fn normalize_composition_emits_every_event() {
    let s = StreamShape::new(0, 2);
    let mut p = TrillPipeline::new().with_collection();
    let src = p.source(s);
    let n = trill_baseline::pipelines::normalize(&mut p, src, 100);
    p.sink(n);
    let stats = p.run(vec![ramp(s, 500)]).unwrap();
    assert_eq!(stats.output_events, 500);
    // Standard scores: bounded for a ramp.
    for &(_, v) in p.collected() {
        assert!(v.abs() < 4.0, "z-score {v}");
    }
}

#[test]
fn join_state_grows_with_data_under_rate_divergence() {
    // The §8.3 failure mode: with equal batch sizes, a 125 Hz stream
    // advances 4x further in event time per batch than a 500 Hz stream,
    // so the fast-in-time side's events pile up in the join buffer until
    // the slow side's watermark catches up. Same-rate joins keep constant
    // state regardless of data size.
    let run = |left_period: i64, n: usize| {
        let sl = StreamShape::new(0, left_period);
        let sr = StreamShape::new(0, 8);
        let mut p = TrillPipeline::new().with_batch_size(2_000);
        let a = p.source(sl);
        let b = p.source(sr);
        let j = p.join(a, b);
        p.sink(j);
        p.run(vec![ramp(sl, n), ramp(sr, n)])
            .unwrap()
            .peak_join_bytes
    };
    // Same rate: peak state flat as data quadruples.
    let b1 = run(8, 20_000);
    let b4 = run(8, 80_000);
    assert!(b4 < b1 * 2, "balanced join state flat: {b1} -> {b4}");
    // Rate-divergent: peak state grows with data size.
    let d1 = run(2, 20_000);
    let d4 = run(2, 80_000);
    assert!(d4 > d1 * 2, "divergent join state must grow: {d1} -> {d4}");
}
