//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the distributed-baseline engine uses: bounded
//! MPSC channels (wrapping `std::sync::mpsc::sync_channel`) and a
//! two-receiver `select!` macro. The select implementation polls both
//! receivers with a short sleep between rounds and alternates which arm
//! wins ties across invocations, so two disconnected channels are both
//! observed (matching crossbeam's randomized readiness selection closely
//! enough for the operator loops here).

#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by a receive from a disconnected, drained channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcome (mirrors `std::sync::mpsc`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel drained and all senders dropped.
        Disconnected,
    }

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors when the receiver
        /// is gone.
        pub fn send(&self, v: T) -> Result<(), mpsc::SendError<T>> {
            self.0.send(v)
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// Outcome of a two-receiver [`select!`](crate::channel::select);
    /// public for the macro expansion only.
    #[doc(hidden)]
    pub enum SelectWhich<A, B> {
        /// First receiver fired.
        R1(Result<A, RecvError>),
        /// Second receiver fired.
        R2(Result<B, RecvError>),
    }

    #[doc(hidden)]
    pub fn select_two<A, B>(
        r1: &Receiver<A>,
        r2: &Receiver<B>,
        r1_first: bool,
    ) -> SelectWhich<A, B> {
        loop {
            let (d1, d2);
            if r1_first {
                match r1.try_recv() {
                    Ok(v) => return SelectWhich::R1(Ok(v)),
                    Err(e) => d1 = e == TryRecvError::Disconnected,
                }
                match r2.try_recv() {
                    Ok(v) => return SelectWhich::R2(Ok(v)),
                    Err(e) => d2 = e == TryRecvError::Disconnected,
                }
            } else {
                match r2.try_recv() {
                    Ok(v) => return SelectWhich::R2(Ok(v)),
                    Err(e) => d2 = e == TryRecvError::Disconnected,
                }
                match r1.try_recv() {
                    Ok(v) => return SelectWhich::R1(Ok(v)),
                    Err(e) => d1 = e == TryRecvError::Disconnected,
                }
            }
            // A disconnected receiver is "ready with an error", as in
            // crossbeam; alternate which one wins when both are. Sleep a
            // beat first so callers that keep selecting on a dead channel
            // spin at a bounded rate.
            if d1 || d2 {
                std::thread::sleep(std::time::Duration::from_micros(20));
                if d1 && (r1_first || !d2) {
                    return SelectWhich::R1(Err(RecvError));
                }
                return SelectWhich::R2(Err(RecvError));
            }
            std::thread::sleep(std::time::Duration::from_micros(20));
        }
    }

    /// Two-receiver blocking select (subset of `crossbeam::channel::select!`).
    #[macro_export]
    macro_rules! __crossbeam_select {
        (
            recv($r1:expr) -> $m1:ident => $a1:expr,
            recv($r2:expr) -> $m2:ident => $a2:expr $(,)?
        ) => {{
            use ::std::sync::atomic::{AtomicBool, Ordering};
            static __R1_FIRST: AtomicBool = AtomicBool::new(true);
            let __first = __R1_FIRST.fetch_xor(true, Ordering::Relaxed);
            match $crate::channel::select_two(&$r1, &$r2, __first) {
                $crate::channel::SelectWhich::R1($m1) => $a1,
                $crate::channel::SelectWhich::R2($m2) => $a2,
            }
        }};
    }

    pub use crate::__crossbeam_select as select;
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_send_recv() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn select_drains_both_sides_and_observes_both_disconnects() {
        let (tx_a, rx_a) = channel::bounded::<u64>(4);
        let (tx_b, rx_b) = channel::bounded::<u64>(4);
        let ha = std::thread::spawn(move || {
            for i in 0..50 {
                tx_a.send(i).unwrap();
            }
        });
        let hb = std::thread::spawn(move || {
            for i in 0..30 {
                tx_b.send(1000 + i).unwrap();
            }
        });
        let (mut a_open, mut b_open) = (true, true);
        let (mut a_got, mut b_got) = (0u32, 0u32);
        while a_open || b_open {
            channel::select! {
                recv(rx_a) -> msg => match msg {
                    Ok(_) => a_got += 1,
                    Err(_) => a_open = false,
                },
                recv(rx_b) -> msg => match msg {
                    Ok(_) => b_got += 1,
                    Err(_) => b_open = false,
                },
            }
        }
        ha.join().unwrap();
        hb.join().unwrap();
        assert_eq!(a_got, 50);
        assert_eq!(b_got, 30);
    }
}
