//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the minimal subset of the `rand` 0.8 API that the
//! signal-synthesis crates use: [`rngs::StdRng`], [`SeedableRng`], and
//! [`Rng`] with `gen_range` / `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, which is all the
//! dataset builders rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (s as i128 + r as i128) as $t
            }
        }
    )*};
}

int_ranges!(i64, u64, i32, u32, usize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (s, e) = (*self.start(), *self.end());
                s + (unit_f64(rng.next_u64()) as $t) * (e - s)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; the algorithm differs but every use in this workspace
    /// only needs seed-determinism, not bit-compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro reference recommends.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = r.gen_range(5i64..=8);
            assert!((5..=8).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
