//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the distributed-baseline codec uses: a growable
//! [`BytesMut`] write buffer with little-endian `put_*` methods, frozen
//! into an immutable cursor-style [`Bytes`] with matching `get_*` reads.

#![warn(missing_docs)]

/// Read-side buffer interface (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads a little-endian `i64`, advancing the cursor.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian `f32`, advancing the cursor.
    fn get_f32_le(&mut self) -> f32;
}

/// Write-side buffer interface (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
}

/// An immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length of the underlying buffer (independent of the cursor).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_i64_le(&mut self) -> i64 {
        let b: [u8; 8] = self.data[self.pos..self.pos + 8].try_into().unwrap();
        self.pos += 8;
        i64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let b: [u8; 4] = self.data[self.pos..self.pos + 4].try_into().unwrap();
        self.pos += 4;
        f32::from_le_bytes(b)
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates a buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            data: Vec::with_capacity(n),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = BytesMut::with_capacity(24);
        w.put_i64_le(-42);
        w.put_f32_le(1.5);
        w.put_i64_le(7);
        let mut r = w.freeze();
        assert_eq!(r.len(), 20);
        assert_eq!(r.remaining(), 20);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_i64_le(), 7);
        assert_eq!(r.remaining(), 0);
    }
}
