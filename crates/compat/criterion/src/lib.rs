//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//! Sample counts are intentionally small so `cargo bench` finishes
//! quickly; set `CRITERION_SAMPLES` to raise them.

#![warn(missing_docs)]

use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark timing driver.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(t.elapsed().as_nanos());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns.sort_unstable();
        self.samples_ns[self.samples_ns.len() / 2]
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples(n.min(5));
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let ns = b.median_ns();
        println!("{}/{id}: median {:.3} ms", self.name, ns as f64 / 1e6);
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, |b| f(b));
        self
    }

    /// Benchmarks a closure receiving `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: env_samples(3),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
