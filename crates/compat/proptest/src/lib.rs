//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements
//! the subset of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait over ranges / tuples / collections, the
//! `prop::{collection, sample, option}` modules, [`any`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs left
//!   to the assertion message;
//! * generation is driven by a deterministic RNG seeded from the test's
//!   module path, so failures reproduce across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Configuration for a property test run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property test: deterministic RNG + case budget.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner seeded from `name` (usually the test path).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's
    /// `Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for heterogeneous sets (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `options`; each generate picks one uniformly.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof of empty set");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

/// Picks uniformly among strategies that share a value type (mirrors
/// proptest's `prop_oneof!`; equal weights only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i64, u64, i32, u32, usize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategy for [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates an arbitrary value of `T` (only the types the workspace's
/// tests request are implemented).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Vec`s of values from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vector of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = if self.size.min >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..=self.size.max)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        /// Picks one of `options` uniformly.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty set");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Some` three times out of four.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S>(S);

        /// Wraps `inner`'s values in `Option`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                rng.gen_bool(0.75).then(|| self.0.generate(rng))
            }
        }
    }
}

/// Inclusive element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

/// Asserts a property inside [`proptest!`]; panics (no shrinking) on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::TestRunner::new(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__runner.cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), __runner.rng());)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(0i64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!((0..10).contains(&x));
            }
        }

        #[test]
        fn select_picks_members(p in prop::sample::select(vec![1i64, 2, 4, 5, 8])) {
            prop_assert!([1i64, 2, 4, 5, 8].contains(&p));
        }

        #[test]
        fn map_and_oneof_compose(
            v in prop_oneof![
                (0i64..10).prop_map(|x| x * 2),
                prop::sample::select(vec![100i64, 200]),
            ],
        ) {
            prop_assert!((v % 2 == 0 && v < 20) || v == 100 || v == 200);
        }

        #[test]
        fn tuples_and_options(
            pair in (0i64..100, 1i64..50),
            o in prop::option::of(-1.0f32..1.0),
            b in any::<bool>(),
        ) {
            prop_assert!(pair.0 < 100 && pair.1 >= 1);
            if let Some(f) = o {
                prop_assert!((-1.0..1.0).contains(&f));
            }
            prop_assert!(usize::from(b) <= 1);
        }
    }
}
