//! # distrib-baseline
//!
//! Single-machine stand-ins for the distributed streaming engines of
//! Table 1 (Spark Streaming, Storm, Flink). The paper measures their
//! single-core temporal-join and upsampling throughput to motivate
//! LifeStream; the engines themselves are JVM systems we cannot embed, so
//! this crate reproduces the *costs that dominate their single-core
//! performance*:
//!
//! * **per-event record objects** — each event is deserialized into its
//!   own heap allocation (JVM object churn);
//! * **serialization at every operator hop** — micro-batches are encoded
//!   to bytes and decoded again between operators (exchange/network
//!   stack, even on one machine);
//! * **micro-batch scheduling** — work is chunked into per-engine batch
//!   sizes (Storm processes per-event, Flink small batches, Spark larger
//!   micro-batches with extra copies);
//! * **channel-connected operator tasks** — operators run as threads
//!   linked by bounded channels.
//!
//! Three [`Profile`]s dial those knobs to the three engines. Absolute
//! numbers are not the point (the paper's Table 1 machines differ);
//! the order — Storm < Spark < Flink ≪ Trill ≪ LifeStream/SciPy — is.
//!
//! ## The distributed runtime this crate argues for
//!
//! The baselines above spawn work per input batch and pay serialization
//! at every hop. LifeStream's own answer — long-lived sharded workers
//! with pooled, warmed, LRU-capped executors that patient data is routed
//! *to* — lives in [`cluster_harness::sharded`] and is re-exported here
//! as [`sharded`] so distributed-deployment code has one import surface:
//! the baselines to compare against and the runtime to deploy.
//!
//! Its data plane is *bounded end to end*: batch jobs queue on bounded
//! per-shard deques (`ShardedConfig::queue_cap` backpressures `submit`),
//! live samples are staged client-side and shipped as batches over
//! bounded channels (`IngestConfig`; `push` blocks when a shard lags,
//! exactly the discipline these baselines' channel-connected operator
//! tasks apply between operators), and each live session compacts its
//! ingest buffer as rounds complete, so resident memory follows the
//! round size and history margin — not the feed length. The
//! `live_throughput` bench bin quantifies the batched-vs-per-sample win
//! and the flat long-session curve.
//!
//! Unlike the baselines above — which pay serialization at every
//! operator hop even inside one process — serialization in this runtime
//! appears exactly where a machine boundary does: the [`net`] fabric
//! (re-exported here alongside [`sharded`]) puts the same ingest
//! protocol on a versioned length-prefixed TCP wire. Pick the front end
//! by deployment shape, not by API (all three implement
//! [`sharded::Ingest`]):
//!
//! * [`sharded::LiveIngest`] — one process owns every patient; bounded
//!   in-memory channels, no serialization at all.
//! * [`net::RemoteIngest`] — producers and compute on different hosts;
//!   one TCP peer, acks as backpressure, server-side drop counts
//!   propagated back into client stats.
//! * [`net::ClusterIngest`] — patients partitioned across a fleet of
//!   [`net::ShardServer`] machines via the live `machines::PlacementTable`
//!   routing table, with lossless mid-stream partition handoff
//!   (margin-suffix state transfer) for rebalancing. The
//!   `net_throughput` bench bin quantifies what the wire costs and what
//!   frame batching buys back; `cluster_loopback` demonstrates (and CI
//!   asserts) byte-identical output across all three front ends.
//!
//! ## Durability: what survives a machine death
//!
//! The JVM engines buy fault tolerance with the same machinery that
//! costs them their throughput above — Spark recomputes from lineage,
//! Storm acks per record, Flink snapshots channel state into
//! checkpoints. This runtime prices durability separately, in two
//! tiers, so the live path never pays for history it isn't asked to
//! keep:
//!
//! * **Store-less** (the default): each cluster client keeps a margin
//!   tail per patient — exactly the `history_margin` suffix a pipeline
//!   needs to warm up. A killed machine's patients fail over onto
//!   survivors from those tails with zero *sample* loss, but output
//!   rounds already collected on the dead machine, and all history
//!   below the compaction horizon, are gone. Retention bound = the
//!   margin; everything older exists nowhere.
//! * **Tiered store attached** (`lifestream_store`, via
//!   `ShardServer::bind_with_store` + `net::ClusterIngest`'s
//!   `connect_with_store` on a shared segment directory): every suffix
//!   the compactor retires is spilled to append-only, checksummed
//!   segment files *before* leaving memory. Failover then rebuilds the
//!   dead machine's patients from segments + margin tail, and any
//!   patient's feed stays answerable retrospectively byte-identically
//!   to the cold batch run — while live ingest continues. Retention
//!   bound = `StoreConfig::retention` ticks of durable history
//!   (unbounded by default); the crash-loss window = the unflushed
//!   write buffer (`flush_batch`, zero if every spill is flushed).
//!
//! Retrospective access to the durable tier is one typed API across
//! every front end: [`history::HistoryQueryApi`], answering a
//! [`history::HistoryQuery`] — a `[t0, t1)` time range, a patient
//! cohort, a pipeline — with per-patient outputs in a
//! [`history::CohortReport`]. Range-bounded queries *prune*: segment
//! file names carry a tick-range index, so files entirely outside the
//! (margin-padded) window are never opened, and the answer is
//! byte-identical to the full-history run clipped to the range. Over
//! the wire the query travels as opcode `HistoryQuery{patient, t0, t1,
//! warmup, pipeline}`, naming a server-registered pipeline by id
//! (`0` = the live pipeline); errors are typed
//! ([`history::HistoryError`]) with locked messages for the named
//! range errors.
//!
//! The `history_throughput` bench bin prices the spill path against
//! store-less ingest (and the pruned narrow-range scan against the
//! full scan); `crates/cluster/tests/history_equiv.rs` pins the
//! kill-and-rebuild guarantee.

#![warn(missing_docs)]
// Boxing each event is the point: it reproduces the per-event heap
// allocation (JVM object churn) these engines pay.
#![allow(clippy::vec_box)]
#![warn(rust_2018_idioms)]

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel;
use lifestream_core::source::SignalData;
use lifestream_core::time::Tick;

pub use cluster_harness::history;
pub use cluster_harness::net;
pub use cluster_harness::sharded;

/// One event record (what a JVM engine would hold as an object).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Sync time.
    pub ts: Tick,
    /// Measurement value.
    pub value: f32,
}

/// Engine tuning profile.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Engine label.
    pub name: &'static str,
    /// Events per micro-batch (1 = per-event processing).
    pub micro_batch: usize,
    /// Serialize/deserialize round-trips per operator hop (framework
    /// layers: exchange, checkpoint buffers, ...).
    pub codec_passes: usize,
    /// Per-record bookkeeping operations (ack registries, lineage
    /// tracking, metrics, per-record iterator dispatch). The counts are
    /// calibrated against Table 1's measured single-core throughputs —
    /// see DESIGN.md's substitution notes.
    pub bookkeeping_ops: u32,
}

impl Profile {
    /// Spark-Streaming-like: large micro-batches, heavyweight per-hop
    /// copies, RDD lineage + per-record iterator chains.
    pub fn spark() -> Self {
        Self {
            name: "spark",
            micro_batch: 10_000,
            codec_passes: 3,
            bookkeeping_ops: 1_100,
        }
    }

    /// Storm-like: per-event tuples through the whole topology with at
    /// least-once ack tracking.
    pub fn storm() -> Self {
        Self {
            name: "storm",
            micro_batch: 1,
            codec_passes: 2,
            bookkeeping_ops: 600,
        }
    }

    /// Flink-like: small buffers, leaner serialization, lighter record
    /// bookkeeping.
    pub fn flink() -> Self {
        Self {
            name: "flink",
            micro_batch: 1_000,
            codec_passes: 2,
            bookkeeping_ops: 850,
        }
    }
}

/// Size of the per-task bookkeeping table (metrics/ack registries touched
/// on every record): 512 KiB, deliberately larger than L2 so the touches
/// behave like real registry lookups, not register spins.
const BOOKKEEPING_SLOTS: usize = 64 * 1024;

/// Per-record framework bookkeeping: scattered read-modify-writes over a
/// registry table, the dominant per-record cost in JVM streaming engines
/// (ack trees, lineage, metrics, per-record iterator dispatch).
#[inline]
fn record_bookkeeping(seed: u64, table: &mut [u64], ops: u32) -> u64 {
    let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for r in 0..ops as u64 {
        let idx = ((h ^ r) % table.len() as u64) as usize;
        table[idx] = table[idx].wrapping_add(h | 1);
        h = h.rotate_left(7) ^ table[idx];
    }
    h
}

/// Run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistribStats {
    /// Events ingested.
    pub input_events: u64,
    /// Events emitted.
    pub output_events: u64,
    /// Bytes pushed through the codec in total.
    pub bytes_encoded: u64,
}

/// Encodes a batch of events (12 bytes each).
fn encode(events: &[Box<Event>]) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 12);
    for e in events {
        buf.put_i64_le(e.ts);
        buf.put_f32_le(e.value);
    }
    buf.freeze()
}

/// Decodes a batch into per-event heap allocations (object churn).
fn decode(mut bytes: Bytes) -> Vec<Box<Event>> {
    let mut out = Vec::with_capacity(bytes.len() / 12);
    while bytes.remaining() >= 12 {
        let ts = bytes.get_i64_le();
        let value = bytes.get_f32_le();
        out.push(Box::new(Event { ts, value }));
    }
    out
}

/// One operator hop: `codec_passes` serialize/deserialize round trips.
fn hop(events: Vec<Box<Event>>, passes: usize, stats_bytes: &mut u64) -> Vec<Box<Event>> {
    let mut cur = events;
    for _ in 0..passes {
        let b = encode(&cur);
        *stats_bytes += b.len() as u64;
        cur = decode(b);
    }
    cur
}

/// Extracts present events from a dataset as record objects.
fn to_events(data: &SignalData) -> Vec<Box<Event>> {
    let mut out = Vec::with_capacity(data.present_events());
    out.extend(
        data.present_samples()
            .map(|(_, t, v)| Box::new(Event { ts: t, value: v })),
    );
    out
}

/// Temporal inner join of two streams on the micro-batch engine: two
/// ingress tasks feed a join task through channels; the join buffers each
/// side until the other's watermark passes (per-event hash probing).
pub fn run_join(profile: Profile, left: &SignalData, right: &SignalData) -> DistribStats {
    use std::collections::HashMap;

    let mut stats = DistribStats::default();
    let l_events = to_events(left);
    let r_events = to_events(right);
    stats.input_events = (l_events.len() + r_events.len()) as u64;
    let grid = lifestream_core::time::gcd(left.shape().period(), right.shape().period()).max(1);
    let (l_period, r_period) = (left.shape().period(), right.shape().period());

    let (tx_l, rx_l) = channel::bounded::<Bytes>(16);
    let (tx_r, rx_r) = channel::bounded::<Bytes>(16);
    let mb = profile.micro_batch;
    let passes = profile.codec_passes;

    // Ingress tasks: per-record bookkeeping, chunk, codec-pass, ship.
    let book_ops = profile.bookkeeping_ops;
    let ingress = |events: Vec<Box<Event>>, tx: channel::Sender<Bytes>| {
        std::thread::spawn(move || {
            let mut registry = vec![0u64; BOOKKEEPING_SLOTS];
            let mut local_bytes = 0u64;
            let mut sink = 0u64;
            for chunk in events.chunks(mb.max(1)) {
                for e in chunk {
                    sink ^= record_bookkeeping(e.ts as u64, &mut registry, book_ops);
                }
                let hopped = hop(chunk.to_vec(), passes.saturating_sub(1), &mut local_bytes);
                let b = encode(&hopped);
                local_bytes += b.len() as u64;
                if tx.send(b).is_err() {
                    break;
                }
            }
            std::hint::black_box(sink);
            local_bytes
        })
    };
    let hl = ingress(l_events, tx_l);
    let hr = ingress(r_events, tx_r);

    // Join task: symmetric buffered hash join over grid instants.
    let mut lbuf: Vec<Box<Event>> = Vec::new();
    let mut rbuf: Vec<Box<Event>> = Vec::new();
    let (mut lw, mut rw) = (Tick::MIN, Tick::MIN);
    let mut emitted_to = Tick::MIN;
    let mut out_count = 0u64;
    let (mut l_open, mut r_open) = (true, true);
    while l_open || r_open {
        channel::select! {
            recv(rx_l) -> msg => match msg {
                Ok(b) => {
                    let evs = decode(b);
                    if let Some(last) = evs.last() { lw = lw.max(last.ts + 1); }
                    lbuf.extend(evs);
                }
                Err(_) => { l_open = false; lw = Tick::MAX; }
            },
            recv(rx_r) -> msg => match msg {
                Ok(b) => {
                    let evs = decode(b);
                    if let Some(last) = evs.last() { rw = rw.max(last.ts + 1); }
                    rbuf.extend(evs);
                }
                Err(_) => { r_open = false; rw = Tick::MAX; }
            },
        }
        let safe = lw.min(rw);
        if safe > emitted_to && !lbuf.is_empty() && !rbuf.is_empty() {
            // Hash right coverage, probe left events (per-event hashing —
            // the JVM engines' generic keyed join path).
            let mut probe: HashMap<Tick, f32> = HashMap::new();
            for e in &rbuf {
                let mut t = e.ts;
                while t < (e.ts + r_period).min(safe) {
                    probe.insert(t, e.value);
                    t += grid;
                }
            }
            for e in &lbuf {
                if e.ts >= safe {
                    continue;
                }
                let mut t = e.ts;
                while t < (e.ts + l_period).min(safe) {
                    if probe.contains_key(&t) {
                        out_count += 1;
                    }
                    t += grid;
                }
            }
            lbuf.retain(|e| e.ts + l_period > safe);
            rbuf.retain(|e| e.ts + r_period > safe);
            emitted_to = safe;
        }
    }
    stats.bytes_encoded += hl.join().unwrap_or(0) + hr.join().unwrap_or(0);
    stats.output_events = out_count;
    stats
}

/// Linear-interpolation upsampling on the micro-batch engine: ingress →
/// codec hop → interpolate task.
pub fn run_upsample(profile: Profile, input: &SignalData, dst_period: Tick) -> DistribStats {
    let mut stats = DistribStats::default();
    let events = to_events(input);
    stats.input_events = events.len() as u64;
    let src_period = input.shape().period();

    let (tx, rx) = channel::bounded::<Bytes>(16);
    let mb = profile.micro_batch;
    let passes = profile.codec_passes;
    let book_ops = profile.bookkeeping_ops;
    let h = std::thread::spawn(move || {
        let mut registry = vec![0u64; BOOKKEEPING_SLOTS];
        let mut local_bytes = 0u64;
        let mut sink = 0u64;
        for chunk in events.chunks(mb.max(1)) {
            for e in chunk {
                sink ^= record_bookkeeping(e.ts as u64, &mut registry, book_ops);
            }
            let hopped = hop(chunk.to_vec(), passes.saturating_sub(1), &mut local_bytes);
            let b = encode(&hopped);
            local_bytes += b.len() as u64;
            if tx.send(b).is_err() {
                break;
            }
        }
        std::hint::black_box(sink);
        local_bytes
    });

    let mut prev: Option<Box<Event>> = None;
    let mut out_count = 0u64;
    for b in rx.iter() {
        for e in decode(b) {
            if let Some(p) = &prev {
                if e.ts - p.ts == src_period {
                    let mut t = p.ts;
                    while t < e.ts {
                        let f = (t - p.ts) as f32 / src_period as f32;
                        let _v = p.value + f * (e.value - p.value);
                        out_count += 1;
                        t += dst_period;
                    }
                }
            }
            prev = Some(e);
        }
    }
    out_count += 1; // final sample passes through
    stats.bytes_encoded = h.join().unwrap_or(0);
    stats.output_events = out_count;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifestream_core::time::StreamShape;

    fn ramp(shape: StreamShape, n: usize) -> SignalData {
        SignalData::dense(shape, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn codec_roundtrips() {
        let evs: Vec<Box<Event>> = (0..10)
            .map(|i| {
                Box::new(Event {
                    ts: i,
                    value: i as f32,
                })
            })
            .collect();
        let decoded = decode(encode(&evs));
        assert_eq!(decoded.len(), 10);
        assert_eq!(*decoded[3], Event { ts: 3, value: 3.0 });
    }

    #[test]
    fn join_counts_overlapping_grid_points() {
        for profile in [Profile::spark(), Profile::storm(), Profile::flink()] {
            let l = ramp(StreamShape::new(0, 1), 1000);
            let r = ramp(StreamShape::new(0, 2), 500);
            let stats = run_join(profile, &l, &r);
            assert_eq!(stats.output_events, 1000, "profile {}", profile.name);
            assert!(stats.bytes_encoded > 0);
        }
    }

    #[test]
    fn join_respects_gaps() {
        let l = ramp(StreamShape::new(0, 1), 1000);
        let mut r = ramp(StreamShape::new(0, 1), 1000);
        r.punch_gap(0, 500);
        let stats = run_join(Profile::flink(), &l, &r);
        assert_eq!(stats.output_events, 500);
    }

    #[test]
    fn upsample_quadruples_125_to_500() {
        let input = ramp(StreamShape::new(0, 8), 1000);
        let stats = run_upsample(Profile::flink(), &input, 2);
        // Each source interval yields 4 output samples.
        assert!(stats.output_events >= 3993, "out {}", stats.output_events);
    }

    #[test]
    fn storm_processes_per_event() {
        let input = ramp(StreamShape::new(0, 8), 100);
        let stats = run_upsample(Profile::storm(), &input, 2);
        // Per-event batching => one 12-byte frame per event per pass.
        assert!(stats.bytes_encoded >= 100 * 12);
        assert!(stats.output_events > 390);
    }
}
