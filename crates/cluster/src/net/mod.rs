//! Cross-machine shard fabric: the ingest protocol over TCP.
//!
//! PR 4 shaped the live data plane around a serializable `SampleBatch`
//! over bounded channels precisely so a wire transport could slide
//! underneath without touching session semantics. This module is that
//! transport, in three layers that mirror Timely Dataflow's exchange
//! design — a process boundary speaks the same channel protocol as a
//! thread boundary:
//!
//! * [`wire`] — the versioned, length-prefixed, little-endian frame
//!   codec for the ingest command stream (batches, register/finish,
//!   polls, partition handoffs) and its acked replies. The v1 layout is
//!   locked by golden-byte fixtures.
//! * [`ShardServer`] / [`RemoteIngest`] — a TCP listener hosting the
//!   sharded live-ingest runtime, and the client that implements the
//!   same staging/backpressure [`Ingest`](crate::sharded::Ingest) API as
//!   the in-process front end: a bounded window of un-acked frames makes
//!   acks the backpressure signal, and server-side drop counts ride the
//!   acks back into the client's stats.
//! * [`ClusterIngest`] — hash-partitions patients over N endpoints via
//!   the live [`PlacementTable`](crate::machines::PlacementTable) and
//!   moves a patient between machines mid-stream with a cooperative
//!   handoff (drain, margin-suffix state transfer, re-pin) that loses
//!   zero samples.
//!
//! ## Choosing a front end
//!
//! | Front end | Sessions live | Use when |
//! |---|---|---|
//! | [`LiveIngest`](crate::sharded::LiveIngest) | this process | one machine owns every patient |
//! | [`RemoteIngest`] | one server | producers and compute are separate hosts |
//! | [`ClusterIngest`] | a fleet | patients exceed one machine; rebalancing needed |
//!
//! All three implement [`Ingest`](crate::sharded::Ingest), so the choice
//! is a constructor, not a rewrite. The `cluster_loopback` example runs
//! the same feed through all three and asserts byte-identical output —
//! including across a mid-stream handoff.

mod client;
mod cluster;
mod server;
pub mod wire;

pub use client::{RemoteConfig, RemoteIngest};
pub use cluster::ClusterIngest;
pub use server::ShardServer;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use lifestream_core::ops::aggregate::AggKind;
    use lifestream_core::stream::Query;
    use lifestream_core::time::StreamShape;

    use crate::sharded::{Ingest, IngestConfig, LiveIngest, PipelineFactory};

    use super::*;

    fn factory() -> PipelineFactory {
        Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 2))
                .select(1, |i, o| o[0] = i[0] + 1.0)?
                .aggregate(AggKind::Mean, 40, 4)?
                .sink();
            q.compile()
        })
    }

    fn serve() -> (ShardServer, std::net::SocketAddr) {
        let server = ShardServer::bind(factory(), IngestConfig::new(2, 100), "127.0.0.1:0")
            .expect("bind loopback");
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn remote_ingest_matches_local_ingest_byte_for_byte() {
        let (server, addr) = serve();
        let run = |ingest: &dyn Ingest| {
            for p in [1u64, 2, 3] {
                ingest.admit(p).unwrap();
            }
            for k in 0..400i64 {
                for p in [1u64, 2, 3] {
                    ingest.push(p, 0, k * 2, (k * 31 % 83) as f32 + p as f32);
                }
                if k % 47 == 0 {
                    ingest.poll();
                }
            }
            let mut sums = Vec::new();
            for p in [1u64, 2, 3] {
                let out = ingest.finish(p).unwrap();
                sums.push((out.len(), out.checksum()));
            }
            sums
        };
        let local = LiveIngest::new(factory(), 2, 100);
        let expect = run(&local);
        local.shutdown();
        let remote = RemoteIngest::connect(addr, RemoteConfig::default().batch(32).window(4))
            .expect("connect");
        let got = run(&remote);
        assert_eq!(got, expect, "TCP transport must be invisible in output");
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn tiny_window_backpressures_but_loses_nothing() {
        let (server, addr) = serve();
        let remote =
            RemoteIngest::connect(addr, RemoteConfig::default().batch(1).window(1)).unwrap();
        remote.admit(7).unwrap();
        for k in 0..1_000i64 {
            remote.push(7, 0, k * 2, k as f32);
        }
        let out = remote.finish(7).unwrap();
        let local = LiveIngest::new(factory(), 1, 100);
        local.admit(7).unwrap();
        for k in 0..1_000i64 {
            local.push(7, 0, k * 2, k as f32);
        }
        let expect = local.finish(7).unwrap();
        local.shutdown();
        assert_eq!(out.len(), expect.len());
        assert_eq!(out.checksum(), expect.checksum());
        let stats = remote.stats();
        assert_eq!(stats.samples_pushed, 1_000);
        assert_eq!(stats.batches_flushed, 1_000, "batch=1 → frame per sample");
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn server_side_drops_surface_in_client_stats() {
        // The satellite fix: unknown-patient drops happen on the server,
        // but the client's IngestStats must see them (via ack deltas).
        let (server, addr) = serve();
        let remote = RemoteIngest::connect(addr, RemoteConfig::default().batch(4)).unwrap();
        remote.admit(1).unwrap();
        remote.push(2, 0, 0, 1.0); // never admitted
        remote.push(2, 0, 2, 1.0);
        remote.push(1, 0, 0, 1.0);
        remote.barrier().unwrap();
        let stats = remote.stats();
        assert_eq!(stats.dropped_unknown, 2);
        assert_eq!(stats.samples_pushed, 3);
        assert_eq!(server.ingest_stats().dropped_unknown, 2);
        let _ = remote.finish(1).unwrap();
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn remote_errors_and_deferred_violations_propagate() {
        let (server, addr) = serve();
        let remote = RemoteIngest::connect(addr, RemoteConfig::default()).unwrap();
        remote.admit(5).unwrap();
        let err = remote.admit(5).unwrap_err();
        assert!(err.contains("already admitted"), "err: {err}");
        remote.push(5, 0, 3, 1.0); // off the period-2 grid
        remote.push(5, 0, 7, 2.0);
        let err = remote.finish(5).unwrap_err();
        assert!(
            err.contains("time 3") && err.contains("time 7"),
            "err: {err}"
        );
        let err = remote.finish(99).unwrap_err();
        assert!(err.contains("not admitted"), "err: {err}");
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn cluster_rebalance_moves_a_patient_without_losing_samples() {
        let (server_a, addr_a) = serve();
        let (server_b, addr_b) = serve();
        let cluster = ClusterIngest::connect(
            &[addr_a, addr_b],
            RemoteConfig::default().batch(16).window(4),
        )
        .unwrap();
        let p = 11u64;
        let home = cluster.machine_of(p);
        let away = 1 - home;
        cluster.admit(p).unwrap();
        for k in 0..300i64 {
            cluster.push(p, 0, k * 2, (k % 53) as f32);
            if k % 59 == 0 {
                cluster.poll();
            }
        }
        cluster.rebalance(p, away).unwrap();
        assert_eq!(cluster.machine_of(p), away);
        for k in 300..600i64 {
            cluster.push(p, 0, k * 2, (k % 53) as f32);
            if k % 59 == 0 {
                cluster.poll();
            }
        }
        let moved = cluster.finish(p).unwrap();

        // Reference: the same feed through one in-process ingest.
        let local = LiveIngest::new(factory(), 1, 100);
        local.admit(p).unwrap();
        for k in 0..600i64 {
            local.push(p, 0, k * 2, (k % 53) as f32);
            if k % 59 == 0 {
                local.poll();
            }
        }
        let expect = local.finish(p).unwrap();
        local.shutdown();

        assert_eq!(moved.len(), expect.len(), "handoff must lose zero samples");
        assert_eq!(
            moved.checksum(),
            expect.checksum(),
            "and stay byte-identical"
        );
        assert_eq!(cluster.stats().dropped_unknown, 0);
        // Rebalancing to the current owner is a no-op; out-of-range is an
        // error, not a panic.
        cluster.rebalance(p, away).unwrap();
        assert!(cluster
            .rebalance(p, 9)
            .unwrap_err()
            .contains("out of range"));
        cluster.shutdown();
        server_a.shutdown();
        server_b.shutdown();
    }

    #[test]
    fn malformed_frame_gets_an_error_reply_not_a_hang() {
        use std::io::{Read, Write};
        let (server, addr) = serve();
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        // A well-framed payload with a bogus version byte.
        let payload = [9u8, 0x01, 0, 0, 0, 0, 0, 0, 0, 0];
        sock.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        sock.write_all(&payload).unwrap();
        let mut reply = Vec::new();
        sock.read_to_end(&mut reply).unwrap();
        // 4-byte length + version + opcode 0x82 (Err) + message.
        assert!(reply.len() > 6);
        assert_eq!(reply[4], wire::WIRE_VERSION);
        assert_eq!(reply[5], 0x82, "Err reply expected");
        drop(sock);
        server.shutdown();
    }
}
