//! Cross-machine shard fabric: the ingest protocol over TCP.
//!
//! PR 4 shaped the live data plane around a serializable `SampleBatch`
//! over bounded channels precisely so a wire transport could slide
//! underneath without touching session semantics. This module is that
//! transport, in three layers that mirror Timely Dataflow's exchange
//! design — a process boundary speaks the same channel protocol as a
//! thread boundary:
//!
//! * [`wire`] — the versioned, length-prefixed, little-endian frame
//!   codec for the ingest command stream (batches, register/finish,
//!   polls, partition handoffs, session handshakes) and its acked
//!   replies. The v2 layout is locked by golden-byte fixtures.
//! * [`ShardServer`] / [`RemoteIngest`] — a TCP listener hosting the
//!   sharded live-ingest runtime, and the client that implements the
//!   same staging/backpressure [`Ingest`](crate::sharded::Ingest) API as
//!   the in-process front end: a bounded window of un-acked frames makes
//!   acks the backpressure signal, and server-side drop counts ride the
//!   acks back into the client's stats. The same window doubles as the
//!   *replay buffer*: a client whose socket dies redials with
//!   exponential backoff, handshakes `Hello{epoch, last_acked_seq}` ↔
//!   `Resume{last_applied_seq}`, and re-sends exactly the un-acked
//!   suffix; the server's per-session `last_applied_seq` deduplicates
//!   the overlap, so every frame applies exactly once and a resumed
//!   stream is byte-identical to an uninterrupted one.
//! * [`ClusterIngest`] — hash-partitions patients over N endpoints via
//!   the live [`PlacementTable`](crate::machines::PlacementTable) and
//!   moves a patient between machines mid-stream with a cooperative
//!   handoff (drain, margin-suffix state transfer, re-pin) that loses
//!   zero samples. Each admitted patient also keeps a client-side
//!   margin tail, so when an endpoint exhausts its reconnect budget the
//!   machine is declared down and its patients are re-admitted on
//!   survivors — failover rides the same suffix-import warm-up as a
//!   planned handoff.
//! * [`chaos`] — a deterministic in-process fault-injecting TCP proxy
//!   (sever / delay / black-hole at seed-chosen frame boundaries) that
//!   drives the fault-equivalence battery in `tests/fault_equiv.rs`.
//!
//! ## Choosing a front end
//!
//! | Front end | Sessions live | Use when |
//! |---|---|---|
//! | [`LiveIngest`](crate::sharded::LiveIngest) | this process | one machine owns every patient |
//! | [`RemoteIngest`] | one server | producers and compute are separate hosts |
//! | [`ClusterIngest`] | a fleet | patients exceed one machine; rebalancing + failover needed |
//!
//! All three implement [`Ingest`](crate::sharded::Ingest), so the choice
//! is a constructor, not a rewrite. The `cluster_loopback` example runs
//! the same feed through all three and asserts byte-identical output —
//! including across a mid-stream handoff; `cluster_failover` does the
//! same under injected faults and a hard server kill.
//!
//! ## Failure semantics
//!
//! What each failure costs, layer by layer:
//!
//! | Failure | Detected by | Recovery | Guaranteed loss bound |
//! |---|---|---|---|
//! | Transient socket death (reset, EOF, timeout) | [`wire::retryable_io`] on read/write | redial + `Hello`/`Resume` + window replay | nothing: resumed stream byte-identical |
//! | Mid-frame EOF | `wire::WireError::ConnectionLost` (retryable) | same as above | nothing |
//! | Malformed / hostile frame | decode error | none — `Err` reply, connection fatal | n/a (protocol error, not a fault) |
//! | Stale epoch (superseded connection) | server epoch guard | none — old connection told to die | nothing: the new epoch owns the window |
//! | Reconnect budget exhausted | [`RemoteIngest::is_dead`] | cluster failover: machine marked `Down`, patients re-admitted from client tails on survivors | un-acked window input is *replayed, not lost*; output rounds below the failover frontier collected only on the dead machine, plus its deferred per-sample errors |
//! | Machine death mid-`rebalance` export | dead source endpoint | whole-machine failover (tails) | same as failover |
//! | Machine death mid-`rebalance` import | dead destination endpoint | destination downed; exported state re-imported on the patient's new owner | nothing: the export (with collected output) was still in hand |
//! | Every machine dead | `live_machines() == 0` | none | patients counted `patients_lost`; calls surface transport errors |
//!
//! The deterministic guarantee the test battery pins down: under any
//! seed-chosen schedule of sever/delay/black-hole faults *without* a
//! machine death, cluster output is byte-identical to the fault-free
//! retrospective run; with a hard kill, every patient survives on
//! another machine and output at or above the failover frontier is
//! byte-identical to the reference.
//!
//! ## The durable tier changes the loss bounds
//!
//! Everything above describes the store-less fabric, where history
//! below the compaction horizon exists nowhere once it leaves memory.
//! Attaching the tiered store re-prices two rows of the table:
//!
//! * **Server side** — [`ShardServer::bind_with_store`] spills every
//!   compacted span to append-only segment files before it leaves
//!   memory, and answers the v2 `HistoryQuery` command (opcode `0x08`)
//!   by stitching segments + write buffer + live suffix back into a
//!   full retrospective run, byte-identical to the cold batch run,
//!   while ingest continues. Several servers may share one directory
//!   (writer-nonced segment names never collide) — that shared
//!   directory is what makes cross-machine rebuild possible.
//! * **Client side** — [`ClusterIngest::connect_with_store`] points the
//!   coordinator at the same directory. On failover it prefers
//!   *segment rebuild* over tail replay: the dead machine's durable
//!   history is merged under the client margin tail (the tail wins on
//!   overlap), so the survivor's warm-up suffix is complete even where
//!   the tail was truncated, and a history query on the survivor still
//!   reconstructs the patient's entire feed. The "output rounds below
//!   the failover frontier" caveat disappears: they are recomputable on
//!   demand.
//!
//! Retrospective access to the durable tier goes through one typed
//! surface: [`HistoryQueryApi`](crate::history::HistoryQueryApi),
//! implemented by all three front ends. A
//! [`HistoryQuery`](crate::history::HistoryQuery) names a time range, a
//! patient cohort, and a pipeline; range-bounded queries prune whole
//! segment files by the tick-range index in their names, and the wire
//! front ends ship the range plus a server-side pipeline-registry id in
//! the `HistoryQuery` command below.
//!
//! The residual loss window on a hard kill is exactly the store's
//! unflushed write buffer (`StoreConfig::flush_batch` samples per
//! session; `flush_batch(0)` flushes every spill and shrinks the
//! window to zero, which is how the kill tests in
//! `tests/history_equiv.rs` pin "zero history lost"). Durability of a
//! flushed segment is the filesystem's: files are written
//! tmp + fsync + rename, so a torn write never corrupts the store —
//! readers skip truncated tails and checksum-reject damaged records.
//!
//! ## Wire format v1 → v2
//!
//! v2 (this PR) extends every command with a session sequence number
//! and adds the resume handshake; see [`wire`] for the full grammar.
//!
//! * commands carry `version:u8 opcode:u8 seq:u64` (v1 had no `seq`),
//!   where `seq` starts at 1 per session and orders the replay window;
//! * new command `Hello{session, epoch, last_acked_seq}` (opcode 0x07)
//!   opens every connection; new replies `Resume` (0x86) answering it
//!   and `Admitted` (0x87) carrying the session's grid metadata so the
//!   client can size failover tails;
//! * `Ack` (0x83) now echoes `seq` and carries *cumulative* applied /
//!   dropped counters, so a client can reconcile counts across lost
//!   acks;
//! * new command `HistoryQuery{patient, t0, t1, warmup, pipeline}`
//!   (opcode 0x08) runs a retrospective query over the server's tiered
//!   store — clipped to `[t0, t1)` with `(i64::MIN, i64::MAX)` as the
//!   full-range sentinel, through the registry pipeline named by
//!   `pipeline` (`0` = the live pipeline) — and answers with an
//!   `Output` reply; additive, so store-less servers simply reject it;
//! * version byte bumped to `0x02`; v1 frames are refused with a
//!   version error.

pub mod chaos;
mod client;
mod cluster;
mod server;
pub mod wire;

pub use client::{RemoteConfig, RemoteHealth, RemoteIngest};
pub use cluster::{ClusterHealth, ClusterIngest, MachineHealth};
pub use server::ShardServer;

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use lifestream_core::ops::aggregate::AggKind;
    use lifestream_core::stream::Query;
    use lifestream_core::time::StreamShape;

    use crate::machines::MachineState;
    use crate::sharded::{Ingest, IngestConfig, LiveIngest, PipelineFactory};

    use super::chaos::{ChaosProxy, FaultPlan};
    use super::*;

    fn factory() -> PipelineFactory {
        Arc::new(|| {
            let q = Query::new();
            q.source("s", StreamShape::new(0, 2))
                .select(1, |i, o| o[0] = i[0] + 1.0)?
                .aggregate(AggKind::Mean, 40, 4)?
                .sink();
            q.compile()
        })
    }

    fn serve() -> (ShardServer, std::net::SocketAddr) {
        let server = ShardServer::bind(factory(), IngestConfig::new(2, 100), "127.0.0.1:0")
            .expect("bind loopback");
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn remote_ingest_matches_local_ingest_byte_for_byte() {
        let (server, addr) = serve();
        let run = |ingest: &dyn Ingest| {
            for p in [1u64, 2, 3] {
                ingest.admit(p).unwrap();
            }
            for k in 0..400i64 {
                for p in [1u64, 2, 3] {
                    ingest.push(p, 0, k * 2, (k * 31 % 83) as f32 + p as f32);
                }
                if k % 47 == 0 {
                    ingest.poll();
                }
            }
            let mut sums = Vec::new();
            for p in [1u64, 2, 3] {
                let out = ingest.finish(p).unwrap();
                sums.push((out.len(), out.checksum()));
            }
            sums
        };
        let local = LiveIngest::new(factory(), 2, 100);
        let expect = run(&local);
        local.shutdown();
        let remote = RemoteIngest::connect(addr, RemoteConfig::default().batch(32).window(4))
            .expect("connect");
        let got = run(&remote);
        assert_eq!(got, expect, "TCP transport must be invisible in output");
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn tiny_window_backpressures_but_loses_nothing() {
        let (server, addr) = serve();
        let remote =
            RemoteIngest::connect(addr, RemoteConfig::default().batch(1).window(1)).unwrap();
        remote.admit(7).unwrap();
        for k in 0..1_000i64 {
            remote.push(7, 0, k * 2, k as f32);
        }
        let out = remote.finish(7).unwrap();
        let local = LiveIngest::new(factory(), 1, 100);
        local.admit(7).unwrap();
        for k in 0..1_000i64 {
            local.push(7, 0, k * 2, k as f32);
        }
        let expect = local.finish(7).unwrap();
        local.shutdown();
        assert_eq!(out.len(), expect.len());
        assert_eq!(out.checksum(), expect.checksum());
        let stats = remote.stats();
        assert_eq!(stats.samples_pushed, 1_000);
        assert_eq!(stats.batches_flushed, 1_000, "batch=1 → frame per sample");
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn server_side_drops_surface_in_client_stats() {
        // The satellite fix: unknown-patient drops happen on the server,
        // but the client's IngestStats must see them (via ack deltas).
        let (server, addr) = serve();
        let remote = RemoteIngest::connect(addr, RemoteConfig::default().batch(4)).unwrap();
        remote.admit(1).unwrap();
        remote.push(2, 0, 0, 1.0); // never admitted
        remote.push(2, 0, 2, 1.0);
        remote.push(1, 0, 0, 1.0);
        remote.barrier().unwrap();
        let stats = remote.stats();
        assert_eq!(stats.dropped_unknown, 2);
        assert_eq!(stats.samples_pushed, 3);
        assert_eq!(server.ingest_stats().dropped_unknown, 2);
        let _ = remote.finish(1).unwrap();
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn remote_errors_and_deferred_violations_propagate() {
        let (server, addr) = serve();
        let remote = RemoteIngest::connect(addr, RemoteConfig::default()).unwrap();
        remote.admit(5).unwrap();
        let err = remote.admit(5).unwrap_err();
        assert!(err.contains("already admitted"), "err: {err}");
        remote.push(5, 0, 3, 1.0); // off the period-2 grid
        remote.push(5, 0, 7, 2.0);
        let err = remote.finish(5).unwrap_err();
        assert!(
            err.contains("time 3") && err.contains("time 7"),
            "err: {err}"
        );
        let err = remote.finish(99).unwrap_err();
        assert!(err.contains("not admitted"), "err: {err}");
        remote.shutdown();
        server.shutdown();
    }

    #[test]
    fn cluster_rebalance_moves_a_patient_without_losing_samples() {
        let (server_a, addr_a) = serve();
        let (server_b, addr_b) = serve();
        let cluster = ClusterIngest::connect(
            &[addr_a, addr_b],
            RemoteConfig::default().batch(16).window(4),
        )
        .unwrap();
        let p = 11u64;
        let home = cluster.machine_of(p);
        let away = 1 - home;
        cluster.admit(p).unwrap();
        for k in 0..300i64 {
            cluster.push(p, 0, k * 2, (k % 53) as f32);
            if k % 59 == 0 {
                cluster.poll();
            }
        }
        cluster.rebalance(p, away).unwrap();
        assert_eq!(cluster.machine_of(p), away);
        for k in 300..600i64 {
            cluster.push(p, 0, k * 2, (k % 53) as f32);
            if k % 59 == 0 {
                cluster.poll();
            }
        }
        let moved = cluster.finish(p).unwrap();

        // Reference: the same feed through one in-process ingest.
        let local = LiveIngest::new(factory(), 1, 100);
        local.admit(p).unwrap();
        for k in 0..600i64 {
            local.push(p, 0, k * 2, (k % 53) as f32);
            if k % 59 == 0 {
                local.poll();
            }
        }
        let expect = local.finish(p).unwrap();
        local.shutdown();

        assert_eq!(moved.len(), expect.len(), "handoff must lose zero samples");
        assert_eq!(
            moved.checksum(),
            expect.checksum(),
            "and stay byte-identical"
        );
        assert_eq!(cluster.stats().dropped_unknown, 0);
        // Rebalancing to the current owner is a no-op; out-of-range is an
        // error, not a panic.
        cluster.rebalance(p, away).unwrap();
        assert!(cluster
            .rebalance(p, 9)
            .unwrap_err()
            .contains("out of range"));
        cluster.shutdown();
        server_a.shutdown();
        server_b.shutdown();
    }

    #[test]
    fn malformed_frame_gets_an_error_reply_not_a_hang() {
        use std::io::{Read, Write};
        let (server, addr) = serve();
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        // A well-framed payload with a bogus version byte.
        let payload = [9u8, 0x01, 0, 0, 0, 0, 0, 0, 0, 0];
        sock.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        sock.write_all(&payload).unwrap();
        let mut reply = Vec::new();
        sock.read_to_end(&mut reply).unwrap();
        // 4-byte length + version + opcode 0x82 (Err) + message.
        assert!(reply.len() > 6);
        assert_eq!(reply[4], wire::WIRE_VERSION);
        assert_eq!(reply[5], 0x82, "Err reply expected");
        drop(sock);
        server.shutdown();
    }

    #[test]
    fn severed_connections_resume_byte_identically() {
        let (server, addr) = serve();
        // Every connection gets severed within its first 30 frames, so
        // the run crosses several reconnect-with-resume cycles.
        let proxy = ChaosProxy::spawn(addr, FaultPlan::sever(0xC0FFEE, 4, 30)).unwrap();
        let remote = RemoteIngest::connect(
            proxy.local_addr(),
            RemoteConfig::default()
                .batch(8)
                .window(4)
                .retries(8)
                .backoff(Duration::from_millis(2), Duration::from_millis(20)),
        )
        .unwrap();
        remote.admit(3).unwrap();
        for k in 0..600i64 {
            remote.push(3, 0, k * 2, (k * 13 % 71) as f32);
            if k % 97 == 0 {
                remote.poll();
            }
        }
        let out = remote.finish(3).unwrap();
        let health = remote.health();
        assert!(health.reconnects > 0, "chaos must have forced a resume");
        assert!(proxy.faults_injected() > 0);

        let local = LiveIngest::new(factory(), 1, 100);
        local.admit(3).unwrap();
        for k in 0..600i64 {
            local.push(3, 0, k * 2, (k * 13 % 71) as f32);
            if k % 97 == 0 {
                local.poll();
            }
        }
        let expect = local.finish(3).unwrap();
        local.shutdown();
        assert_eq!(out.len(), expect.len(), "resume must lose zero frames");
        assert_eq!(out.checksum(), expect.checksum());
        remote.shutdown();
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn dead_server_poisons_cleanly_and_shutdown_does_not_panic() {
        let (server, addr) = serve();
        let remote = RemoteIngest::connect(
            addr,
            RemoteConfig::default()
                .batch(2)
                .window(2)
                .retries(2)
                .backoff(Duration::from_millis(1), Duration::from_millis(5)),
        )
        .unwrap();
        remote.admit(1).unwrap();
        remote.push(1, 0, 0, 1.0);
        remote.barrier().unwrap();
        server.kill();
        // Pushes after the kill exhaust the reconnect budget and poison
        // the client instead of hanging or panicking.
        for k in 1..200i64 {
            remote.push(1, 0, k * 2, k as f32);
            if remote.is_dead() {
                break;
            }
        }
        assert!(remote.is_dead());
        let err = remote.finish(1).unwrap_err();
        assert!(err.contains("reconnect"), "err: {err}");
        assert!(remote.last_error().is_some());
        // Drop/shutdown with the peer gone must stay silent.
        remote.shutdown();
    }

    #[test]
    fn cluster_health_reports_machine_states() {
        let (server_a, addr_a) = serve();
        let (server_b, addr_b) = serve();
        let cluster = ClusterIngest::connect(
            &[addr_a, addr_b],
            RemoteConfig::default()
                .batch(4)
                .window(4)
                .retries(2)
                .backoff(Duration::from_millis(1), Duration::from_millis(5)),
        )
        .unwrap();
        let health = cluster.health();
        assert_eq!(health.machines.len(), 2);
        assert!(health.machines.iter().all(|m| m.state == MachineState::Up));
        assert_eq!(health.failovers, 0);
        cluster.shutdown();
        server_a.shutdown();
        server_b.shutdown();
    }
}
