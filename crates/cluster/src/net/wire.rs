//! Versioned, length-prefixed binary wire format for the ingest command
//! stream.
//!
//! Everything the in-process [`LiveIngest`](crate::sharded::LiveIngest)
//! protocol says — admit/finish, sample batches, polls, partition
//! handoffs, and their replies — has one explicit byte layout here, so a
//! client and server built from different checkouts either interoperate
//! bit-exactly or fail loudly on the version byte.
//!
//! ## Frame layout (v2)
//!
//! Every frame is a 4-byte **little-endian** `u32` payload length
//! followed by the payload. All multi-byte integers in the payload are
//! little-endian; `f32` values travel as their IEEE-754 bit patterns.
//!
//! ```text
//! frame   := len:u32 payload[len]
//! command := version:u8 (=0x02) opcode:u8 seq:u64 body
//! reply   := version:u8 (=0x02) opcode:u8 body
//!
//! commands                         replies
//!   0x01 Admit   patient:u64        0x81 Ok
//!   0x02 Batch   samples:vec        0x82 Err      msg:str
//!   0x03 Poll                       0x83 Ack      seq:u64 cum_samples:u64
//!   0x04 Finish  patient:u64                      cum_dropped:u64
//!   0x05 Export  patient:u64        0x84 Output   collector
//!   0x06 Import  patient:u64        0x85 Handoff  handoff
//!               handoff             0x86 Resume   last_applied_seq:u64
//!   0x07 Hello   session:u64                      cum_samples:u64
//!               epoch:u64                         cum_dropped:u64
//!               last_acked_seq:u64  0x87 Admitted meta
//!   0x08 HistoryQuery patient:u64
//!                t0:i64 t1:i64
//!                warmup:i64
//!                pipeline:u32
//!
//! sample    := patient:u64 source:u32 t:i64 v:f32          (24 bytes)
//! vec       := count:u32 item*
//! str       := len:u32 utf8-bytes
//! collector := arity:u32 len:u32 times:i64*len
//!              durations:i64*len (values:f32*len)*arity
//! suffix    := base_slot:u64 watermark:i64
//!              values:u32+f32* ranges:u32+(start:i64 end:i64)*
//! snapshot  := next_round:i64 sources:u32+suffix*
//! handoff   := snapshot collector errors:u32+str*
//! meta      := round:i64 arity:u32
//!              sources:u32+(offset:i64 period:i64 margin:i64)*
//! ```
//!
//! ## v1 → v2 changes
//!
//! v1 carried no sequencing: a command payload was `version opcode body`
//! and [`Ack`](WireReply::Ack) carried the per-command stats *delta*.
//! v2 makes every connection resumable:
//!
//! * **Every command carries a session-scoped `seq`** (first frame of a
//!   session is seq 1; [`Hello`](WireCmd::Hello) itself travels as
//!   seq 0 because it is connection metadata, not session state).
//! * **`Hello` / `Resume` handshake.** The first frame on every
//!   connection is `Hello{session, epoch, last_acked_seq}`; the server
//!   answers `Resume{last_applied_seq, ..}` so a reconnecting client
//!   knows exactly which un-acked frames to replay. `epoch` increments
//!   on each redial and the server refuses stale epochs, so a delayed
//!   old socket can never resurrect a superseded connection.
//! * **Acks are cumulative.** `Ack{seq, cum_samples, cum_dropped}`
//!   echoes the command seq and carries session-lifetime totals, so a
//!   client that lost acks in a sever still reconciles its counters
//!   exactly from the next ack it sees.
//! * **`Admit` is answered by `Admitted{meta}`** describing the
//!   session's round, sink arity, and per-source shape + history margin
//!   — the exact facts a failover peer needs to size replay buffers.
//!
//! Every `vec`/`str` count is validated against the bytes actually left
//! in its frame before anything is allocated (and a collector's arity —
//! whose columns can be zero bytes long — against [`MAX_WIRE_ARITY`]),
//! so a corrupt or hostile frame is refused, never amplified into an
//! allocation.
//!
//! The layout is locked by golden-byte fixtures in
//! `crates/cluster/tests/wire_codec.rs`: changing any of the above
//! without bumping [`WIRE_VERSION`] fails those tests, not a production
//! peer.

use std::io::{self, Read, Write};

use lifestream_core::exec::OutputCollector;
use lifestream_core::live::{SessionSnapshot, SourceSuffix};

use crate::sharded::{PatientHandoff, PatientId, Sample, SessionMeta, SourceMeta};

/// Wire-format version byte every payload starts with.
pub const WIRE_VERSION: u8 = 2;

/// Hard ceiling on a frame payload (64 MiB): a corrupt or hostile length
/// prefix must not become an allocation bomb.
pub const MAX_FRAME: usize = 64 << 20;

/// Hard ceiling on a decoded collector's payload arity. The engine's own
/// limit is 8 ([`lifestream_core::fwindow::MAX_ARITY`]); the wire allows
/// headroom but must bound it, because arity is the one count whose
/// elements can occupy *zero* payload bytes (a zero-length collector),
/// so the remaining-bytes check below cannot constrain it.
pub const MAX_WIRE_ARITY: usize = 1024;

/// A decoded ingest command (client → server).
#[derive(Debug)]
pub enum WireCmd {
    /// Register a patient: compile its query, open its live session.
    Admit {
        /// Patient to admit.
        patient: PatientId,
    },
    /// A staged run of samples, applied in push order.
    Batch(Vec<Sample>),
    /// Process all complete rounds of every session.
    Poll,
    /// End a patient's stream and return its collected output.
    Finish {
        /// Patient to finish.
        patient: PatientId,
    },
    /// Remove a patient's session and return its handoff state.
    Export {
        /// Patient to export.
        patient: PatientId,
    },
    /// Re-create a patient session from handoff state.
    Import {
        /// Patient to import.
        patient: PatientId,
        /// The exported session state.
        state: Box<PatientHandoff>,
    },
    /// Session handshake: the first frame on every connection.
    ///
    /// A fresh session sends `epoch == 0` and `last_acked_seq == 0`; a
    /// reconnect bumps `epoch` and reports the highest seq it has seen
    /// acknowledged, so the server's [`Resume`](WireReply::Resume) tells
    /// it exactly which window frames to replay.
    Hello {
        /// Client-chosen session identity, stable across reconnects.
        session: u64,
        /// Connection attempt number within the session; the server
        /// refuses Hellos with an epoch older than one it has seen.
        epoch: u64,
        /// Highest command seq the client knows was applied.
        last_acked_seq: u64,
    },
    /// Retrospective query: re-run a pipeline over the patient's durable
    /// history (segments + write buffer + live suffix), clipped to
    /// `[t0, t1)`, and return the collected output. Requires a
    /// server-side tiered store; the live session, if any, keeps
    /// ingesting — the query runs on a stitched copy. Range-bounded
    /// queries only read segment files overlapping the window, and the
    /// full-range sentinel `(i64::MIN, i64::MAX)` means "everything".
    /// Answered by [`Output`](WireReply::Output).
    HistoryQuery {
        /// Patient whose history to re-run.
        patient: PatientId,
        /// Inclusive start of the query range (`i64::MIN` = open).
        t0: i64,
        /// Exclusive end of the query range (`i64::MAX` = open).
        t1: i64,
        /// Extra pre-roll ticks for stateful user transforms.
        warmup: i64,
        /// Server-side pipeline registry id (`0` = the live pipeline).
        pipeline: u32,
    },
}

/// A decoded reply (server → client). Every command frame gets exactly
/// one reply frame, in order.
#[derive(Debug)]
pub enum WireReply {
    /// The command succeeded with nothing to return.
    Ok,
    /// The command failed; the message preserves the server-side error.
    Err(String),
    /// A batch (or poll) was applied. `seq` echoes the command; the
    /// counters are **cumulative** session totals of the server's
    /// [`IngestStats`] contributions — samples accepted and samples
    /// dropped for unknown patients — so a client whose acks were lost
    /// in a sever reconciles exactly from the next ack it sees.
    ///
    /// [`IngestStats`]: crate::sharded::IngestStats
    Ack {
        /// The command seq this ack answers.
        seq: u64,
        /// Session-lifetime samples the server has applied.
        cum_samples: u64,
        /// Session-lifetime samples dropped for unknown patients.
        cum_dropped: u64,
    },
    /// A finished patient's collected output.
    Output(OutputCollector),
    /// An exported patient's handoff state.
    Handoff(Box<PatientHandoff>),
    /// Answer to [`Hello`](WireCmd::Hello): where the session stands.
    Resume {
        /// Highest command seq the server has applied for this session.
        last_applied_seq: u64,
        /// Session-lifetime samples applied (matches the ack counters).
        cum_samples: u64,
        /// Session-lifetime samples dropped for unknown patients.
        cum_dropped: u64,
    },
    /// Answer to [`Admit`](WireCmd::Admit): the compiled session's
    /// shape facts a failover peer needs to size replay buffers.
    Admitted {
        /// Round, sink arity, and per-source shape + history margin.
        meta: SessionMeta,
    },
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// The version byte is not [`WIRE_VERSION`].
    Version(u8),
    /// Unknown opcode for this payload kind.
    Opcode(u8),
    /// A string field is not valid UTF-8.
    Utf8,
    /// Bytes remained after the structure was fully decoded.
    Trailing(usize),
    /// A declared length or count exceeds what its frame can hold (or a
    /// protocol ceiling such as [`MAX_FRAME`] / [`MAX_WIRE_ARITY`]).
    TooLarge(usize),
    /// The peer vanished mid-frame — EOF inside a length prefix or a
    /// payload. Unlike every other variant this is not a malformed
    /// byte stream; it is a severed one, and the only retryable error.
    ConnectionLost,
}

impl WireError {
    /// Whether a reconnect could clear this error. Structural errors
    /// (bad version, hostile counts, trailing bytes) are permanent —
    /// the same bytes will fail the same way — but a severed connection
    /// is worth redialing.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, WireError::ConnectionLost)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Version(v) => {
                write!(f, "wire version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::Opcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Utf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::TooLarge(n) => {
                write!(f, "declared length {n} exceeds its frame or a protocol cap")
            }
            WireError::ConnectionLost => write!(f, "connection lost mid-frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Whether an I/O error is worth a reconnect attempt.
///
/// Errors that wrap a [`WireError`] defer to
/// [`WireError::is_retryable`]; otherwise the error kind decides.
/// `WouldBlock` is retryable because Unix sockets surface a read
/// timeout as `WouldBlock`, and a timed-out read is exactly the
/// black-holed-connection case a redial exists to fix.
#[must_use]
pub fn retryable_io(e: &io::Error) -> bool {
    if let Some(inner) = e.get_ref() {
        if let Some(w) = inner.downcast_ref::<WireError>() {
            return w.is_retryable();
        }
    }
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::Interrupted
    )
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_samples(buf: &mut Vec<u8>, samples: &[Sample]) {
    put_u32(buf, samples.len() as u32);
    for &(patient, source, t, v) in samples {
        put_u64(buf, patient);
        put_u32(buf, source as u32);
        put_i64(buf, t);
        put_f32(buf, v);
    }
}

fn put_collector(buf: &mut Vec<u8>, c: &OutputCollector) {
    put_u32(buf, c.arity() as u32);
    put_u32(buf, c.len() as u32);
    for &t in c.times() {
        put_i64(buf, t);
    }
    for &d in c.durations() {
        put_i64(buf, d);
    }
    for f in 0..c.arity() {
        for &v in c.values(f) {
            put_f32(buf, v);
        }
    }
}

fn put_handoff(buf: &mut Vec<u8>, h: &PatientHandoff) {
    put_i64(buf, h.snapshot.next_round);
    put_u32(buf, h.snapshot.sources.len() as u32);
    for s in &h.snapshot.sources {
        put_u64(buf, s.base_slot);
        put_i64(buf, s.watermark);
        put_u32(buf, s.values.len() as u32);
        for &v in &s.values {
            put_f32(buf, v);
        }
        put_u32(buf, s.ranges.len() as u32);
        for &(a, b) in &s.ranges {
            put_i64(buf, a);
            put_i64(buf, b);
        }
    }
    put_collector(buf, &h.output);
    put_u32(buf, h.errors.len() as u32);
    for e in &h.errors {
        put_str(buf, e);
    }
}

fn put_meta(buf: &mut Vec<u8>, m: &SessionMeta) {
    put_i64(buf, m.round);
    put_u32(buf, m.arity as u32);
    put_u32(buf, m.sources.len() as u32);
    for s in &m.sources {
        put_i64(buf, s.offset);
        put_i64(buf, s.period);
        put_i64(buf, s.margin);
    }
}

/// Encodes a command as a v2 payload (version + opcode + seq + body).
pub fn encode_cmd(seq: u64, cmd: &WireCmd) -> Vec<u8> {
    let mut buf = vec![WIRE_VERSION];
    match cmd {
        WireCmd::Admit { patient } => {
            buf.push(0x01);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, *patient);
        }
        WireCmd::Batch(samples) => {
            buf.push(0x02);
            put_u64(&mut buf, seq);
            put_samples(&mut buf, samples);
        }
        WireCmd::Poll => {
            buf.push(0x03);
            put_u64(&mut buf, seq);
        }
        WireCmd::Finish { patient } => {
            buf.push(0x04);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, *patient);
        }
        WireCmd::Export { patient } => {
            buf.push(0x05);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, *patient);
        }
        WireCmd::Import { patient, state } => {
            buf.push(0x06);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, *patient);
            put_handoff(&mut buf, state);
        }
        WireCmd::Hello {
            session,
            epoch,
            last_acked_seq,
        } => {
            buf.push(0x07);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, *session);
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *last_acked_seq);
        }
        WireCmd::HistoryQuery {
            patient,
            t0,
            t1,
            warmup,
            pipeline,
        } => {
            buf.push(0x08);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, *patient);
            put_i64(&mut buf, *t0);
            put_i64(&mut buf, *t1);
            put_i64(&mut buf, *warmup);
            put_u32(&mut buf, *pipeline);
        }
    }
    buf
}

/// Encodes a reply as a v2 payload.
pub fn encode_reply(reply: &WireReply) -> Vec<u8> {
    let mut buf = vec![WIRE_VERSION];
    match reply {
        WireReply::Ok => buf.push(0x81),
        WireReply::Err(msg) => {
            buf.push(0x82);
            put_str(&mut buf, msg);
        }
        WireReply::Ack {
            seq,
            cum_samples,
            cum_dropped,
        } => {
            buf.push(0x83);
            put_u64(&mut buf, *seq);
            put_u64(&mut buf, *cum_samples);
            put_u64(&mut buf, *cum_dropped);
        }
        WireReply::Output(c) => {
            buf.push(0x84);
            put_collector(&mut buf, c);
        }
        WireReply::Handoff(h) => {
            buf.push(0x85);
            put_handoff(&mut buf, h);
        }
        WireReply::Resume {
            last_applied_seq,
            cum_samples,
            cum_dropped,
        } => {
            buf.push(0x86);
            put_u64(&mut buf, *last_applied_seq);
            put_u64(&mut buf, *cum_samples);
            put_u64(&mut buf, *cum_dropped);
        }
        WireReply::Admitted { meta } => {
            buf.push(0x87);
            put_meta(&mut buf, meta);
        }
    }
    buf
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.at < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().unwrap(),
        )))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// A declared element count, refused outright unless the rest of the
    /// payload is long enough to hold `n` elements of `min_elem_bytes`
    /// each — a corrupt or hostile count can never make the decoder
    /// allocate beyond (a small multiple of) the frame it rode in on.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::TooLarge(n));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| WireError::Utf8)
    }

    fn samples(&mut self) -> Result<Vec<Sample>, WireError> {
        let n = self.count(24)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let patient = self.u64()?;
            let source = self.u32()? as usize;
            let t = self.i64()?;
            let v = self.f32()?;
            out.push((patient, source, t, v));
        }
        Ok(out)
    }

    fn collector(&mut self) -> Result<OutputCollector, WireError> {
        // Arity elements occupy no bytes when `len` is zero, so the
        // remaining-bytes rule cannot bound them; use the explicit cap.
        let arity = self.u32()? as usize;
        if arity > MAX_WIRE_ARITY {
            return Err(WireError::TooLarge(arity));
        }
        // Each event row occupies 16 bytes of times+durations (plus
        // 4 × arity of field values the per-column reads enforce).
        let len = self.count(16)?;
        let mut times = Vec::with_capacity(len);
        for _ in 0..len {
            times.push(self.i64()?);
        }
        let mut durations = Vec::with_capacity(len);
        for _ in 0..len {
            durations.push(self.i64()?);
        }
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            let mut col = Vec::with_capacity(len);
            for _ in 0..len {
                col.push(self.f32()?);
            }
            fields.push(col);
        }
        let mut c = OutputCollector::new(arity);
        let mut row = vec![0.0f32; arity];
        for i in 0..len {
            for (f, slot) in row.iter_mut().enumerate() {
                *slot = fields[f][i];
            }
            c.push(times[i], durations[i], &row);
        }
        Ok(c)
    }

    fn handoff(&mut self) -> Result<PatientHandoff, WireError> {
        let next_round = self.i64()?;
        // A source suffix is at least base_slot + watermark + two counts.
        let nsources = self.count(24)?;
        let mut sources = Vec::with_capacity(nsources);
        for _ in 0..nsources {
            let base_slot = self.u64()?;
            let watermark = self.i64()?;
            let nvals = self.count(4)?;
            let mut values = Vec::with_capacity(nvals);
            for _ in 0..nvals {
                values.push(self.f32()?);
            }
            let nranges = self.count(16)?;
            let mut ranges = Vec::with_capacity(nranges);
            for _ in 0..nranges {
                let a = self.i64()?;
                let b = self.i64()?;
                ranges.push((a, b));
            }
            sources.push(SourceSuffix {
                base_slot,
                watermark,
                values,
                ranges,
            });
        }
        let output = self.collector()?;
        let nerrors = self.count(4)?;
        let mut errors = Vec::with_capacity(nerrors);
        for _ in 0..nerrors {
            errors.push(self.str()?);
        }
        Ok(PatientHandoff {
            snapshot: SessionSnapshot {
                next_round,
                sources,
            },
            output,
            errors,
        })
    }

    fn meta(&mut self) -> Result<SessionMeta, WireError> {
        let round = self.i64()?;
        let arity = self.u32()? as usize;
        if arity > MAX_WIRE_ARITY {
            return Err(WireError::TooLarge(arity));
        }
        let nsources = self.count(24)?;
        let mut sources = Vec::with_capacity(nsources);
        for _ in 0..nsources {
            let offset = self.i64()?;
            let period = self.i64()?;
            let margin = self.i64()?;
            sources.push(SourceMeta {
                offset,
                period,
                margin,
            });
        }
        Ok(SessionMeta {
            round,
            arity,
            sources,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        let rest = self.buf.len() - self.at;
        if rest != 0 {
            return Err(WireError::Trailing(rest));
        }
        Ok(())
    }
}

fn open(payload: &[u8]) -> Result<(Cursor<'_>, u8), WireError> {
    let mut cur = Cursor {
        buf: payload,
        at: 0,
    };
    let version = cur.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version(version));
    }
    let opcode = cur.u8()?;
    Ok((cur, opcode))
}

/// Decodes a command payload into its session seq and command.
///
/// # Errors
/// Returns a [`WireError`] on any structural mismatch — wrong version,
/// unknown opcode, short or over-long body.
pub fn decode_cmd(payload: &[u8]) -> Result<(u64, WireCmd), WireError> {
    let (mut cur, opcode) = open(payload)?;
    let seq = cur.u64()?;
    let cmd = match opcode {
        0x01 => WireCmd::Admit {
            patient: cur.u64()?,
        },
        0x02 => WireCmd::Batch(cur.samples()?),
        0x03 => WireCmd::Poll,
        0x04 => WireCmd::Finish {
            patient: cur.u64()?,
        },
        0x05 => WireCmd::Export {
            patient: cur.u64()?,
        },
        0x06 => WireCmd::Import {
            patient: cur.u64()?,
            state: Box::new(cur.handoff()?),
        },
        0x07 => WireCmd::Hello {
            session: cur.u64()?,
            epoch: cur.u64()?,
            last_acked_seq: cur.u64()?,
        },
        0x08 => WireCmd::HistoryQuery {
            patient: cur.u64()?,
            t0: cur.i64()?,
            t1: cur.i64()?,
            warmup: cur.i64()?,
            pipeline: cur.u32()?,
        },
        op => return Err(WireError::Opcode(op)),
    };
    cur.finish()?;
    Ok((seq, cmd))
}

/// Decodes a reply payload.
///
/// # Errors
/// Returns a [`WireError`] on any structural mismatch.
pub fn decode_reply(payload: &[u8]) -> Result<WireReply, WireError> {
    let (mut cur, opcode) = open(payload)?;
    let reply = match opcode {
        0x81 => WireReply::Ok,
        0x82 => WireReply::Err(cur.str()?),
        0x83 => WireReply::Ack {
            seq: cur.u64()?,
            cum_samples: cur.u64()?,
            cum_dropped: cur.u64()?,
        },
        0x84 => WireReply::Output(cur.collector()?),
        0x85 => WireReply::Handoff(Box::new(cur.handoff()?)),
        0x86 => WireReply::Resume {
            last_applied_seq: cur.u64()?,
            cum_samples: cur.u64()?,
            cum_dropped: cur.u64()?,
        },
        0x87 => WireReply::Admitted { meta: cur.meta()? },
        op => return Err(WireError::Opcode(op)),
    };
    cur.finish()?;
    Ok(reply)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
/// Propagates I/O errors; refuses payloads over [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            WireError::TooLarge(payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

fn lost() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, WireError::ConnectionLost)
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the stream between frames); EOF
/// mid-frame — inside the length prefix or the payload — surfaces as
/// `UnexpectedEof` wrapping [`WireError::ConnectionLost`], so callers
/// can tell a severed peer (retryable) from a malformed stream (fatal)
/// via [`retryable_io`].
///
/// # Errors
/// Propagates I/O errors; refuses length prefixes over [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut at = 0;
    while at < 4 {
        match r.read(&mut len[at..]) {
            Ok(0) if at == 0 => return Ok(None),
            Ok(0) => return Err(lost()),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::TooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut payload[at..]) {
            Ok(0) => return Err(lost()),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}
