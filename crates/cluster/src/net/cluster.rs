//! The cluster router: one ingest front end over N machine endpoints,
//! with live partition handoff between them.

use std::io;
use std::net::ToSocketAddrs;
use std::sync::RwLock;

use lifestream_core::exec::OutputCollector;
use lifestream_core::time::Tick;

use crate::machines::PlacementTable;
use crate::sharded::{Ingest, IngestStats, PatientId};

use super::client::{RemoteConfig, RemoteIngest};

/// Hash-partitions patients across a fleet of
/// [`ShardServer`](super::ShardServer)s and routes every ingest call to
/// the owning machine — the cross-machine face of the same [`Ingest`]
/// protocol.
///
/// Placement starts as the [`PlacementTable`]'s balanced hash and stays
/// a *live* table: [`rebalance`](Self::rebalance) moves one patient's
/// session between machines mid-stream with the cooperative handoff
/// protocol (flush + drain on the source, margin-suffix state transfer,
/// re-pin in the table), losing zero samples and zero already-collected
/// output.
pub struct ClusterIngest {
    endpoints: Vec<RemoteIngest>,
    /// The routing table. Readers (push/admit/finish) share the lock so
    /// endpoints ingest in parallel; a handoff takes the write lock, so
    /// a concurrent push cannot race a patient to its old machine
    /// mid-move — without one slow endpoint's backpressure serializing
    /// the whole fleet behind a mutex.
    table: RwLock<PlacementTable>,
}

impl ClusterIngest {
    /// Connects one [`RemoteIngest`] per endpoint address.
    ///
    /// # Errors
    /// Propagates the first connection failure; requires at least one
    /// endpoint.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A], cfg: RemoteConfig) -> io::Result<Self> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one endpoint",
            ));
        }
        let endpoints = addrs
            .iter()
            .map(|a| RemoteIngest::connect(a, cfg))
            .collect::<io::Result<Vec<_>>>()?;
        let table = RwLock::new(PlacementTable::new(endpoints.len()));
        Ok(Self { endpoints, table })
    }

    /// Number of machine endpoints.
    pub fn machines(&self) -> usize {
        self.endpoints.len()
    }

    /// The machine currently owning a patient's stream.
    pub fn machine_of(&self, patient: PatientId) -> usize {
        self.table.read().expect("table lock").place(patient)
    }

    /// Moves a patient's live session to another machine without losing
    /// a sample: staged data is flushed and acked on the source, the
    /// session's margin-suffix state (plus collected output and deferred
    /// errors) crosses to the destination, and the routing table re-pins
    /// the patient. Pushes issued after this returns route to the new
    /// machine; the resumed session emits byte-identically.
    ///
    /// # Errors
    /// Returns a message for an out-of-range machine, an unknown or
    /// poisoned patient, or a transport failure on either side. On an
    /// import failure the patient is left un-admitted (the export
    /// already removed it) — the error says so explicitly.
    pub fn rebalance(&self, patient: PatientId, to: usize) -> Result<(), String> {
        if to >= self.endpoints.len() {
            return Err(format!(
                "machine {to} out of range ({} endpoints)",
                self.endpoints.len()
            ));
        }
        let mut table = self.table.write().expect("table lock");
        let from = table.place(patient);
        if from == to {
            return Ok(());
        }
        let state = self.endpoints[from].export_patient(patient)?;
        self.endpoints[to]
            .import_patient(patient, state)
            .map_err(|e| format!("patient {patient} stranded mid-handoff (import failed): {e}"))?;
        table.assign(patient, to);
        Ok(())
    }

    /// Synchronization point across every endpoint: flushes staged
    /// samples and drains outstanding acks, making [`stats`](Self::stats)
    /// exact.
    ///
    /// # Errors
    /// Returns the first endpoint's transport error, if any.
    pub fn barrier(&self) -> Result<(), String> {
        for e in &self.endpoints {
            e.barrier()?;
        }
        Ok(())
    }

    /// Cluster-wide counters: the sum of every endpoint's client-side
    /// stats (drop counts propagated from the servers through acks).
    pub fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for e in &self.endpoints {
            let s = e.stats();
            total.samples_pushed += s.samples_pushed;
            total.batches_flushed += s.batches_flushed;
            total.dropped_unknown += s.dropped_unknown;
        }
        total
    }

    /// Admits a patient on its placed machine.
    ///
    /// # Errors
    /// Returns the owning server's error.
    pub fn admit(&self, patient: PatientId) -> Result<(), String> {
        let table = self.table.read().expect("table lock");
        self.endpoints[table.place(patient)].admit(patient)
    }

    /// Stages one sample on the owning machine's client. The table's
    /// read lock is held across the push so a concurrent
    /// [`rebalance`](Self::rebalance) cannot redirect the patient
    /// mid-sample, while pushes to different machines proceed in
    /// parallel (a blocked endpoint backpressures only its own
    /// producers, not the fleet).
    pub fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        let table = self.table.read().expect("table lock");
        self.endpoints[table.place(patient)].push(patient, source, t, v);
    }

    /// Flushes and polls every machine.
    pub fn poll(&self) {
        for e in &self.endpoints {
            e.poll();
        }
    }

    /// Ends a patient's stream on its owning machine.
    ///
    /// # Errors
    /// Returns the owning server's deferred errors.
    pub fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        let table = self.table.read().expect("table lock");
        self.endpoints[table.place(patient)].finish(patient)
    }

    /// Closes every endpoint connection. Equivalent to dropping.
    pub fn shutdown(self) {}
}

impl Ingest for ClusterIngest {
    fn admit(&self, patient: PatientId) -> Result<(), String> {
        ClusterIngest::admit(self, patient)
    }

    fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        ClusterIngest::push(self, patient, source, t, v);
    }

    fn poll(&self) {
        ClusterIngest::poll(self);
    }

    fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        ClusterIngest::finish(self, patient)
    }

    fn stats(&self) -> IngestStats {
        ClusterIngest::stats(self)
    }
}

impl std::fmt::Debug for ClusterIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterIngest")
            .field("machines", &self.endpoints.len())
            .field(
                "overridden",
                &self.table.read().expect("table lock").overridden(),
            )
            .finish()
    }
}
