//! The cluster router: one ingest front end over N machine endpoints,
//! with live partition handoff between them and automatic patient
//! failover when a machine dies.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use lifestream_core::exec::OutputCollector;
use lifestream_core::live::{SessionSnapshot, SourceSuffix};
use lifestream_core::time::Tick;
use lifestream_store::HistoryReader;

use crate::history::{CohortReport, HistoryError, HistoryQuery, HistoryQueryApi, PipelineSpec};
use crate::machines::{MachineState, PlacementTable};
use crate::sharded::{Ingest, IngestStats, PatientHandoff, PatientId, SessionMeta, SourceMeta};

use super::client::{RemoteConfig, RemoteHealth, RemoteIngest};

/// One machine's routing state plus its transport recovery counters.
#[derive(Debug, Clone, Copy)]
pub struct MachineHealth {
    /// Routing state in the placement table.
    pub state: MachineState,
    /// The endpoint's reconnect/replay counters.
    pub remote: RemoteHealth,
}

/// Cluster-wide fault observability: per-machine states plus the
/// failover counters. Snapshot semantics — taken under the routing
/// lock, so the machine states are mutually consistent.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// Per-machine state and recovery counters, by machine index.
    pub machines: Vec<MachineHealth>,
    /// Machines declared [`MachineState::Down`] so far.
    pub failovers: u64,
    /// Patient sessions re-admitted on a survivor after their machine
    /// died.
    pub patients_failed_over: u64,
    /// Patient sessions that could not be re-homed (no survivor, or the
    /// survivor refused the import).
    pub patients_lost: u64,
    /// Sum of every endpoint's successful reconnect-with-resume
    /// handshakes.
    pub reconnects: u64,
    /// Sum of every endpoint's replayed window frames.
    pub frames_replayed: u64,
}

/// Client-side replay buffer for one source: the on-grid sample tail at
/// or above the retirement horizon, mirroring exactly what the owning
/// server retains (`frontier - margin`), plus the source watermark.
struct SourceTail {
    meta: SourceMeta,
    /// Accepted samples at or above `retired_to`, ascending by time.
    tail: VecDeque<(Tick, f32)>,
    /// Largest accepted sample time + period (mirrors the server's).
    watermark: Tick,
    /// Grid-aligned horizon: everything below has been retired.
    retired_to: Tick,
}

impl SourceTail {
    fn new(meta: SourceMeta) -> Self {
        Self {
            meta,
            tail: VecDeque::new(),
            watermark: meta.offset,
            retired_to: meta.offset,
        }
    }

    /// Mirrors `LiveSource::push` acceptance: on-grid, at or above the
    /// retained horizon, no duplicate. Rejected samples would have been
    /// rejected (deferred) by the server too, so the tail stays
    /// byte-equivalent to the server's retained suffix.
    fn record(&mut self, t: Tick, v: f32) {
        let SourceMeta { offset, period, .. } = self.meta;
        if period <= 0 || t < offset || (t - offset).rem_euclid(period) != 0 || t < self.retired_to
        {
            return;
        }
        match self.tail.binary_search_by_key(&t, |&(ts, _)| ts) {
            Ok(_) => {} // duplicate: the server rejects the re-push as well
            Err(pos) => self.tail.insert(pos, (t, v)),
        }
        self.watermark = self.watermark.max(t + period);
    }

    /// Retires the tail below `frontier - margin`, grid-aligned down —
    /// the same compaction rule `LiveSession` applies after a poll.
    fn retire_below(&mut self, frontier: Tick) {
        let SourceMeta {
            offset,
            period,
            margin,
        } = self.meta;
        if period <= 0 {
            return;
        }
        let cutoff = frontier.saturating_sub(margin).max(offset);
        let aligned = offset + (cutoff - offset).div_euclid(period) * period;
        if aligned <= self.retired_to {
            return;
        }
        self.retired_to = aligned;
        while let Some(&(t, _)) = self.tail.front() {
            if t < aligned {
                self.tail.pop_front();
            } else {
                break;
            }
        }
    }

    /// Densifies the tail into the wire suffix shape: values from the
    /// first buffered slot, presence ranges masking the gaps.
    fn suffix(&self, next_round: Tick) -> SourceSuffix {
        let SourceMeta { offset, period, .. } = self.meta;
        if period <= 0 {
            return SourceSuffix {
                base_slot: 0,
                watermark: self.watermark,
                values: Vec::new(),
                ranges: Vec::new(),
            };
        }
        if let (Some(&(t0, _)), Some(&(tn, _))) = (self.tail.front(), self.tail.back()) {
            let base_slot = ((t0 - offset) / period) as u64;
            let nslots = ((tn - t0) / period) as usize + 1;
            let mut values = vec![0.0_f32; nslots];
            let mut ranges: Vec<(Tick, Tick)> = Vec::new();
            for &(t, v) in &self.tail {
                values[((t - t0) / period) as usize] = v;
                match ranges.last_mut() {
                    Some(r) if r.1 == t => r.1 = t + period,
                    _ => ranges.push((t, t + period)),
                }
            }
            SourceSuffix {
                base_slot,
                watermark: self.watermark,
                values,
                ranges,
            }
        } else {
            // No buffered samples: park the base at the first grid slot
            // at or above the frontier. That keeps the import's warm-up
            // replay window tight, and stays at or below the watermark
            // (every source watermark is >= the frontier), so the next
            // push still clears the imported horizon.
            let start = next_round.max(offset);
            let base_slot = ((start - offset) + period - 1).div_euclid(period) as u64;
            SourceSuffix {
                base_slot,
                watermark: self.watermark,
                values: Vec::new(),
                ranges: Vec::new(),
            }
        }
    }
}

/// Builds one source's failover suffix, preferring durable segment
/// history over the client-side replay tail: the store's densified
/// history and the tail are merged sample-by-sample (the tail wins on
/// overlap — it is at least as fresh), then clipped to the retained
/// window `[align_down(frontier - margin), …)` — the same window the
/// dead machine's live session held. A tail that lost samples (a client
/// mirror truncated by a crash or restart) is thereby healed from the
/// segments, as long as every retired span reached the store.
fn suffix_with_store(
    meta: SourceMeta,
    history: Option<&lifestream_store::DenseHistory>,
    tail: &VecDeque<(Tick, f32)>,
    watermark: Tick,
    frontier: Tick,
) -> SourceSuffix {
    let SourceMeta {
        offset,
        period,
        margin,
    } = meta;
    if period <= 0 {
        return SourceSuffix {
            base_slot: 0,
            watermark,
            values: Vec::new(),
            ranges: Vec::new(),
        };
    }
    let cutoff = {
        let c = frontier.saturating_sub(margin).max(offset);
        offset + (c - offset).div_euclid(period) * period
    };
    let mut samples: BTreeMap<Tick, f32> = BTreeMap::new();
    if let Some((values, ranges)) = history {
        for &(s, e) in ranges {
            // Segment presence ranges start on the grid and the cutoff
            // is grid-aligned, so their max is on the grid too.
            let mut t = s.max(cutoff);
            while t < e {
                if let Some(&v) = values.get(((t - offset) / period) as usize) {
                    samples.insert(t, v);
                }
                t += period;
            }
        }
    }
    for &(t, v) in tail {
        if t >= cutoff {
            samples.insert(t, v);
        }
    }
    if let (Some((&t0, _)), Some((&tn, _))) = (samples.first_key_value(), samples.last_key_value())
    {
        let base_slot = ((t0 - offset) / period) as u64;
        let nslots = ((tn - t0) / period) as usize + 1;
        let mut values = vec![0.0_f32; nslots];
        let mut ranges: Vec<(Tick, Tick)> = Vec::new();
        let mut wm = watermark;
        for (&t, &v) in &samples {
            values[((t - t0) / period) as usize] = v;
            match ranges.last_mut() {
                Some(r) if r.1 == t => r.1 = t + period,
                _ => ranges.push((t, t + period)),
            }
            wm = wm.max(t + period);
        }
        SourceSuffix {
            base_slot,
            watermark: wm,
            values,
            ranges,
        }
    } else {
        let start = frontier.max(offset);
        let base_slot = ((start - offset) + period - 1).div_euclid(period) as u64;
        SourceSuffix {
            base_slot,
            watermark,
            values: Vec::new(),
            ranges: Vec::new(),
        }
    }
}

/// Client-side mirror of one patient's live session: enough bounded
/// state (`O(round + margin + poll lag)` per source) to re-admit the
/// patient on a survivor if its machine dies.
struct PatientState {
    round: Tick,
    arity: usize,
    sources: Vec<SourceTail>,
    /// Round frontier at the last poll: rounds below it are considered
    /// emitted, so a failover resumes (output-suppressed warm-up, same
    /// as a handoff import) from here.
    frontier: Tick,
}

impl PatientState {
    fn new(meta: &SessionMeta) -> Self {
        let mut state = Self {
            round: meta.round.max(1),
            arity: meta.arity.max(1),
            sources: meta.sources.iter().copied().map(SourceTail::new).collect(),
            frontier: 0,
        };
        state.advance();
        state
    }

    /// Recomputes the processed-round frontier from the source
    /// watermarks and retires every tail the source's margin below it —
    /// called at each poll, mirroring the server's compaction.
    fn advance(&mut self) {
        let wm = self.sources.iter().map(|s| s.watermark).min().unwrap_or(0);
        let frontier = (wm.div_euclid(self.round) * self.round).max(0);
        if frontier > self.frontier {
            self.frontier = frontier;
        }
        for s in &mut self.sources {
            s.retire_below(self.frontier);
        }
    }

    /// Builds a re-admission handoff: margin suffix plus the frontier,
    /// with an empty output collector (output collected on the dead
    /// machine is gone; the survivor re-emits from the frontier). With a
    /// store attached, each source's suffix is rebuilt from the durable
    /// segments overlaid with the replay tail ([`suffix_with_store`])
    /// instead of the tail alone.
    fn handoff(&self, store: Option<(&HistoryReader, PatientId)>) -> PatientHandoff {
        let sources = self
            .sources
            .iter()
            .enumerate()
            .map(|(i, s)| match store {
                Some((reader, patient)) => {
                    let history = reader.source_history(patient, i).and_then(Result::ok);
                    suffix_with_store(
                        s.meta,
                        history.as_ref(),
                        &s.tail,
                        s.watermark,
                        self.frontier,
                    )
                }
                None => s.suffix(self.frontier),
            })
            .collect();
        PatientHandoff {
            snapshot: SessionSnapshot {
                next_round: self.frontier,
                sources,
            },
            output: OutputCollector::new(self.arity),
            errors: Vec::new(),
        }
    }

    fn record(&mut self, source: usize, t: Tick, v: f32) {
        if let Some(s) = self.sources.get_mut(source) {
            s.record(t, v);
        }
    }
}

/// Hash-partitions patients across a fleet of
/// [`ShardServer`](super::ShardServer)s and routes every ingest call to
/// the owning machine — the cross-machine face of the same [`Ingest`]
/// protocol.
///
/// Placement starts as the [`PlacementTable`]'s balanced hash and stays
/// a *live* table: [`rebalance`](Self::rebalance) moves one patient's
/// session between machines mid-stream with the cooperative handoff
/// protocol (flush + drain on the source, margin-suffix state transfer,
/// re-pin in the table), losing zero samples and zero already-collected
/// output.
///
/// # Failover
///
/// Every admitted patient additionally keeps a *client-side* replay
/// tail: the margin suffix of each source (the same bounded window the
/// server retains) plus the round frontier of the last poll. When an
/// endpoint exhausts its reconnect budget and goes dead, the machine is
/// declared [`MachineState::Down`] in the table and each patient it
/// owned is re-admitted on a survivor by importing that tail — the
/// warm-up replay suppresses output below the frontier, exactly like a
/// [`rebalance`](Self::rebalance) import. A hard-killed machine
/// therefore never loses a patient; what *is* lost is bounded: output
/// rounds below the failover frontier that were only collected on the
/// dead machine, and its sessions' deferred per-sample errors.
///
/// With a shared tiered store attached
/// ([`connect_with_store`](Self::connect_with_store)), failover prefers
/// **segment rebuild** over the replay tail alone: each re-admitted
/// source suffix is stitched from the durable segments the dead machine
/// spilled, overlaid with the client tail — a truncated tail is healed
/// from disk — and [`history_query`](Self::history_query) re-runs any
/// patient's pipeline over its full durable history on whichever machine
/// currently owns it.
pub struct ClusterIngest {
    endpoints: Vec<RemoteIngest>,
    /// Shared tiered-store directory, when every machine spills to the
    /// same storage; read at failover to rebuild sessions from segments.
    store_dir: Option<PathBuf>,
    /// The routing table. Readers (push/admit/finish) share the lock so
    /// endpoints ingest in parallel; a handoff or failover takes the
    /// write lock, so a concurrent push cannot race a patient to its old
    /// machine mid-move — without one slow endpoint's backpressure
    /// serializing the whole fleet behind a mutex.
    table: RwLock<PlacementTable>,
    /// Client-side replay state per admitted patient. Lock order:
    /// `table` before `patients` before a patient's mutex.
    patients: RwLock<HashMap<PatientId, Mutex<PatientState>>>,
    /// Cluster-level push counter: a dead endpoint stops counting the
    /// pushes it discards, this one does not.
    samples_pushed: AtomicU64,
    failovers: AtomicU64,
    patients_failed_over: AtomicU64,
    patients_lost: AtomicU64,
}

impl ClusterIngest {
    /// Connects one [`RemoteIngest`] per endpoint address.
    ///
    /// # Errors
    /// Propagates the first connection failure; requires at least one
    /// endpoint.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A], cfg: RemoteConfig) -> io::Result<Self> {
        Self::connect_inner(addrs, cfg, None)
    }

    /// Like [`connect`](Self::connect), for a fleet whose machines all
    /// spill to the tiered store at `store_dir` (shared storage). The
    /// path enables segment-preferred failover rebuilds; retrospective
    /// queries ([`history_query`](Self::history_query)) work either way,
    /// since they run server-side.
    ///
    /// # Errors
    /// Propagates the first connection failure; requires at least one
    /// endpoint.
    pub fn connect_with_store<A: ToSocketAddrs>(
        addrs: &[A],
        cfg: RemoteConfig,
        store_dir: impl Into<PathBuf>,
    ) -> io::Result<Self> {
        Self::connect_inner(addrs, cfg, Some(store_dir.into()))
    }

    fn connect_inner<A: ToSocketAddrs>(
        addrs: &[A],
        cfg: RemoteConfig,
        store_dir: Option<PathBuf>,
    ) -> io::Result<Self> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one endpoint",
            ));
        }
        let endpoints = addrs
            .iter()
            .map(|a| RemoteIngest::connect(a, cfg))
            .collect::<io::Result<Vec<_>>>()?;
        let table = RwLock::new(PlacementTable::new(endpoints.len()));
        Ok(Self {
            endpoints,
            store_dir,
            table,
            patients: RwLock::new(HashMap::new()),
            samples_pushed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            patients_failed_over: AtomicU64::new(0),
            patients_lost: AtomicU64::new(0),
        })
    }

    /// Number of machine endpoints.
    pub fn machines(&self) -> usize {
        self.endpoints.len()
    }

    /// The machine currently owning a patient's stream.
    pub fn machine_of(&self, patient: PatientId) -> usize {
        self.table.read().expect("table lock").place(patient)
    }

    /// Per-machine states plus the cluster's failover counters.
    pub fn health(&self) -> ClusterHealth {
        let machines: Vec<MachineHealth> = {
            let table = self.table.read().expect("table lock");
            self.endpoints
                .iter()
                .enumerate()
                .map(|(m, e)| MachineHealth {
                    state: table.state(m),
                    remote: e.health(),
                })
                .collect()
        };
        ClusterHealth {
            failovers: self.failovers.load(Ordering::Relaxed),
            patients_failed_over: self.patients_failed_over.load(Ordering::Relaxed),
            patients_lost: self.patients_lost.load(Ordering::Relaxed),
            reconnects: machines.iter().map(|m| m.remote.reconnects).sum(),
            frames_replayed: machines.iter().map(|m| m.remote.frames_replayed).sum(),
            machines,
        }
    }

    /// Moves a patient's live session to another machine without losing
    /// a sample: staged data is flushed and acked on the source, the
    /// session's margin-suffix state (plus collected output and deferred
    /// errors) crosses to the destination, and the routing table re-pins
    /// the patient. Pushes issued after this returns route to the new
    /// machine; the resumed session emits byte-identically.
    ///
    /// A machine death mid-handoff is recovered, not surfaced: if the
    /// *source* dies during the export, the whole machine fails over
    /// (client-side tails re-admit its patients on survivors); if the
    /// *destination* dies during the import, it is declared down and the
    /// already-exported state — still in hand — lands on whichever
    /// machine then owns the patient, with zero loss.
    ///
    /// # Errors
    /// Returns a message for an out-of-range or down machine, an unknown
    /// or poisoned patient, or an import refusal with every involved
    /// machine still alive — only then is the patient stranded
    /// un-admitted (the export already removed it), and the error says
    /// so explicitly.
    pub fn rebalance(&self, patient: PatientId, to: usize) -> Result<(), String> {
        if to >= self.endpoints.len() {
            return Err(format!(
                "machine {to} out of range ({} endpoints)",
                self.endpoints.len()
            ));
        }
        let mut table = self.table.write().expect("table lock");
        if table.state(to) == MachineState::Down {
            return Err(format!("machine {to} is down"));
        }
        let from = table.place(patient);
        if from == to {
            return Ok(());
        }
        let state = match self.endpoints[from].export_patient(patient) {
            Ok(state) => state,
            Err(e) => {
                if self.endpoints[from].is_dead() {
                    // Source died mid-export: whether or not the export
                    // landed server-side, the client tail re-admits the
                    // patient (and everything else the machine owned) on
                    // a survivor.
                    self.failover_locked(&mut table, from);
                    return Ok(());
                }
                return Err(e);
            }
        };
        match self.endpoints[to].import_patient(patient, state.clone()) {
            Ok(()) => {
                table.assign(patient, to);
                Ok(())
            }
            Err(e) => {
                if self.endpoints[to].is_dead() {
                    // Destination died mid-import: down it (re-homing any
                    // patients it owned), then land the exported state —
                    // with its collected output intact — on whichever
                    // machine now owns the patient.
                    self.failover_locked(&mut table, to);
                    let target = table.place(patient);
                    if table.state(target) != MachineState::Down {
                        return match self.endpoints[target].import_patient(patient, state) {
                            Ok(()) => {
                                table.assign(patient, target);
                                Ok(())
                            }
                            Err(e2) => Err(format!(
                                "patient {patient} stranded mid-handoff (import failed): {e2}"
                            )),
                        };
                    }
                }
                Err(format!(
                    "patient {patient} stranded mid-handoff (import failed): {e}"
                ))
            }
        }
    }

    /// Synchronization point across every live endpoint: flushes staged
    /// samples and drains outstanding acks, making [`stats`](Self::stats)
    /// exact. An endpoint that dies during the barrier triggers a
    /// failover instead of an error.
    ///
    /// # Errors
    /// Returns the first live endpoint's non-fatal transport error, if
    /// any.
    pub fn barrier(&self) -> Result<(), String> {
        let mut dead = Vec::new();
        let mut first_err = None;
        {
            let table = self.table.read().expect("table lock");
            for (m, e) in self.endpoints.iter().enumerate() {
                if table.state(m) == MachineState::Down {
                    continue;
                }
                if let Err(err) = e.barrier() {
                    if e.is_dead() {
                        dead.push(m);
                    } else if first_err.is_none() {
                        first_err = Some(err);
                    }
                }
            }
        }
        for m in dead {
            self.failover(m);
        }
        self.note_degraded();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Cluster-wide counters: pushes counted at the router (so a dying
    /// endpoint cannot under-count) plus the sum of every endpoint's
    /// client-side stats (drop counts propagated from the servers
    /// through acks).
    pub fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for e in &self.endpoints {
            let s = e.stats();
            total.batches_flushed += s.batches_flushed;
            total.dropped_unknown += s.dropped_unknown;
        }
        total.samples_pushed = self.samples_pushed.load(Ordering::Relaxed);
        total
    }

    /// Admits a patient on its placed machine and starts its client-side
    /// replay tail. If the placed machine is dead, it fails over first
    /// and the admit lands on the survivor.
    ///
    /// # Errors
    /// Returns the owning server's error.
    pub fn admit(&self, patient: PatientId) -> Result<(), String> {
        let (machine, refused) = {
            let table = self.table.read().expect("table lock");
            let m = table.place(patient);
            match self.endpoints[m].admit_meta(patient) {
                Ok(meta) => {
                    drop(table);
                    self.register(patient, &meta);
                    return Ok(());
                }
                Err(e) => (m, e),
            }
        };
        if !self.endpoints[machine].is_dead() {
            return Err(refused);
        }
        self.failover(machine);
        let survivor = self.table.read().expect("table lock").place(patient);
        if survivor == machine {
            return Err(refused);
        }
        let meta = self.endpoints[survivor].admit_meta(patient)?;
        self.register(patient, &meta);
        Ok(())
    }

    /// Stages one sample on the owning machine's client and mirrors it
    /// into the patient's replay tail. The table's read lock is held
    /// across the push so a concurrent [`rebalance`](Self::rebalance)
    /// cannot redirect the patient mid-sample, while pushes to different
    /// machines proceed in parallel (a blocked endpoint backpressures
    /// only its own producers, not the fleet). A push that exhausts the
    /// endpoint's reconnect budget triggers a failover; the sample is
    /// already in the tail, so it survives the move.
    pub fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        self.samples_pushed.fetch_add(1, Ordering::Relaxed);
        let dead = {
            let table = self.table.read().expect("table lock");
            let m = table.place(patient);
            if let Some(ps) = self.patients.read().expect("patients lock").get(&patient) {
                ps.lock().expect("patient state").record(source, t, v);
            }
            self.endpoints[m].push(patient, source, t, v);
            self.endpoints[m].is_dead().then_some(m)
        };
        if let Some(m) = dead {
            self.failover(m);
        }
    }

    /// Flushes and polls every live machine, advancing each patient's
    /// replay frontier and retiring its tails to the margin — the
    /// client-side mirror of the servers' compaction.
    pub fn poll(&self) {
        {
            let patients = self.patients.read().expect("patients lock");
            for ps in patients.values() {
                ps.lock().expect("patient state").advance();
            }
        }
        let mut dead = Vec::new();
        {
            let table = self.table.read().expect("table lock");
            for (m, e) in self.endpoints.iter().enumerate() {
                if table.state(m) == MachineState::Down {
                    continue;
                }
                e.poll();
                if e.is_dead() {
                    dead.push(m);
                }
            }
        }
        for m in dead {
            self.failover(m);
        }
        self.note_degraded();
    }

    /// Ends a patient's stream on its owning machine. If the machine is
    /// dead, fails over and finishes on the survivor (output below the
    /// failover frontier was only on the dead machine and is gone).
    ///
    /// # Errors
    /// Returns the owning server's deferred errors.
    pub fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        let machine = {
            let table = self.table.read().expect("table lock");
            let m = table.place(patient);
            match self.endpoints[m].finish(patient) {
                Ok(out) => {
                    drop(table);
                    self.unregister(patient);
                    return Ok(out);
                }
                Err(e) => {
                    if !self.endpoints[m].is_dead() {
                        return Err(e);
                    }
                    m
                }
            }
        };
        self.failover(machine);
        let survivor = self.table.read().expect("table lock").place(patient);
        let out = self.endpoints[survivor].finish(patient)?;
        self.unregister(patient);
        Ok(out)
    }

    /// Re-runs a pipeline over a patient's durable history (segments +
    /// write buffer + live suffix), clipped to `[t0, t1)`, on the
    /// machine currently owning the patient; live ingest on that
    /// patient continues. `pipeline` names a server-side registry id
    /// (`0` = the live pipeline). If the owner is dead — including dying
    /// *mid-query* — it fails over first (the store directory is shared,
    /// so the survivor sees the same segments) and retries on the new
    /// owner. Most callers want the typed
    /// [`HistoryQueryApi`](crate::history::HistoryQueryApi) surface
    /// instead.
    ///
    /// # Errors
    /// Returns the owning server's error (no store attached, bad range,
    /// unknown patient, unregistered pipeline) or the transport error
    /// when no survivor remains.
    pub fn history_query(
        &self,
        patient: PatientId,
        t0: Tick,
        t1: Tick,
        warmup: Tick,
        pipeline: u32,
    ) -> Result<OutputCollector, String> {
        let machine = {
            let table = self.table.read().expect("table lock");
            let m = table.place(patient);
            match self.endpoints[m].history_query(patient, t0, t1, warmup, pipeline) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    if !self.endpoints[m].is_dead() {
                        return Err(e);
                    }
                    m
                }
            }
        };
        self.failover(machine);
        let survivor = self.table.read().expect("table lock").place(patient);
        if survivor == machine {
            return Err(format!(
                "patient {patient}: no live machine left to answer the history query"
            ));
        }
        self.endpoints[survivor].history_query(patient, t0, t1, warmup, pipeline)
    }

    /// Pre-query surface kept for one release: full-history, stringly
    /// errors.
    ///
    /// # Errors
    /// As [`history_query`](Self::history_query).
    #[deprecated(note = "use HistoryQueryApi::history / history_one")]
    pub fn query_history(&self, patient: PatientId) -> Result<OutputCollector, String> {
        self.history_query(patient, Tick::MIN, Tick::MAX, 0, 0)
    }

    /// Closes every endpoint connection. Equivalent to dropping.
    pub fn shutdown(self) {}

    fn register(&self, patient: PatientId, meta: &SessionMeta) {
        self.patients
            .write()
            .expect("patients lock")
            .insert(patient, Mutex::new(PatientState::new(meta)));
    }

    fn unregister(&self, patient: PatientId) {
        self.patients
            .write()
            .expect("patients lock")
            .remove(&patient);
    }

    fn failover(&self, machine: usize) {
        let mut table = self.table.write().expect("table lock");
        self.failover_locked(&mut table, machine);
    }

    /// Declares a dead machine [`MachineState::Down`] and re-admits
    /// every patient it owned onto survivors from the client-side replay
    /// tails. If a survivor dies during the re-admission it cascades:
    /// that machine is downed too and its patients (plus the ones still
    /// in flight) re-home onto whatever remains. With no live machine
    /// left, remaining patients are counted lost and every subsequent
    /// call surfaces the transport error.
    fn failover_locked(&self, table: &mut PlacementTable, machine: usize) {
        // Fresh view of the shared segments: everything the dead machine
        // flushed is durable and preferred over the replay tails.
        let reader = self
            .store_dir
            .as_ref()
            .and_then(|d| HistoryReader::open(d).ok());
        let mut pending: Vec<PatientId> = Vec::new();
        let mut to_down = vec![machine];
        while let Some(m) = to_down.pop() {
            if table.state(m) == MachineState::Down || !self.endpoints[m].is_dead() {
                continue;
            }
            // Owned set under the *old* placement, before the state flip
            // reroutes place().
            {
                let patients = self.patients.read().expect("patients lock");
                let owned: Vec<PatientId> = patients
                    .keys()
                    .copied()
                    .filter(|&p| table.place(p) == m && !pending.contains(&p))
                    .collect();
                pending.extend(owned);
            }
            table.set_state(m, MachineState::Down);
            self.failovers.fetch_add(1, Ordering::Relaxed);

            let mut still_pending = Vec::new();
            for p in pending.drain(..) {
                if table.live_machines() == 0 {
                    self.patients_lost.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let handoff = {
                    let patients = self.patients.read().expect("patients lock");
                    match patients.get(&p) {
                        Some(ps) => ps
                            .lock()
                            .expect("patient state")
                            .handoff(reader.as_ref().map(|r| (r, p))),
                        None => continue,
                    }
                };
                let target = table.place(p);
                match self.endpoints[target].import_patient(p, handoff) {
                    Ok(()) => {
                        table.assign(p, target);
                        self.patients_failed_over.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) if self.endpoints[target].is_dead() => {
                        to_down.push(target);
                        still_pending.push(p);
                    }
                    Err(_) => {
                        self.patients_lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            pending = still_pending;
        }
    }

    /// Marks endpoints that have survived at least one reconnect as
    /// [`MachineState::Degraded`] — still routable, but visibly shaky in
    /// [`health`](Self::health).
    fn note_degraded(&self) {
        let shaky: Vec<usize> = {
            let table = self.table.read().expect("table lock");
            self.endpoints
                .iter()
                .enumerate()
                .filter(|(m, e)| {
                    table.state(*m) == MachineState::Up && !e.is_dead() && e.health().reconnects > 0
                })
                .map(|(m, _)| m)
                .collect()
        };
        if shaky.is_empty() {
            return;
        }
        let mut table = self.table.write().expect("table lock");
        for m in shaky {
            if table.state(m) == MachineState::Up {
                table.set_state(m, MachineState::Degraded);
            }
        }
    }
}

impl HistoryQueryApi for ClusterIngest {
    /// Routes each cohort patient's query to the machine owning it,
    /// with the same failover-and-retry the rest of the router applies:
    /// an owner dying mid-query downs the machine, re-homes its
    /// patients, and re-asks the survivor. Per-patient results come
    /// back in the order the cohort named them. Transport limits match
    /// [`RemoteIngest`]: only [`PipelineSpec::Live`] (id `0`) and
    /// [`PipelineSpec::Registered`] pipelines can cross the wire.
    fn history(&self, query: HistoryQuery) -> Result<CohortReport, HistoryError> {
        let (range, patients, warmup, spec) = query.into_parts();
        if patients.is_empty() {
            return Err(HistoryError::NoPatients);
        }
        HistoryQuery::validate_range(range.0, range.1)?;
        let pipeline = match spec {
            PipelineSpec::Live => 0,
            PipelineSpec::Registered(id) => id,
            PipelineSpec::Compiled(_) | PipelineSpec::Factory(_) => {
                return Err(HistoryError::Remote(
                    "a compiled pipeline cannot travel over the wire; \
                     register it on the servers and query by id"
                        .into(),
                ))
            }
        };
        let mut outputs = Vec::with_capacity(patients.len());
        for &p in &patients {
            let out = self
                .history_query(p, range.0, range.1, warmup, pipeline)
                .map_err(HistoryError::Remote)?;
            outputs.push((p, out));
        }
        Ok(CohortReport::new(range, outputs))
    }
}

impl Ingest for ClusterIngest {
    fn admit(&self, patient: PatientId) -> Result<(), String> {
        ClusterIngest::admit(self, patient)
    }

    fn push(&self, patient: PatientId, source: usize, t: Tick, v: f32) {
        ClusterIngest::push(self, patient, source, t, v);
    }

    fn poll(&self) {
        ClusterIngest::poll(self);
    }

    fn finish(&self, patient: PatientId) -> Result<OutputCollector, String> {
        ClusterIngest::finish(self, patient)
    }

    fn stats(&self) -> IngestStats {
        ClusterIngest::stats(self)
    }
}

impl std::fmt::Debug for ClusterIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let table = self.table.read().expect("table lock");
        f.debug_struct("ClusterIngest")
            .field("machines", &self.endpoints.len())
            .field("live", &table.live_machines())
            .field("overridden", &table.overridden())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SourceMeta {
        SourceMeta {
            offset: 0,
            period: 2,
            margin: 10,
        }
    }

    fn dense_history(n: usize) -> (Vec<f32>, Vec<(Tick, Tick)>) {
        ((0..n).map(|i| i as f32).collect(), vec![(0, 2 * n as Tick)])
    }

    #[test]
    fn store_heals_a_truncated_tail() {
        // The dead machine retained [frontier - margin, ..) = [90, ..),
        // but the client tail lost everything below t = 96 (a restarted
        // mirror). The store's densified history covers slots 0..50
        // (t < 100): the rebuilt suffix must splice store samples over
        // the hole and keep the fresher tail beyond it.
        let tail: VecDeque<(Tick, f32)> = vec![(96, -1.0), (98, -2.0), (100, -3.0)].into();
        let (values, ranges) = dense_history(50);
        let s = suffix_with_store(meta(), Some(&(values, ranges)), &tail, 102, 100);
        // Window starts at 100 - 10 = 90 → slot 45.
        assert_eq!(s.base_slot, 45);
        assert_eq!(s.ranges, vec![(90, 102)]);
        // 90..96 from the store (values 45, 46, 47), 96.. from the tail.
        assert_eq!(s.values, vec![45.0, 46.0, 47.0, -1.0, -2.0, -3.0]);
        assert_eq!(s.watermark, 102);
    }

    #[test]
    fn tail_wins_over_store_on_overlap() {
        let tail: VecDeque<(Tick, f32)> = vec![(94, 7.0)].into();
        let (values, ranges) = dense_history(50);
        let s = suffix_with_store(meta(), Some(&(values, ranges)), &tail, 100, 100);
        let slot_94 = ((94 - s.base_slot as Tick * 2) / 2) as usize;
        assert_eq!(s.values[slot_94], 7.0, "tail sample must shadow the store");
    }

    #[test]
    fn no_store_history_degrades_to_the_tail() {
        let tail: VecDeque<(Tick, f32)> = vec![(92, 1.0), (94, 2.0)].into();
        let s = suffix_with_store(meta(), None, &tail, 96, 100);
        assert_eq!(s.base_slot, 46);
        assert_eq!(s.values, vec![1.0, 2.0]);
        assert_eq!(s.ranges, vec![(92, 96)]);
    }

    #[test]
    fn history_below_the_window_is_clipped() {
        // Everything durable ends before the retained window: the suffix
        // must come out empty with its base parked at the frontier, not
        // drag the whole history into the import replay.
        let (values, ranges) = dense_history(10); // t < 20
        let s = suffix_with_store(meta(), Some(&(values, ranges)), &VecDeque::new(), 20, 100);
        assert!(s.values.is_empty() && s.ranges.is_empty());
        assert_eq!(s.base_slot, 50);
    }
}
