//! Deterministic fault injection for the cluster transport.
//!
//! [`ChaosProxy`] is an in-process TCP proxy that sits between a
//! [`RemoteIngest`](super::RemoteIngest) client and a
//! [`ShardServer`](super::ShardServer), forwarding the length-prefixed
//! frame stream while injecting exactly one fault per connection at a
//! seed-chosen *frame boundary*:
//!
//! - [`Fault::Sever`] — both sides of the pair are shut down, so the
//!   client sees a reset/EOF and redials (through the proxy again).
//! - [`Fault::BlackHole`] — client frames are silently swallowed from
//!   that boundary on; the client's read timeout eventually classifies
//!   the stall as a lost connection and it redials.
//! - [`Fault::Delay`] — forwarding pauses for the given number of
//!   milliseconds, then resumes; no reconnect needed unless the
//!   client's read timeout fires first.
//!
//! Faults are drawn from a [`FaultPlan`] with a `splitmix64` stream
//! keyed by `(seed, connection index)`, and connections are accepted
//! serially per client, so a given seed always produces the same fault
//! schedule — the property the fault-equivalence battery relies on to
//! assert that *any* schedule yields output byte-identical to the
//! fault-free run.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use super::wire::MAX_FRAME;

/// One injectable connection fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Shut down both sockets of the pair at the frame boundary.
    Sever,
    /// Pause forwarding for this many milliseconds, then resume.
    Delay(u64),
    /// Swallow every client frame from the boundary on, acking nothing.
    BlackHole,
}

/// A deterministic fault schedule: which faults may fire and inside
/// which client-frame window each connection's single fault lands.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-connection `splitmix64` draws.
    pub seed: u64,
    /// Earliest client frame index (0-based) a fault may follow.
    pub min_frame: u64,
    /// Fault frame indices are drawn in `[min_frame, max_frame)`.
    pub max_frame: u64,
    /// Fault palette drawn from uniformly; empty means fault-free
    /// (pure pass-through) forwarding.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan that severs every connection somewhere in the window.
    pub fn sever(seed: u64, min_frame: u64, max_frame: u64) -> Self {
        Self {
            seed,
            min_frame,
            max_frame,
            faults: vec![Fault::Sever],
        }
    }

    /// A pass-through plan that never injects anything.
    pub fn none() -> Self {
        Self {
            seed: 0,
            min_frame: 0,
            max_frame: 1,
            faults: Vec::new(),
        }
    }

    fn draw(&self, conn_index: u64) -> Option<(u64, Fault)> {
        if self.faults.is_empty() {
            return None;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn_index.wrapping_add(1));
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let span = self.max_frame.saturating_sub(self.min_frame).max(1);
        let at = self.min_frame + next() % span;
        let fault = self.faults[(next() % self.faults.len() as u64) as usize];
        Some((at, fault))
    }
}

/// An in-process fault-injecting TCP proxy (see the module docs).
///
/// Accepts any number of consecutive connections — each reconnect from
/// a resuming client gets its own fault draw — and forwards to a fixed
/// upstream address. [`shutdown`](Self::shutdown) severs everything and
/// joins the worker threads.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    faults_injected: Arc<AtomicU64>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let faults_injected = Arc::new(AtomicU64::new(0));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let stop = Arc::clone(&stop);
            let hits = Arc::clone(&faults_injected);
            let conns = Arc::clone(&conns);
            let pumps = Arc::clone(&pumps);
            thread::spawn(move || {
                let mut index = 0u64;
                for client in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = client else { break };
                    // A redial supersedes the previous connection: sever
                    // whatever is still pumping so exactly one pair is
                    // live, like a real peer whose old socket is gone.
                    {
                        let mut held = conns.lock().expect("chaos conns");
                        for c in held.drain(..) {
                            let _ = c.shutdown(Shutdown::Both);
                        }
                    }
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        index += 1;
                        continue;
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    {
                        let mut held = conns.lock().expect("chaos conns");
                        if let Ok(c) = client.try_clone() {
                            held.push(c);
                        }
                        if let Ok(s) = server.try_clone() {
                            held.push(s);
                        }
                    }
                    let fault = plan.draw(index);
                    index += 1;
                    let c2s = {
                        let (from, to) = (
                            client.try_clone().expect("clone client"),
                            server.try_clone().expect("clone server"),
                        );
                        let hits = Arc::clone(&hits);
                        thread::spawn(move || pump_frames(from, to, fault, &hits))
                    };
                    let s2c = thread::spawn(move || pump_raw(server, client));
                    let mut held = pumps.lock().expect("chaos pumps");
                    held.push(c2s);
                    held.push(s2c);
                }
            })
        };

        Ok(Self {
            addr,
            stop,
            faults_injected,
            conns,
            accept: Some(accept),
            pumps,
        })
    }

    /// The proxy's listen address — dial this instead of the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults actually fired so far (a connection that ends before its
    /// drawn frame index never fires its fault).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::SeqCst)
    }

    /// Severs every live pair, stops accepting, and joins the workers.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        {
            let mut held = self.conns.lock().expect("chaos conns");
            for c in held.drain(..) {
                let _ = c.shutdown(Shutdown::Both);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().expect("chaos pumps"));
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_all();
        }
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("faults_injected", &self.faults_injected())
            .finish()
    }
}

/// Client-to-server pump: forwards whole frames so the fault lands on a
/// frame boundary, never mid-frame on the *upstream* side (mid-frame
/// loss toward the client is exercised by severing the other pump).
fn pump_frames(
    mut from: TcpStream,
    mut to: TcpStream,
    fault: Option<(u64, Fault)>,
    hits: &AtomicU64,
) {
    let mut frame_index = 0u64;
    let mut swallow = false;
    while let Some(frame) = read_one_frame(&mut from) {
        if let Some((at, f)) = fault {
            if frame_index == at {
                hits.fetch_add(1, Ordering::SeqCst);
                match f {
                    Fault::Sever => {
                        let _ = from.shutdown(Shutdown::Both);
                        let _ = to.shutdown(Shutdown::Both);
                        return;
                    }
                    Fault::Delay(ms) => thread::sleep(Duration::from_millis(ms)),
                    Fault::BlackHole => swallow = true,
                }
            }
        }
        frame_index += 1;
        if swallow {
            continue;
        }
        if to.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Server-to-client pump: a raw byte copy — replies need no frame
/// awareness because faults are only scheduled on client frames.
fn pump_raw(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Reads one length-prefixed frame (prefix included in the returned
/// bytes); `None` on EOF, error, or a hostile length.
fn read_one_frame(r: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    read_exact(r, &mut len)?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return None;
    }
    let mut frame = vec![0u8; 4 + n];
    frame[..4].copy_from_slice(&len);
    read_exact(r, &mut frame[4..])?;
    Some(frame)
}

fn read_exact(r: &mut TcpStream, buf: &mut [u8]) -> Option<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) | Err(_) => return None,
            Ok(n) => filled += n,
        }
    }
    Some(())
}
